"""Legacy setup shim.

Kept so that ``pip install -e .`` works on environments whose setuptools
predates self-contained PEP 660 editable builds (no ``wheel`` package
available offline).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
