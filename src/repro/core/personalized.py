"""Personalised (seeded) PageRank variants on top of D2PR.

The paper positions D2PR inside the context-aware recommendation literature
(§2.1): personalised PageRank (PPR) contextualises scores by concentrating
the teleportation vector on seed nodes.  Degree de-coupling composes
orthogonally with personalisation — the transition matrix changes, the
teleport vector changes independently — so this module provides:

* :func:`personalized_pagerank` — classic PPR (uniform transition, seeded
  teleport);
* :func:`personalized_d2pr` — seeded D2PR ("D2PPR");
* :func:`robust_personalized_d2pr` — a seed-noise-robust variant in the
  spirit of Huang et al. [14]: each seed is scored by a leave-one-out pass
  and seeds whose removal barely changes the result (likely noise) are
  down-weighted before the final pass.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.d2pr import d2pr
from repro.core.engine import RankQuery, solve_many
from repro.core.results import NodeScores
from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node

__all__ = [
    "seed_weights",
    "personalized_pagerank",
    "personalized_d2pr",
    "robust_personalized_d2pr",
]


def seed_weights(
    seeds: Mapping[Node, float] | Sequence[Node],
) -> dict[Node, float]:
    """Normalise a seed spec into ``{node: weight}`` (the shared semantics).

    Sequences de-duplicate (each distinct node gets weight 1); mappings
    pass through.  Every seed consumer — the personalised solvers here and
    :meth:`repro.recsys.D2PRRecommender.recommend_one` — resolves its
    seeds through this one helper.
    """
    if isinstance(seeds, Mapping):
        weights = {node: float(w) for node, w in seeds.items()}
    else:
        weights = {node: 1.0 for node in seeds}
    if not weights:
        raise ParameterError("at least one seed node is required")
    if any(w < 0 for w in weights.values()):
        raise ParameterError("seed weights must be non-negative")
    if sum(weights.values()) <= 0:
        raise ParameterError("seed weights must have positive total mass")
    return weights


def personalized_pagerank(
    graph: BaseGraph,
    seeds: Mapping[Node, float] | Sequence[Node],
    *,
    alpha: float = 0.85,
    weighted: bool = False,
    **kwargs,
) -> NodeScores:
    """Classic personalised PageRank: teleportation restricted to ``seeds``.

    ``seeds`` may be a sequence of nodes (equal weights) or a
    ``{node: weight}`` mapping.  Remaining keyword arguments are forwarded
    to :func:`repro.core.d2pr.d2pr` (with ``p = 0``).
    """
    weights = seed_weights(seeds)
    return d2pr(
        graph, 0.0, alpha=alpha, weighted=weighted, teleport=weights, **kwargs
    )


def personalized_d2pr(
    graph: BaseGraph,
    seeds: Mapping[Node, float] | Sequence[Node],
    p: float,
    *,
    alpha: float = 0.85,
    beta: float = 0.0,
    weighted: bool = False,
    **kwargs,
) -> NodeScores:
    """Seeded degree de-coupled PageRank (D2PPR).

    Combines the paper's transition-matrix modification with
    teleport-vector personalisation: the random surfer walks a degree
    de-coupled graph but restarts only at the seed nodes.

    For interactive-latency single queries on large graphs pass
    ``solver="push"``: sparse seed sets route to the localized
    forward-push solver (:func:`repro.linalg.forward_push`), which falls
    back to power iteration whenever the query is not localized.
    """
    weights = seed_weights(seeds)
    return d2pr(
        graph,
        p,
        alpha=alpha,
        beta=beta,
        weighted=weighted,
        teleport=weights,
        **kwargs,
    )


def _batched_influences(
    graph: BaseGraph,
    weights: Mapping[Node, float],
    seed_order: Sequence[Node],
    p: float,
    *,
    alpha: float,
    beta: float,
    weighted: bool,
    solver: str = "power",
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
    clamp_min: float | None = None,
) -> tuple[NodeScores, dict[Node, float]]:
    """Full pass + all leave-one-out passes as one batched solve."""
    del solver  # always "power" here (checked by the caller)
    queries = [
        RankQuery(
            p=p, alpha=alpha, beta=beta, weighted=weighted,
            teleport=dict(weights), dangling=dangling,
        )
    ]
    for seed in seed_order:
        reduced = {s: w for s, w in weights.items() if s != seed}
        queries.append(
            RankQuery(
                p=p, alpha=alpha, beta=beta, weighted=weighted,
                teleport=reduced, dangling=dangling,
            )
        )
    results = solve_many(
        graph, queries, tol=tol, max_iter=max_iter, clamp_min=clamp_min
    )
    full = results[0]
    influences = {
        seed: float(np.abs(full.values - loo.values).sum())
        for seed, loo in zip(seed_order, results[1:])
    }
    return full, influences


def _sequential_influences(
    graph: BaseGraph,
    weights: Mapping[Node, float],
    seed_order: Sequence[Node],
    p: float,
    *,
    alpha: float,
    beta: float,
    weighted: bool,
    **kwargs,
) -> tuple[NodeScores, dict[Node, float]]:
    """Per-seed loop for the non-power solvers (verification paths)."""
    full = personalized_d2pr(
        graph, dict(weights), p, alpha=alpha, beta=beta, weighted=weighted,
        **kwargs,
    )
    influences: dict[Node, float] = {}
    for seed in seed_order:
        reduced = {s: w for s, w in weights.items() if s != seed}
        loo = personalized_d2pr(
            graph, reduced, p, alpha=alpha, beta=beta, weighted=weighted,
            **kwargs,
        )
        influences[seed] = float(np.abs(full.values - loo.values).sum())
    return full, influences


def robust_personalized_d2pr(
    graph: BaseGraph,
    seeds: Mapping[Node, float] | Sequence[Node],
    p: float,
    *,
    alpha: float = 0.85,
    beta: float = 0.0,
    weighted: bool = False,
    noise_discount: float = 0.5,
    **kwargs,
) -> NodeScores:
    """Seed-noise-robust D2PPR (related-work [14], adapted).

    Strategy: compute the full seeded result once, then for every seed a
    leave-one-out result.  A seed whose removal leaves the ranking nearly
    unchanged is *redundant or noisy*; a seed whose removal changes the
    result a lot is *load-bearing*.  Each seed is re-weighted by the L1
    distance its removal causes (raised by ``noise_discount`` smoothing) and
    the final pass runs with the re-weighted teleport vector.

    All leave-one-out systems share one transition matrix and differ only
    in their teleport vector, so the full pass and every leave-one-out pass
    run as **one batched solve** (:func:`repro.core.engine.solve_many`) —
    K+1 columns advanced by a single sparse·dense multiply per sweep.  The
    batched path covers the power solver; other solvers fall back to the
    per-seed loop.

    With a single seed the function reduces to :func:`personalized_d2pr`.

    Parameters
    ----------
    noise_discount:
        Floor (relative to the largest influence) below which a seed's
        weight is scaled down; 0 disables down-weighting entirely.
    """
    if not 0.0 <= noise_discount <= 1.0:
        raise ParameterError(
            f"noise_discount must be in [0, 1], got {noise_discount}"
        )
    weights = seed_weights(seeds)
    if len(weights) == 1:
        return personalized_d2pr(
            graph, weights, p, alpha=alpha, beta=beta, weighted=weighted, **kwargs
        )

    seed_order = list(weights)
    if kwargs.get("solver", "power") == "power":
        full, influences = _batched_influences(
            graph, weights, seed_order, p,
            alpha=alpha, beta=beta, weighted=weighted, **kwargs,
        )
    else:
        full, influences = _sequential_influences(
            graph, weights, seed_order, p,
            alpha=alpha, beta=beta, weighted=weighted, **kwargs,
        )

    max_influence = max(influences.values())
    if max_influence <= 0.0:
        # All seeds equivalent: nothing to re-weight.
        return full
    adjusted: dict[Node, float] = {}
    for seed, base_weight in weights.items():
        relative = influences[seed] / max_influence
        # Seeds below the discount floor are treated as suspected noise and
        # scaled by their relative influence; others keep full weight.
        factor = relative if relative < noise_discount else 1.0
        adjusted[seed] = base_weight * max(factor, 1e-12)
    return personalized_d2pr(
        graph, adjusted, p, alpha=alpha, beta=beta, weighted=weighted, **kwargs
    )
