"""HITS (hubs and authorities) — an eigen-analysis significance baseline.

The paper's introduction groups PageRank with other "authority, prestige
and prominence" measures computed through eigen-analysis.  HITS is the
classic representative: authority scores are the dominant eigenvector of
``AᵀA``, hub scores of ``AAᵀ``.  On undirected graphs the two coincide and
equal the dominant eigenvector of the adjacency matrix (eigenvector
centrality), which — like PageRank — is strongly degree-coupled, making it
a useful second baseline in the extension experiments.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import NodeScores
from repro.errors import ConvergenceError, ParameterError
from repro.graph.base import BaseGraph

__all__ = ["hits", "HitsResult"]


class HitsResult:
    """Hub and authority score pair."""

    def __init__(self, hubs: NodeScores, authorities: NodeScores) -> None:
        self.hubs = hubs
        self.authorities = authorities

    def __iter__(self):
        yield self.hubs
        yield self.authorities


def hits(
    graph: BaseGraph,
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
    weighted: bool = False,
    raise_on_failure: bool = False,
) -> HitsResult:
    """Compute HITS hub/authority scores by power iteration.

    Parameters
    ----------
    graph:
        Directed or undirected graph.  For undirected graphs hubs equal
        authorities (eigenvector centrality).
    tol:
        L1 convergence tolerance on the authority vector.
    max_iter:
        Iteration budget.
    weighted:
        Use stored edge weights.
    raise_on_failure:
        Raise :class:`ConvergenceError` when the budget is exhausted.

    Returns
    -------
    HitsResult
        ``result.hubs`` and ``result.authorities`` as :class:`NodeScores`
        (each normalised to sum 1).
    """
    graph.require_nonempty()
    if max_iter <= 0:
        raise ParameterError(f"max_iter must be positive, got {max_iter}")
    # The bundle is a view cache, not a stochastic-matrix contract: it
    # memoises the CSR transpose per graph version, so repeated HITS runs
    # (and anything else iterating Aᵀ) stop paying the conversion.
    bundle = graph.operator_bundle(
        ("hits_adjacency", bool(weighted)),
        lambda: graph.to_csr(weighted=weighted),
    )
    adjacency = bundle.mat
    adjacency_t = bundle.t_csr
    n = adjacency.shape[0]
    authorities = np.full(n, 1.0 / n)
    hubs_vec = np.full(n, 1.0 / n)
    converged = False
    for _ in range(max_iter):
        new_auth = adjacency_t @ hubs_vec
        total = new_auth.sum()
        if total == 0.0:  # graph with no edges
            new_auth = np.full(n, 1.0 / n)
        else:
            new_auth /= total
        new_hubs = adjacency @ new_auth
        total = new_hubs.sum()
        if total == 0.0:
            new_hubs = np.full(n, 1.0 / n)
        else:
            new_hubs /= total
        residual = float(np.abs(new_auth - authorities).sum())
        authorities, hubs_vec = new_auth, new_hubs
        if residual < tol:
            converged = True
            break
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"HITS did not reach tol={tol} within {max_iter} iterations",
            iterations=max_iter,
            residual=residual,
        )
    return HitsResult(
        hubs=NodeScores(graph, hubs_vec),
        authorities=NodeScores(graph, authorities),
    )
