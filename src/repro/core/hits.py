"""HITS (hubs and authorities) — an eigen-analysis significance baseline.

The paper's introduction groups PageRank with other "authority, prestige
and prominence" measures computed through eigen-analysis.  HITS is the
classic representative: authority scores are the dominant eigenvector of
``AᵀA``, hub scores of ``AAᵀ``.  On undirected graphs the two coincide and
equal the dominant eigenvector of the adjacency matrix (eigenvector
centrality), which — like PageRank — is strongly degree-coupled, making it
a useful second baseline in the extension experiments.

The iteration itself lives in the method registry
(:class:`repro.methods.HitsMethod`); this module keeps the public
hub/authority pair API and derives hubs from the served authority vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import NodeScores
from repro.errors import ParameterError
from repro.graph.base import BaseGraph

__all__ = ["hits", "HitsResult"]


class HitsResult:
    """Hub and authority score pair."""

    def __init__(self, hubs: NodeScores, authorities: NodeScores) -> None:
        self.hubs = hubs
        self.authorities = authorities

    def __iter__(self):
        yield self.hubs
        yield self.authorities


def hits(
    graph: BaseGraph,
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
    weighted: bool = False,
    raise_on_failure: bool = False,
) -> HitsResult:
    """Compute HITS hub/authority scores by power iteration.

    Parameters
    ----------
    graph:
        Directed or undirected graph.  For undirected graphs hubs equal
        authorities (eigenvector centrality).
    tol:
        L1 convergence tolerance on the authority vector.
    max_iter:
        Iteration budget.
    weighted:
        Use stored edge weights.
    raise_on_failure:
        Raise :class:`ConvergenceError` when the budget is exhausted.

    Returns
    -------
    HitsResult
        ``result.hubs`` and ``result.authorities`` as :class:`NodeScores`
        (each normalised to sum 1).
    """
    from repro.methods import adjacency_bundle, resolve

    graph.require_nonempty()
    if max_iter <= 0:
        raise ParameterError(f"max_iter must be positive, got {max_iter}")
    method = resolve("hits")
    result = method.solve(
        graph,
        ("hits", bool(weighted)),
        tol=tol,
        max_iter=max_iter,
        raise_on_failure=raise_on_failure,
    )
    authorities = result.scores
    # Hubs are one adjacency matvec away from the authority fixed point
    # (hubs ∝ A·auth); the bundle is the same cached view the solver used.
    adjacency = adjacency_bundle(graph, weighted=weighted).mat
    n = adjacency.shape[0]
    hubs_vec = adjacency @ authorities
    total = hubs_vec.sum()
    if total == 0.0:  # graph with no edges
        hubs_vec = np.full(n, 1.0 / n)
    else:
        hubs_vec = hubs_vec / total
    return HitsResult(
        hubs=NodeScores(graph, hubs_vec),
        authorities=NodeScores(graph, authorities),
    )
