"""Shared plumbing between the score functions in :mod:`repro.core`.

Handles teleport-vector construction from node-keyed inputs, solver
dispatch, and extraction of the adjacency/theta pair that parameterises the
degree de-coupled transition for each graph flavour (undirected / directed /
weighted).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np
from scipy import sparse

from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.linalg.solvers import (
    PageRankResult,
    direct_solve,
    gauss_seidel,
    power_iteration,
)

__all__ = [
    "SOLVERS",
    "build_teleport",
    "solve_transition",
    "adjacency_and_theta",
]

SOLVERS = ("power", "gauss_seidel", "direct")


def build_teleport(
    graph: BaseGraph,
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None,
) -> np.ndarray | None:
    """Normalise the caller's teleport specification into a dense vector.

    Accepts:

    * ``None`` — uniform teleportation (the solvers' default);
    * a numpy array already aligned with node indices;
    * a mapping ``{node: weight}`` (personalised PageRank seeds);
    * a sequence of nodes — each listed node gets equal weight (the common
      "seed set" form of personalisation).
    """
    if teleport is None:
        return None
    n = graph.number_of_nodes
    if isinstance(teleport, np.ndarray):
        if teleport.shape != (n,):
            raise ParameterError(
                f"teleport array must have shape ({n},), got {teleport.shape}"
            )
        return teleport.astype(np.float64)
    vec = np.zeros(n, dtype=np.float64)
    if isinstance(teleport, Mapping):
        for node, weight in teleport.items():
            weight = float(weight)
            if weight < 0:
                raise ParameterError(
                    f"teleport weight for {node!r} must be >= 0, got {weight}"
                )
            vec[graph.index_of(node)] += weight
    else:
        for node in teleport:
            vec[graph.index_of(node)] += 1.0
    if vec.sum() <= 0.0:
        raise ParameterError("teleport specification has no positive mass")
    return vec


def solve_transition(
    transition: sparse.spmatrix,
    *,
    solver: str = "power",
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
    **extra: Any,
) -> PageRankResult:
    """Dispatch to one of the three solvers by name."""
    if solver == "power":
        return power_iteration(
            transition,
            alpha=alpha,
            teleport=teleport,
            tol=tol,
            max_iter=max_iter,
            dangling=dangling,
            **extra,
        )
    if solver == "gauss_seidel":
        return gauss_seidel(
            transition,
            alpha=alpha,
            teleport=teleport,
            tol=tol,
            max_iter=max(max_iter, 1),
            dangling=dangling,
            **extra,
        )
    if solver == "direct":
        return direct_solve(
            transition, alpha=alpha, teleport=teleport, dangling=dangling
        )
    raise ParameterError(
        f"unknown solver {solver!r}; expected one of {SOLVERS}"
    )


def adjacency_and_theta(
    graph: BaseGraph, *, weighted: bool
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Return the adjacency matrix and the paper's ``theta`` vector.

    ``theta`` is the per-node quantity whose power ``-p`` weights incoming
    transitions (Equation 1 and §3.2.2–3.2.3 of the paper):

    * undirected unweighted — node degree;
    * directed unweighted   — node out-degree;
    * weighted (either)     — total out-weight ``Θ(v) = Σ_h w(v→h)``.

    The pair is memoised on the graph's mutation-aware cache, so repeated
    solves and parameter sweeps reuse one export per graph version.
    """
    graph.require_nonempty()

    def build() -> tuple[sparse.csr_matrix, np.ndarray]:
        adjacency = graph.to_csr(weighted=weighted)
        if weighted:
            theta = np.asarray(adjacency.sum(axis=1)).ravel()
        else:
            # Degree for undirected graphs, out-degree for DiGraph — both
            # are exactly out_degree_vector on our representation.
            theta = graph.out_degree_vector()
        return adjacency, theta

    return graph.cached(("adj_theta", bool(weighted)), build)
