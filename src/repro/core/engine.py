"""Shared plumbing between the score functions in :mod:`repro.core`.

Handles teleport-vector construction from node-keyed inputs, solver
dispatch, and extraction of the adjacency/theta pair that parameterises the
degree de-coupled transition for each graph flavour (undirected / directed /
weighted).

It also hosts the **batched multi-query engine**: :class:`RankQuery`
describes one ``(p, α, β, teleport)`` ranking request and
:func:`solve_many` compiles a list of them against one graph — queries
sharing a transition matrix (same ``p``/``β``/``weighted``) are grouped and
dispatched as a single ``n × K`` block through
:func:`repro.linalg.power_iteration_batch`, and consecutive groups along a
smooth ``p`` grid warm-start from the previous group's solutions.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse

from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.linalg.batch import power_iteration_batch
from repro.linalg.operator import LinearOperatorBundle
from repro.linalg.push import forward_push
from repro.telemetry.trace import annotate
from repro.linalg.solvers import (
    DANGLING_STRATEGIES,
    PageRankResult,
    direct_solve,
    gauss_seidel,
    power_iteration,
)

__all__ = [
    "SOLVERS",
    "RankQuery",
    "build_teleport",
    "solve_transition",
    "solve_many",
    "update_scores",
    "update_scores_many",
    "adjacency_and_theta",
]

SOLVERS = ("power", "gauss_seidel", "direct", "push", "sharded")


def build_teleport(
    graph: BaseGraph,
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None,
) -> np.ndarray | None:
    """Normalise the caller's teleport specification into a dense vector.

    Accepts:

    * ``None`` — uniform teleportation (the solvers' default);
    * a numpy array already aligned with node indices;
    * a mapping ``{node: weight}`` (personalised PageRank seeds);
    * a sequence of nodes — each listed node gets equal weight (the common
      "seed set" form of personalisation).
    """
    if teleport is None:
        return None
    n = graph.number_of_nodes
    if isinstance(teleport, np.ndarray):
        if teleport.shape != (n,):
            raise ParameterError(
                f"teleport array must have shape ({n},), got {teleport.shape}"
            )
        return teleport.astype(np.float64)
    vec = np.zeros(n, dtype=np.float64)
    if isinstance(teleport, Mapping):
        for node, weight in teleport.items():
            weight = float(weight)
            if weight < 0:
                raise ParameterError(
                    f"teleport weight for {node!r} must be >= 0, got {weight}"
                )
            vec[graph.index_of(node)] += weight
    else:
        for node in teleport:
            vec[graph.index_of(node)] += 1.0
    if vec.sum() <= 0.0:
        raise ParameterError("teleport specification has no positive mass")
    return vec


def solve_transition(
    transition: sparse.spmatrix,
    *,
    solver: str = "power",
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
    operator: LinearOperatorBundle | None = None,
    warm_from: np.ndarray | None = None,
    **extra: Any,
) -> PageRankResult:
    """Dispatch to one of the solvers by name.

    ``operator`` forwards a pre-built (typically graph-cached)
    :class:`~repro.linalg.operator.LinearOperatorBundle` so no solver
    re-derives transpose/dangling views per call; when omitted each solver
    falls back to the bundle memoised on the transition matrix object.

    ``warm_from`` seeds the iterative solvers with a previous solution
    (the streaming-update hot path: scores of the pre-delta system are an
    excellent initial iterate for the post-delta one).  Supported by
    ``"power"`` and ``"gauss_seidel"``; ``"direct"`` is exact and ignores
    it; ``"push"`` rejects it — its warm state is residual mass, not an
    iterate (use :func:`update_scores` /
    :func:`repro.linalg.incremental.incremental_update` instead).

    ``solver="push"`` routes to :func:`~repro.linalg.push.forward_push`,
    the low-latency path for sparse personalised teleports; a ``None``
    (uniform) teleport or a non-localized query falls back to power
    iteration inside the push solver itself.

    ``solver="sharded"`` routes to
    :func:`~repro.shard.solver.sharded_solve` — block relaxation with the
    aggregation/disaggregation coarse correction over a
    :class:`~repro.shard.operator.ShardedOperator`.  Sharding options
    (``sharded``, ``n_shards``, ``method``, ``workers``,
    ``inner_sweeps``, ``precision``, ``aggregate``, ``size_floor``) pass
    through ``extra``; below the size floor it falls back transparently
    to the monolithic power path.
    """
    if warm_from is not None and solver == "push":
        raise ParameterError(
            "solver='push' does not take warm_from; use update_scores / "
            "incremental_update for warm incremental solving"
        )
    if warm_from is not None and "x0" in extra:
        raise ParameterError("pass either warm_from or x0, not both")
    if solver == "power":
        return power_iteration(
            transition,
            alpha=alpha,
            teleport=teleport,
            tol=tol,
            max_iter=max_iter,
            dangling=dangling,
            operator=operator,
            x0=warm_from if warm_from is not None else extra.pop("x0", None),
            **extra,
        )
    if solver == "gauss_seidel":
        return gauss_seidel(
            transition,
            alpha=alpha,
            teleport=teleport,
            tol=tol,
            max_iter=max(max_iter, 1),
            dangling=dangling,
            operator=operator,
            x0=warm_from if warm_from is not None else extra.pop("x0", None),
            **extra,
        )
    if solver == "direct":
        return direct_solve(
            transition,
            alpha=alpha,
            teleport=teleport,
            dangling=dangling,
            operator=operator,
        )
    if solver == "push":
        if teleport is None:
            # Uniform teleport has no sparse support to push from; serve
            # it with the cached-operator power path the push solver would
            # fall back to anyway (dropping push-only options it has no
            # use for).
            power_extra = {
                k: v for k, v in extra.items() if k != "frontier_cap"
            }
            return power_iteration(
                transition,
                alpha=alpha,
                teleport=None,
                tol=tol,
                max_iter=max_iter,
                dangling=dangling,
                operator=operator,
                **power_extra,
            )
        return forward_push(
            transition,
            np.asarray(teleport, dtype=np.float64),
            alpha=alpha,
            tol=tol,
            max_iter=max_iter,
            dangling=dangling,
            operator=operator,
            **extra,
        )
    if solver == "sharded":
        from repro.shard.solver import sharded_solve  # local: keep the
        # shard package (and its multiprocessing import) off the default
        # import path of every non-sharded caller.

        return sharded_solve(
            transition,
            alpha=alpha,
            teleport=teleport,
            dangling=dangling,
            tol=tol,
            max_iter=max_iter,
            operator=operator,
            x0=warm_from if warm_from is not None else extra.pop("x0", None),
            **extra,
        )
    raise ParameterError(
        f"unknown solver {solver!r}; expected one of {SOLVERS}"
    )


@dataclass(frozen=True, eq=False)
class RankQuery:
    """One ranking request against a graph: method + parameters + teleport.

    Queries are the unit of work of :func:`solve_many`.  Two queries
    that share a transition-group key (the family-tagged tuple their
    :class:`~repro.methods.CentralityMethod` builds from the parameters)
    share a transition matrix and are solved together in one batched
    pass; ``alpha`` and ``teleport`` vary freely within a batch.
    Non-batchable (spectral) methods are solved per query through the
    method descriptor.

    Attributes
    ----------
    p:
        Degree de-coupling weight (0 = conventional PageRank).
    alpha:
        Residual probability.
    beta:
        Connection-strength blend (weighted graphs only).
    weighted:
        Honour stored edge weights.
    teleport:
        ``None`` (uniform), an index-aligned array, a ``{node: weight}``
        mapping, or a sequence of seed nodes.
    dangling:
        Dangling-mass strategy: ``"teleport"``, ``"uniform"`` or ``"self"``.
    method:
        Registered :class:`~repro.methods.CentralityMethod` name; the
        descriptor owns which fields above the method accepts.
    fatigue:
        Fatigue strength γ ∈ [0, 1) (``method="fatigued"``).
    """

    p: float = 0.0
    alpha: float = 0.85
    beta: float = 0.0
    weighted: bool = False
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None = None
    dangling: str = "teleport"
    method: str = "d2pr"
    fatigue: float = 0.0

    def method_params(self):
        """This query's parameters in the registry's normalised view."""
        from repro.methods import MethodParams

        return MethodParams(
            p=float(self.p),
            alpha=float(self.alpha),
            beta=float(self.beta),
            weighted=bool(self.weighted),
            dangling=self.dangling,
            fatigue=float(self.fatigue),
            has_seeds=self.teleport is not None,
        )

    def validate(self) -> None:
        """Raise :class:`ParameterError` on out-of-domain settings.

        Delegates to the resolved method descriptor, so the engine and
        the serving layer enforce one parameter vocabulary.
        """
        from repro.methods import resolve

        resolve(self.method).validate(self.method_params())

    @property
    def group_key(self) -> tuple:
        """The family-tagged transition identity this query solves on."""
        from repro.methods import resolve

        return resolve(self.method).group_key(self.method_params())


def _teleport_digest(vec: np.ndarray | None) -> bytes | None:
    """Stable identity of a teleport vector for warm-start matching.

    The digest is taken over the vector **normalised to unit mass**, so
    two proportional teleports (``v`` and ``3·v``) — which define the
    same personalised system — always digest equal and can warm-start
    each other.  A vector without positive finite mass has no valid
    normalisation (and no valid solve): it raises
    :class:`~repro.errors.ParameterError` here instead of silently
    digesting raw bytes, which used to let a zero vector produce a
    "valid-looking" digest while scaled copies of one teleport failed to
    match.
    """
    if vec is None:
        return None
    arr = np.ascontiguousarray(vec, dtype=np.float64)
    if not np.isfinite(arr).all() or (arr < 0).any():
        raise ParameterError(
            "teleport vector must be non-negative and finite"
        )
    total = arr.sum()
    if total <= 0.0:
        raise ParameterError("teleport vector must have positive mass")
    return hashlib.sha1((arr / total).tobytes()).digest()


def solve_many(
    graph: BaseGraph,
    queries: Sequence[RankQuery],
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
    clamp_min: float | None = None,
    warm_start: bool = True,
    precision: str = "double",
    solver: str = "batch",
    n_shards: int = 8,
    shard_workers: int | None = None,
    raise_on_failure: bool = False,
) -> list:
    """Solve many ranking queries against one graph in batched passes.

    The queries are grouped by transition matrix — every distinct
    family-tagged group key (built by each query's
    :class:`~repro.methods.CentralityMethod`, e.g.
    ``("d2pr", p, beta, weighted, dangling)``) builds (or reuses, via
    the graph's matrix cache) one matrix — and each batchable group is
    dispatched as a single ``n × K`` block through
    :func:`repro.linalg.power_iteration_batch`: one CSR·dense multiply
    per sweep instead of K independent matvec loops.  Queries of
    non-batchable (spectral) methods are solved per query through their
    descriptor's ``solve`` — their operator is the raw adjacency, not a
    stochastic transition, so they cannot share a pooled block.

    Groups are processed in each method's declared ``sort_key`` order
    (for the stochastic family: ``(weighted, dangling, beta, p)``
    within the family tag).  When ``warm_start`` is on and two
    consecutive groups contain structurally identical columns (same
    alphas, same teleports — the shape of every parameter sweep), the
    later group starts from the earlier group's solutions, which cuts
    iteration counts along smooth ``p`` grids.

    Parameters
    ----------
    graph:
        The data graph shared by every query.
    queries:
        The ranking requests; results are returned in the same order.
    tol, max_iter:
        Convergence controls, shared by the whole call.
    clamp_min:
        Theta clamp forwarded to the transition builder (``None`` =
        scale-safe default).
    warm_start:
        Seed each group from the previous group's solutions when the
        column structure matches.
    precision:
        ``"double"`` (default, matches per-query solves to 1e-12) or
        ``"mixed"`` (float32 sweeps + float64 polish to ``tol`` — the
        serving configuration; see
        :func:`~repro.linalg.power_iteration_batch`).
    solver:
        ``"batch"`` (default) advances each group as one ``n × K`` block
        through :func:`~repro.linalg.power_iteration_batch`;
        ``"sharded"`` solves each group's queries through one
        graph-cached :class:`~repro.shard.operator.ShardedOperator`
        (:func:`~repro.core.d2pr.d2pr_sharded_operator`) — the
        block-partitioned path for graphs too large to stream whole,
        falling back to the monolithic path below the sharding size
        floor.
    n_shards, shard_workers:
        Shard count and worker-pool size of the ``"sharded"`` solver
        (``None``/``1`` workers = serial block Gauss–Seidel).
    raise_on_failure:
        Raise :class:`~repro.errors.ConvergenceError` if any column fails
        to converge.

    Returns
    -------
    list[NodeScores]
        One result per query, aligned with the input order.
    """
    annotate(engine="solve_many", engine_queries=len(queries))

    from repro.core.results import NodeScores
    from repro.methods import family_method, operator_for

    if solver not in ("batch", "sharded"):
        raise ParameterError(
            f"solver must be 'batch' or 'sharded', got {solver!r}"
        )
    queries = list(queries)
    if not queries:
        return []
    graph.require_nonempty()
    for query in queries:
        query.validate()

    vectors = [build_teleport(graph, q.teleport) for q in queries]

    groups: dict[tuple, list[int]] = {}
    for idx, query in enumerate(queries):
        groups.setdefault(query.group_key, []).append(idx)

    # Teleport digests exist only to match column structure between
    # consecutive groups for warm starting; hashing a dense vector per
    # query costs real time on big graphs, so skip it whenever there is
    # nothing to match (single group, or warm starts disabled).
    if warm_start and len(groups) > 1:
        digests = [_teleport_digest(v) for v in vectors]
    else:
        digests = None

    out: list = [None] * len(queries)
    prev_signature: tuple | None = None
    prev_scores: np.ndarray | None = None
    for key in sorted(groups, key=lambda k: family_method(k).sort_key(k)):
        indices = groups[key]
        fam = family_method(key)
        if not fam.batchable:
            # Spectral methods: per-query direct solves through the
            # descriptor (the adjacency operator is not stochastic, so
            # a pooled power_iteration_batch block cannot serve them).
            for idx in indices:
                result = fam.solve(
                    graph,
                    key,
                    alpha=float(queries[idx].alpha),
                    teleport=vectors[idx],
                    tol=tol,
                    max_iter=max_iter,
                    clamp_min=clamp_min,
                    raise_on_failure=raise_on_failure,
                )
                out[idx] = NodeScores(graph, result.scores, result)
            continue
        dangling = key[-1]
        bundle = operator_for(graph, key, clamp_min=clamp_min)
        transition = bundle.mat
        teleports = [vectors[i] for i in indices]
        alphas = np.array([queries[i].alpha for i in indices])
        if solver == "sharded" and fam.supports_sharding:
            from repro.methods import sharded_operator_for  # local
            from repro.shard.solver import sharded_solve

            sharded = sharded_operator_for(
                graph,
                key,
                clamp_min=clamp_min,
                n_shards=n_shards,
                force=True,
            )
            for j, idx in enumerate(indices):
                result = sharded_solve(
                    alpha=float(alphas[j]),
                    teleport=teleports[j],
                    dangling=dangling,
                    tol=tol,
                    max_iter=max_iter,
                    operator=bundle,
                    sharded=sharded,
                    workers=shard_workers,
                    precision=precision,
                    raise_on_failure=raise_on_failure,
                )
                out[idx] = NodeScores(graph, result.scores, result)
            continue
        signature = (
            tuple((float(queries[i].alpha), digests[i]) for i in indices)
            if digests is not None
            else None
        )
        initial = (
            prev_scores
            if signature is not None and signature == prev_signature
            else None
        )
        batch = power_iteration_batch(
            transition,
            teleports=teleports,
            alphas=alphas,
            tol=tol,
            max_iter=max_iter,
            dangling=dangling,
            warm_start=initial,
            precision=precision,
            raise_on_failure=raise_on_failure,
            operator=bundle,
        )
        for j, idx in enumerate(indices):
            column = batch.column(j)
            out[idx] = NodeScores(graph, column.scores, column)
        prev_signature = signature
        prev_scores = batch.scores
    return out


def update_scores(
    previous,
    delta,
    *,
    p: float = 0.0,
    alpha: float = 0.85,
    beta: float = 0.0,
    weighted: bool = False,
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None = None,
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
    clamp_min: float | None = None,
    frontier_cap: float = 0.2,
    apply_delta: bool = True,
    method: str = "d2pr",
    fatigue: float = 0.0,
):
    """Apply a graph delta and incrementally update a previous solution.

    The streaming serving path: given the :class:`~repro.core.results.
    NodeScores` of an earlier :func:`~repro.core.d2pr.d2pr` /
    :func:`~repro.core.pagerank.pagerank` solve and a
    :class:`~repro.graph.delta.GraphDelta`, this

    1. applies the delta to the scores' graph through the delta-aware
       cache refresh (:meth:`~repro.graph.base.BaseGraph.apply_delta` —
       cached matrices and operator bundles are patched, not evicted),
    2. re-solves by **residual correction**
       (:func:`~repro.linalg.incremental.incremental_update`): only the
       residual the delta creates is propagated, instead of re-streaming
       the whole matrix for a cold solve.

    ``(p, alpha, beta, weighted, teleport, dangling, clamp_min)`` must
    describe the query that produced ``previous`` — the delta changes
    the graph, not the question.  The result converges to the cold
    re-solve answer within solver tolerance (certified; see
    ``linalg/incremental.py``) and is typically far cheaper for deltas
    touching a small fraction of edges (``tools/bench_perf.py``,
    ``dynamic_update``).

    ``apply_delta=False`` skips step 1 for callers that already applied
    the delta (e.g. several ``update_scores`` calls for different
    queries after one mutation).  Frozen (shared) graphs raise
    :class:`~repro.errors.FrozenGraphError` from step 1, exactly like
    any other mutation.

    Returns
    -------
    NodeScores
        Updated scores on the (mutated) graph; ``solver_result.method``
        reports ``"incremental_push"`` or ``"incremental_fallback"``.
    """
    query = RankQuery(
        p=p,
        alpha=alpha,
        beta=beta,
        weighted=weighted,
        teleport=teleport,
        dangling=dangling,
        method=method,
        fatigue=fatigue,
    )
    return update_scores_many(
        [previous],
        delta,
        [query],
        tol=tol,
        max_iter=max_iter,
        clamp_min=clamp_min,
        frontier_cap=frontier_cap,
        apply_delta=apply_delta,
    )[0]


def update_scores_many(
    previous: Sequence,
    delta,
    queries: Sequence[RankQuery] | None = None,
    *,
    tol: float = 1e-10,
    max_iter: int = 1000,
    clamp_min: float | None = None,
    frontier_cap: float = 0.2,
    apply_delta: bool = True,
) -> list:
    """Apply one delta and incrementally update a whole block of solutions.

    The batched counterpart of :func:`update_scores` — the delta-aware
    entry point for :func:`solve_many` consumers (parameter sweeps,
    bulk-served cohorts, the serving layer's cached blocks): given the
    :class:`~repro.core.results.NodeScores` of several earlier solves
    against **one graph** and the :class:`~repro.graph.delta.GraphDelta`
    that graph is about to absorb, every solution is re-certified by
    residual correction instead of a cold re-solve, and the per-delta
    costs are paid **once for the whole block**:

    * each query's *baseline residual* is captured against its
      still-cached pre-delta operator bundle — queries sharing a
      transition matrix share one bundle and one CSC view, so a block of
      K personalised queries costs K matvecs, not K bundle builds;
    * the delta is applied once (one columnar merge, one delta-aware
      cache refresh);
    * corrections run per query against the refreshed post-delta bundles
      (grouped, again, by transition matrix), each with the same
      certified O(tol) distance to its cold re-solve as
      :func:`~repro.linalg.incremental.incremental_update` guarantees —
      de-localised corrections fall back to warm-started power iteration
      per query, so the block always converges.

    Parameters
    ----------
    previous:
        The earlier solutions, one :class:`~repro.core.results.NodeScores`
        per query, all on the same graph object.
    delta:
        The :class:`~repro.graph.delta.GraphDelta` to absorb.
    queries:
        One :class:`RankQuery` per entry of ``previous`` describing the
        query that produced it (the delta changes the graph, not the
        questions).  ``None`` means every entry was a default global
        ranking (``RankQuery()``).
    tol, max_iter, clamp_min, frontier_cap:
        As in :func:`update_scores`, shared by the whole block.
    apply_delta:
        ``False`` skips both the baseline capture and the delta
        application for callers that already applied the delta.

    Returns
    -------
    list[NodeScores]
        Updated scores aligned with ``previous``.
    """
    annotate(engine="update_scores_many", engine_blocks=len(previous))

    from repro.core.results import NodeScores
    from repro.linalg.incremental import incremental_update, residual_vector
    from repro.linalg.solvers import _validate_common
    from repro.methods import operator_for, resolve

    previous = list(previous)
    if not previous:
        return []
    for scores in previous:
        if not isinstance(scores, NodeScores):
            raise ParameterError(
                "previous must hold the NodeScores of earlier solves, "
                f"got {type(scores).__name__}"
            )
    graph = previous[0].graph
    if any(scores.graph is not graph for scores in previous):
        raise ParameterError(
            "all previous solutions must be computed on the same graph "
            "object (one delta mutates one graph)"
        )
    if queries is None:
        queries = [RankQuery()] * len(previous)
    queries = list(queries)
    if len(queries) != len(previous):
        raise ParameterError(
            f"got {len(previous)} previous solutions but "
            f"{len(queries)} queries; they must align one-to-one"
        )
    for query in queries:
        query.validate()
        if not resolve(query.method).supports_incremental:
            raise ParameterError(
                f"method {query.method!r} does not support incremental "
                "residual correction; re-solve it after the delta instead"
            )

    vectors = [build_teleport(graph, q.teleport) for q in queries]
    groups: dict[tuple, list[int]] = {}
    for idx, query in enumerate(queries):
        groups.setdefault(query.group_key, []).append(idx)

    baselines: list[np.ndarray | None] = [None] * len(previous)
    if apply_delta:
        # Capture every query's old-system residual before the delta
        # lands: the bundles are (typically) still cached, and one
        # matvec through the free CSC view per query costs far less
        # than the global-dust cleanup it saves the push solver (see
        # ``incremental_update``'s baseline_residual).
        for key, indices in groups.items():
            dangling = key[-1]
            old_bundle = operator_for(graph, key, clamp_min=clamp_min)
            for idx in indices:
                _, t_norm = _validate_common(
                    None, queries[idx].alpha, vectors[idx], old_bundle
                )
                prev_values = previous[idx].values
                prev_total = prev_values.sum()
                if prev_total > 0.0:
                    baselines[idx] = residual_vector(
                        old_bundle,
                        prev_values / prev_total,
                        t_norm,
                        queries[idx].alpha,
                        dangling,
                    )
        graph.apply_delta(delta)

    out: list = [None] * len(previous)
    for key, indices in groups.items():
        dangling = key[-1]
        bundle = operator_for(graph, key, clamp_min=clamp_min)
        for idx in indices:
            result = incremental_update(
                None,
                previous[idx].values,
                alpha=queries[idx].alpha,
                teleport=vectors[idx],
                dangling=dangling,
                tol=tol,
                max_iter=max_iter,
                frontier_cap=frontier_cap,
                operator=bundle,
                baseline_residual=baselines[idx],
            )
            out[idx] = NodeScores(graph, result.scores, result)
    return out


def adjacency_and_theta(
    graph: BaseGraph, *, weighted: bool
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Return the adjacency matrix and the paper's ``theta`` vector.

    ``theta`` is the per-node quantity whose power ``-p`` weights incoming
    transitions (Equation 1 and §3.2.2–3.2.3 of the paper):

    * undirected unweighted — node degree;
    * directed unweighted   — node out-degree;
    * weighted (either)     — total out-weight ``Θ(v) = Σ_h w(v→h)``.

    The pair is memoised on the graph's mutation-aware cache, so repeated
    solves and parameter sweeps reuse one export per graph version.
    """
    graph.require_nonempty()

    def build() -> tuple[sparse.csr_matrix, np.ndarray]:
        adjacency = graph.to_csr(weighted=weighted)
        if weighted:
            theta = np.asarray(adjacency.sum(axis=1)).ravel()
        else:
            # Degree for undirected graphs, out-degree for DiGraph — both
            # are exactly out_degree_vector on our representation.
            theta = graph.out_degree_vector()
        return adjacency, theta

    return graph.cached(("adj_theta", bool(weighted)), build)
