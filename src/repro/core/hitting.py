"""Random-walk hitting times (related-work baseline [10, 21]).

The hitting time ``h(u, v)`` is the expected number of steps a random walk
starting at ``u`` needs to first reach ``v``.  The paper's related-work
section lists hitting-time measures as the other major family of
random-walk relatedness scores; having them in the library lets the
examples contrast degree-sensitive PageRank scores with a path-based
measure on the same graphs.

Computed exactly by solving the linear system

.. math::

    h(u) = 1 + \\sum_{w} P(u, w)\\, h(w), \\qquad h(v) = 0

restricted to the nodes that can actually reach ``v`` (others get ``inf``).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.graph.base import BaseGraph, Node
from repro.linalg.transition import (
    connection_strength_transition,
    uniform_transition,
)

__all__ = ["hitting_times", "commute_time"]


def _reachers(transition: sparse.csr_matrix, target: int) -> np.ndarray:
    """Boolean mask of nodes with a directed path *to* ``target``."""
    n = transition.shape[0]
    reverse = transition.T.tocsr()
    seen = np.zeros(n, dtype=bool)
    seen[target] = True
    stack = [target]
    while stack:
        i = stack.pop()
        row = reverse.indices[reverse.indptr[i] : reverse.indptr[i + 1]]
        for j in row:
            if not seen[j]:
                seen[j] = True
                stack.append(int(j))
    return seen


def hitting_times(
    graph: BaseGraph,
    target: Node,
    *,
    weighted: bool = False,
) -> dict[Node, float]:
    """Expected steps from every node to ``target`` under the uniform walk.

    Nodes that cannot reach ``target`` get ``float('inf')``; the target
    itself gets ``0.0``.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> times = hitting_times(g, "a")
    >>> times["a"]
    0.0
    >>> times["b"] < times["c"]
    True
    """
    graph.require_nonempty()
    adjacency = graph.to_csr(weighted=weighted)
    if weighted:
        transition = connection_strength_transition(adjacency)
    else:
        transition = uniform_transition(adjacency)
    t_idx = graph.index_of(target)
    n = transition.shape[0]

    reachable = _reachers(transition, t_idx)
    nodes = graph.nodes()
    times = {node: float("inf") for node in nodes}
    times[target] = 0.0

    keep = np.flatnonzero(reachable & (np.arange(n) != t_idx))
    if keep.size == 0:
        return times

    # Restrict the system to reaching nodes; transitions leaving the
    # reaching set (or into the target) drop out of the matrix but their
    # probability mass correctly contributes nothing to the recurrence.
    sub = transition[keep][:, keep]
    system = sparse.identity(keep.size, format="csc") - sub.tocsc()
    rhs = np.ones(keep.size)
    solution = sparse_linalg.spsolve(system, rhs)
    solution = np.atleast_1d(np.asarray(solution, dtype=np.float64))
    for local, global_idx in enumerate(keep):
        times[nodes[int(global_idx)]] = float(solution[local])
    return times


def commute_time(
    graph: BaseGraph,
    u: Node,
    v: Node,
    *,
    weighted: bool = False,
) -> float:
    """Round-trip expected steps ``h(u, v) + h(v, u)``.

    The symmetric relatedness measure used by hitting-time clustering
    methods; ``inf`` when either direction is unreachable.
    """
    forward = hitting_times(graph, v, weighted=weighted)[u]
    backward = hitting_times(graph, u, weighted=weighted)[v]
    return forward + backward
