"""Random-walk hitting times (related-work baseline [10, 21]).

The hitting time ``h(u, v)`` is the expected number of steps a random walk
starting at ``u`` needs to first reach ``v``.  The paper's related-work
section lists hitting-time measures as the other major family of
random-walk relatedness scores; having them in the library lets the
examples contrast degree-sensitive PageRank scores with a path-based
measure on the same graphs.

Computed exactly by solving the linear system

.. math::

    h(u) = 1 + \\sum_{w} P(u, w)\\, h(w), \\qquad h(v) = 0

restricted to the nodes that can actually reach ``v`` (others get ``inf``).

The transition and its solver views come from the graph's cached
:class:`~repro.linalg.operator.LinearOperatorBundle`, so repeated queries
(and both directions of :func:`commute_time`) share one export; the
reachability pass runs as a C-level BFS on the bundle's cached transpose.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph
from scipy.sparse import linalg as sparse_linalg

from repro.core.pagerank import walk_operator
from repro.graph.base import BaseGraph, Node
from repro.linalg.operator import LinearOperatorBundle

__all__ = ["hitting_times", "commute_time"]


def _reachers(bundle: LinearOperatorBundle, target: int) -> np.ndarray:
    """Boolean mask of nodes with a directed path *to* ``target``.

    A breadth-first order over the bundle's cached transpose (edges
    reversed) enumerates exactly the nodes that can reach ``target``; the
    traversal is ``scipy.sparse.csgraph``'s C implementation instead of a
    Python stack loop, and the transpose is derived once per graph version
    instead of per call.
    """
    order = csgraph.breadth_first_order(
        bundle.t_csr, target, directed=True, return_predecessors=False
    )
    seen = np.zeros(bundle.n, dtype=bool)
    seen[order] = True
    return seen


def _hitting_times_for(
    graph: BaseGraph, bundle: LinearOperatorBundle, target: Node
) -> dict[Node, float]:
    """Hitting times to ``target`` computed from a shared bundle."""
    transition = bundle.mat
    t_idx = graph.index_of(target)
    n = bundle.n

    reachable = _reachers(bundle, t_idx)
    nodes = graph.nodes()
    times = {node: float("inf") for node in nodes}
    times[target] = 0.0

    keep = np.flatnonzero(reachable & (np.arange(n) != t_idx))
    if keep.size == 0:
        return times

    # Restrict the system to reaching nodes; transitions leaving the
    # reaching set (or into the target) drop out of the matrix but their
    # probability mass correctly contributes nothing to the recurrence.
    sub = transition[keep][:, keep]
    system = sparse.identity(keep.size, format="csc") - sub.tocsc()
    rhs = np.ones(keep.size)
    solution = sparse_linalg.spsolve(system, rhs)
    solution = np.atleast_1d(np.asarray(solution, dtype=np.float64))
    for local, global_idx in enumerate(keep):
        times[nodes[int(global_idx)]] = float(solution[local])
    return times


def hitting_times(
    graph: BaseGraph,
    target: Node,
    *,
    weighted: bool = False,
) -> dict[Node, float]:
    """Expected steps from every node to ``target`` under the uniform walk.

    Nodes that cannot reach ``target`` get ``float('inf')``; the target
    itself gets ``0.0``.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> times = hitting_times(g, "a")
    >>> times["a"]
    0.0
    >>> times["b"] < times["c"]
    True
    """
    graph.require_nonempty()
    return _hitting_times_for(
        graph, walk_operator(graph, weighted=weighted), target
    )


def commute_time(
    graph: BaseGraph,
    u: Node,
    v: Node,
    *,
    weighted: bool = False,
) -> float:
    """Round-trip expected steps ``h(u, v) + h(v, u)``.

    The symmetric relatedness measure used by hitting-time clustering
    methods; ``inf`` when either direction is unreachable.  Both directions
    are served by one shared transition export/bundle — the walk operator
    does not depend on the endpoints, only the restriction does.
    """
    graph.require_nonempty()
    bundle = walk_operator(graph, weighted=weighted)
    forward = _hitting_times_for(graph, bundle, v)[u]
    backward = _hitting_times_for(graph, bundle, u)[v]
    return forward + backward
