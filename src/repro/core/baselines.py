"""Baseline node-significance measures the paper compares against.

* :func:`degree_scores` — raw degree as significance (what PageRank is
  "tightly coupled" to, Table 1).
* :func:`teleport_adjusted_pagerank` — modifies the *teleportation vector*
  instead of the transition matrix, generalising Bánky et al.'s
  "equal opportunity" method cited in the paper's related work ([2]):
  ``t[i] ∝ deg(v_i)^exponent``.  ``exponent = -1`` boosts low-degree nodes
  (their method); ``exponent = +1`` boosts hubs.  The ablation benchmark
  contrasts this against transition-matrix de-coupling.
* :func:`weighted_pagerank` — connection-strength-only PageRank, the
  paper's ``β = 1`` reference point in the weighted experiments.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.engine import build_teleport, solve_transition
from repro.core.pagerank import pagerank, walk_operator
from repro.core.results import NodeScores
from repro.errors import ParameterError
from repro.graph.base import BaseGraph, DiGraph, Node

__all__ = [
    "degree_scores",
    "teleport_adjusted_pagerank",
    "weighted_pagerank",
]


def degree_scores(graph: BaseGraph, *, weighted: bool = False) -> NodeScores:
    """Rank nodes purely by their (out-)degree or strength.

    The trivial baseline: the paper's Table 1 shows conventional PageRank
    ranks are nearly identical to these on undirected graphs.
    """
    graph.require_nonempty()
    degrees = graph.out_degree_vector(weighted=weighted)
    total = degrees.sum()
    values = degrees / total if total > 0 else np.full_like(degrees, 1.0 / len(degrees))
    return NodeScores(graph, values, None)


def teleport_adjusted_pagerank(
    graph: BaseGraph,
    exponent: float = -1.0,
    *,
    alpha: float = 0.85,
    solver: str = "power",
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> NodeScores:
    """PageRank with a degree-skewed teleportation vector.

    The transition matrix stays conventional; only where the surfer
    *restarts* changes: ``t[i] ∝ max(deg(v_i), 1)^exponent``.  This is the
    related-work alternative to D2PR — it can shift mass towards low- or
    high-degree nodes globally but cannot reshape individual transitions.

    Parameters
    ----------
    exponent:
        ``-1.0`` (default) boosts low-degree nodes, reproducing the
        equal-opportunity scheme of Bánky et al.; ``0.0`` degenerates to
        conventional PageRank.
    """
    if not np.isfinite(exponent):
        raise ParameterError(f"exponent must be finite, got {exponent}")
    graph.require_nonempty()
    degrees = graph.out_degree_vector()
    # Degree-0 nodes must keep teleport mass: clamp as in the transition.
    clamped = np.maximum(degrees, 1.0)
    log_w = exponent * np.log(clamped)
    log_w -= log_w.max()  # stabilise before exponentiation
    teleport = np.exp(log_w)
    # Shares the conventional-PageRank matrix and bundle: same transition,
    # same cached transpose/dangling views (only the teleport differs).
    bundle = walk_operator(graph)
    result = solve_transition(
        bundle.mat,
        operator=bundle,
        solver=solver,
        alpha=alpha,
        teleport=teleport,
        dangling=dangling,
        tol=tol,
        max_iter=max_iter,
    )
    return NodeScores(graph, result.scores, result)


def weighted_pagerank(
    graph: BaseGraph,
    *,
    alpha: float = 0.85,
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None = None,
    **kwargs,
) -> NodeScores:
    """Connection-strength-only PageRank (the paper's ``β = 1`` reference).

    Thin alias over :func:`repro.core.pagerank.pagerank` with
    ``weighted=True``, named to match the experiment configurations.
    """
    return pagerank(graph, alpha=alpha, weighted=True, teleport=teleport, **kwargs)
