"""Degree de-coupled PageRank (D2PR) — the paper's primary contribution.

The conventional PageRank transition gives every out-edge of a node the
same probability (or a probability proportional to edge weight).  D2PR
re-weights each transition by the *destination's* degree raised to ``-p``
(Equation 1 of the paper):

.. math::

    T_D(j, i) = \\frac{\\theta(v_j)^{-p}}
                      {\\sum_{v_k \\in N(v_i)} \\theta(v_k)^{-p}}

so a single real parameter ``p`` interpolates the whole spectrum the
paper's desideratum (§3.1) asks for:

========  ==========================================================
``p``     transition behaviour from every node
========  ==========================================================
``≪ -1``  ~100% of the mass goes to the highest-degree neighbour
``= -1``  proportional to neighbour degrees
``=  0``  conventional PageRank (uniform over neighbours)
``= +1``  inversely proportional to neighbour degrees
``≫ +1``  ~100% of the mass goes to the lowest-degree neighbour
========  ==========================================================

For weighted graphs the transition blends connection strength with degree
de-coupling (§3.2.3): ``T = β·T_conn + (1−β)·T_D`` where ``T_D`` uses the
total out-weight ``Θ(v)`` in place of the degree.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.engine import adjacency_and_theta, build_teleport, solve_transition
from repro.core.results import NodeScores
from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.linalg.transition import (
    blended_transition,
    degree_decoupled_transition,
)

__all__ = [
    "d2pr",
    "d2pr_transition",
    "d2pr_operator",
    "d2pr_sharded_operator",
    "transition_probabilities",
]


def d2pr_transition(
    graph: BaseGraph,
    p: float,
    *,
    beta: float = 0.0,
    weighted: bool = False,
    clamp_min: float | None = None,
):
    """Build the (row-stochastic) D2PR transition matrix for ``graph``.

    Parameters
    ----------
    graph:
        Undirected or directed graph.
    p:
        Degree de-coupling weight.
    beta:
        Connection-strength blend for weighted graphs; must be 0 when
        ``weighted=False`` because the paper only defines the blend for
        weighted graphs (an unweighted ``T_conn`` is just ``p = 0``).
    weighted:
        Use stored edge weights.  ``theta`` becomes the total out-weight.
    clamp_min:
        Minimum ``theta`` used for weighting.  ``None`` (default) picks
        1.0 for unweighted graphs (sinks count as degree-1 nodes, see
        DESIGN.md §5.3) and the smallest *positive* ``Θ`` for weighted
        graphs — clamping weighted thetas at a fixed 1.0 would break the
        scale-invariance of the formulation (multiplying all edge weights
        by a constant must not change the scores).

    Returns
    -------
    scipy.sparse.csr_matrix
        Rows are sources; each non-dangling row sums to 1.
    """
    if not weighted and beta != 0.0:
        raise ParameterError(
            "beta is only meaningful for weighted graphs "
            "(the paper defines the blend in §3.2.3); pass weighted=True"
        )
    graph.require_nonempty()

    def build():
        adjacency, theta = adjacency_and_theta(graph, weighted=weighted)
        resolved = clamp_min
        if resolved is None:
            if weighted:
                positive = theta[theta > 0]
                resolved = float(positive.min()) if positive.size else 1.0
            else:
                resolved = 1.0
        if weighted:
            return blended_transition(
                adjacency, p, beta, theta=theta, clamp_min=resolved
            )
        return degree_decoupled_transition(
            adjacency, p, theta=theta, clamp_min=resolved
        )

    # Memoised per graph version: sweeps and repeated solves with the same
    # (p, beta, weighted, clamp_min) reuse the built matrix.
    return graph.cached(
        ("d2pr_transition", float(p), float(beta), bool(weighted), clamp_min),
        build,
    )


def d2pr_operator(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    beta: float = 0.0,
    weighted: bool = False,
    clamp_min: float | None = None,
):
    """Graph-cached solver-operator bundle for the D2PR transition.

    Returns the :class:`~repro.linalg.operator.LinearOperatorBundle`
    wrapping :func:`d2pr_transition` with the same parameters, memoised on
    the graph's mutation-aware cache: the CSR-transpose conversion, the
    dangling mask and the patched linear-system views are derived at most
    once per graph version and shared by every single-query solve.
    """
    return graph.operator_bundle(
        ("d2pr", float(p), float(beta), bool(weighted), clamp_min),
        lambda: d2pr_transition(
            graph, p, beta=beta, weighted=weighted, clamp_min=clamp_min
        ),
    )


def d2pr_sharded_operator(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    beta: float = 0.0,
    weighted: bool = False,
    clamp_min: float | None = None,
    n_shards: int = 8,
    method: str = "auto",
    size_floor: int | None = None,
    force: bool = False,
):
    """Graph-cached block-partitioned operator for the D2PR transition.

    Wraps :func:`d2pr_operator` (same parameters, same cached bundle) in
    a :class:`~repro.shard.operator.ShardedOperator` over the graph's
    memoised :meth:`~repro.graph.base.BaseGraph.shard_plan`, and memoises
    the result on the mutation-aware cache: repeated sharded solves and
    the serving layer's shard-local push path share one set of diagonal /
    coupling blocks per graph version.  Below the size floor the
    constructor refuses unless ``force=True`` — callers wanting the
    transparent fallback should go through
    :func:`~repro.shard.solver.sharded_solve` instead.

    Note the sharded operator owns no shared-memory segments itself;
    those belong to worker pools (created on demand via ``.pool()`` and
    released by ``.close()`` or interpreter exit).
    """
    from repro.shard.operator import DEFAULT_SIZE_FLOOR, ShardedOperator

    floor = DEFAULT_SIZE_FLOOR if size_floor is None else int(size_floor)

    def build():
        bundle = d2pr_operator(
            graph, p, beta=beta, weighted=weighted, clamp_min=clamp_min
        )
        plan = graph.shard_plan(n_shards, method=method)
        return ShardedOperator(
            bundle, plan, size_floor=floor, force=force
        )

    return graph.cached(
        (
            "sharded_operator",
            "d2pr",
            float(p),
            float(beta),
            bool(weighted),
            clamp_min,
            int(n_shards),
            str(method),
        ),
        build,
    )


def d2pr(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    alpha: float = 0.85,
    beta: float = 0.0,
    weighted: bool = False,
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None = None,
    solver: str = "power",
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
    clamp_min: float | None = None,
) -> NodeScores:
    """Compute degree de-coupled PageRank scores.

    This is the paper's ``d = α·T_D·d + (1−α)·t`` with ``T_D`` from
    Equation (1) (undirected), §3.2.2 (directed, out-degree based) or
    §3.2.3 (weighted, β-blend with connection strength).

    Parameters
    ----------
    graph:
        The data graph (:class:`~repro.graph.Graph` or
        :class:`~repro.graph.DiGraph`).
    p:
        Degree de-coupling weight: ``p > 0`` penalises high-degree
        destinations, ``p < 0`` boosts them, ``p = 0`` reproduces
        conventional PageRank.
    alpha:
        Residual probability (default 0.85, the paper's default).
    beta:
        Weighted-graph blend between connection strength (``β = 1``) and
        degree de-coupling (``β = 0``, the paper's default).
    weighted:
        Honour stored edge weights (paper §3.2.3).
    teleport:
        Personalisation: ``None`` (uniform), array, ``{node: weight}``
        mapping, or a sequence of seed nodes.
    solver:
        ``"power"`` (default), ``"gauss_seidel"`` or ``"direct"``.
    dangling:
        Dangling-node strategy: ``"teleport"``, ``"uniform"`` or ``"self"``.
    tol, max_iter:
        Convergence controls for the iterative solvers.
    clamp_min:
        Degree clamp for weighting; ``None`` selects the scale-safe
        default (see :func:`d2pr_transition` and DESIGN.md §5.3).

    Returns
    -------
    NodeScores
        Scores aligned with the graph, plus solver diagnostics.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([("a", "b"), ("a", "c"), ("c", "d"), ("c", "e")])
    >>> conventional = d2pr(g, p=0.0)
    >>> penalised = d2pr(g, p=2.0)
    >>> # with p > 0 the hub "c" loses mass relative to p = 0
    >>> penalised["c"] < conventional["c"]
    True
    """
    bundle = d2pr_operator(
        graph, p, beta=beta, weighted=weighted, clamp_min=clamp_min
    )
    teleport_vec = build_teleport(graph, teleport)
    result = solve_transition(
        bundle.mat,
        solver=solver,
        alpha=alpha,
        teleport=teleport_vec,
        dangling=dangling,
        tol=tol,
        max_iter=max_iter,
        operator=bundle,
    )
    return NodeScores(graph, result.scores, result)


def transition_probabilities(
    graph: BaseGraph,
    source: Node,
    p: float,
    *,
    beta: float = 0.0,
    weighted: bool = False,
    clamp_min: float | None = None,
) -> dict[Node, float]:
    """Transition probabilities from ``source`` under D2PR.

    Reproduces the per-node view of the paper's Figure 1: for the 6-node
    example graph, ``transition_probabilities(g, "A", p=2.0)`` returns
    ``{"B": 0.18..., "C": 0.08..., "D": 0.73...}``.
    """
    transition = d2pr_transition(
        graph, p, beta=beta, weighted=weighted, clamp_min=clamp_min
    )
    row = transition.getrow(graph.index_of(source)).tocoo()
    nodes = graph.nodes()
    return {nodes[j]: float(v) for j, v in zip(row.col, row.data)}
