"""Topic-sensitive degree de-coupled PageRank.

Haveliwala's topic-sensitive PageRank ([13] in the paper) precomputes one
score vector per topic (teleportation restricted to the topic's pages) and
blends them at query time with topic weights.  Degree de-coupling composes
orthogonally: each topic vector can carry its *own* de-coupling weight,
reflecting the paper's core message that degree semantics are
application-specific — a "blockbuster movies" topic may want ``p = 0``
while a "hidden gems" topic wants ``p > 0``.

Because the fixed-point equation is linear in the teleport vector, the
blend of topic vectors *with a shared p* equals the vector computed with
the blended teleport; the test-suite checks this identity.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.d2pr import d2pr
from repro.core.results import NodeScores
from repro.errors import ParameterError, ReproError
from repro.graph.base import BaseGraph, Node

__all__ = ["Topic", "TopicSensitiveD2PR"]


@dataclass(frozen=True)
class Topic:
    """A named teleport set with its own de-coupling weight.

    Attributes
    ----------
    name:
        Topic identifier.
    seeds:
        Nodes belonging to the topic (sequence, or ``{node: weight}``).
    p:
        Degree de-coupling weight used for this topic's walk.
    """

    name: str
    seeds: Mapping[Node, float] | Sequence[Node]
    p: float = 0.0


@dataclass
class TopicSensitiveD2PR:
    """Precompute per-topic D2PR vectors; blend them at query time.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
    >>> ts = TopicSensitiveD2PR(alpha=0.85)
    >>> ts.add_topic(Topic("left", ["a"], p=0.0))
    >>> ts.add_topic(Topic("right", ["d"], p=0.0))
    >>> _ = ts.fit(g)
    >>> blended = ts.query({"left": 0.8, "right": 0.2})
    >>> blended["a"] > blended["d"]
    True
    """

    alpha: float = 0.85
    weighted: bool = False
    beta: float = 0.0
    _topics: dict[str, Topic] = field(default_factory=dict)
    _vectors: dict[str, NodeScores] = field(default_factory=dict)
    _graph: BaseGraph | None = None

    def add_topic(self, topic: Topic) -> None:
        """Register a topic (before or after :meth:`fit`; refits lazily)."""
        if topic.name in self._topics:
            raise ParameterError(f"duplicate topic name {topic.name!r}")
        self._topics[topic.name] = topic
        if self._graph is not None:
            self._vectors[topic.name] = self._compute(topic)

    def _compute(self, topic: Topic) -> NodeScores:
        assert self._graph is not None
        return d2pr(
            self._graph,
            topic.p,
            alpha=self.alpha,
            beta=self.beta if self.weighted else 0.0,
            weighted=self.weighted,
            teleport=topic.seeds,
        )

    def fit(self, graph: BaseGraph) -> "TopicSensitiveD2PR":
        """Precompute the score vector of every registered topic."""
        if not self._topics:
            raise ParameterError("register at least one topic before fit()")
        graph.require_nonempty()
        self._graph = graph
        self._vectors = {
            name: self._compute(topic) for name, topic in self._topics.items()
        }
        return self

    @property
    def topic_names(self) -> list[str]:
        """Registered topic names."""
        return list(self._topics)

    def vector(self, name: str) -> NodeScores:
        """The precomputed score vector of one topic."""
        try:
            return self._vectors[name]
        except KeyError:
            raise ParameterError(f"unknown or unfitted topic {name!r}") from None

    def query(self, topic_weights: Mapping[str, float]) -> NodeScores:
        """Blend topic vectors with the query's topic distribution.

        ``topic_weights`` maps topic names to non-negative weights (they
        are normalised internally).  Unknown topics raise.
        """
        if self._graph is None:
            raise ReproError("call fit(graph) before query()")
        if not topic_weights:
            raise ParameterError("topic_weights must not be empty")
        total = 0.0
        blended = np.zeros(self._graph.number_of_nodes)
        for name, weight in topic_weights.items():
            weight = float(weight)
            if weight < 0:
                raise ParameterError(
                    f"topic weight for {name!r} must be >= 0, got {weight}"
                )
            vec = self.vector(name)
            blended += weight * vec.values
            total += weight
        if total <= 0:
            raise ParameterError("topic weights must have positive mass")
        return NodeScores(self._graph, blended / total)
