"""Monte-Carlo simulation of the degree de-coupled random walk.

Two purposes:

1. **Independent validation** — visit frequencies of a simulated walk with
   teleportation must converge to the power-iteration fixed point.  The
   test-suite checks this, closing the loop between the matrix algebra and
   the stochastic process the paper describes.
2. **Cover-time experiments** — the related work ([11] Cooper et al.) uses
   degree-*biased* walks (our ``p = -1``) to find high-degree vertices
   quickly and reduce cover time.  :func:`estimate_cover_time` measures
   how the de-coupling weight changes the expected number of steps to
   visit every node, reproduced in ``bench_ablation_covertime``.

Vectorised sampling
-------------------
Both entry points are chunked vectorised samplers rather than step-at-a-time
Python loops.  :func:`simulate_walk` runs a fleet of independent walkers and
advances all of them per numpy call; :func:`estimate_cover_time` advances
all trials simultaneously.  Next-hop sampling uses a single batched
``np.searchsorted`` against the global cumulative-probability array of the
CSR transition (each row occupies the segment ``cum[indptr[i]:indptr[i+1]]``),
so one call draws one step for every active walker.  The per-walker chains
are exactly the paper's process — only the interleaving of RNG draws differs
from a scalar loop, so visit statistics are identical in distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.d2pr import d2pr_transition
from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.graph.generators import as_rng

__all__ = ["WalkResult", "simulate_walk", "estimate_cover_time"]

#: Default number of parallel walkers for :func:`simulate_walk`.
_DEFAULT_WALKERS = 4096

#: Uncounted equilibration steps per walker before visit counting starts.
#: With teleportation at rate ``1 - alpha`` the distance to stationarity
#: decays at least like ``alpha**t``, so 64 steps leave a bias far below
#: Monte-Carlo noise for any practical ``alpha``.
_DEFAULT_BURN_IN = 64


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a Monte-Carlo walk simulation.

    Attributes
    ----------
    visit_frequencies:
        Fraction of steps spent at each node (sums to 1).
    steps:
        Total steps simulated.
    teleports:
        Number of teleportation jumps taken.
    """

    visit_frequencies: np.ndarray
    steps: int
    teleports: int


class _SamplingTables:
    """Flattened CSR lookup tables for batched next-hop sampling.

    ``cum`` is the running cumulative sum of ``transition.data`` with a
    leading 0, so row ``i`` owns the value range
    ``cum[indptr[i]] .. cum[indptr[i+1]]``.  Sampling a next hop for a
    walker at row ``i`` is then one global ``searchsorted`` of
    ``cum[indptr[i]] + u * row_span[i]`` (clipped back into the row's index
    range to be safe against cumulative-sum round-off).
    """

    __slots__ = ("indptr", "indices", "cum", "row_start", "row_span", "deg")

    def __init__(self, transition: sparse.csr_matrix) -> None:
        mat = sparse.csr_matrix(transition)
        self.indptr = mat.indptr
        self.indices = mat.indices
        self.cum = np.concatenate(([0.0], np.cumsum(mat.data)))
        self.row_start = self.cum[self.indptr[:-1]]
        self.row_span = self.cum[self.indptr[1:]] - self.row_start
        self.deg = np.diff(self.indptr)

    def sample(
        self, sources: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Next-hop node index for each (non-dangling) source row."""
        values = self.row_start[sources] + uniforms * self.row_span[sources]
        flat = np.searchsorted(self.cum, values, side="right") - 1
        flat = np.clip(
            flat, self.indptr[sources], self.indptr[sources + 1] - 1
        )
        return self.indices[flat]


def simulate_walk(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    alpha: float = 0.85,
    steps: int = 100_000,
    seed: int | np.random.Generator | None = None,
    beta: float = 0.0,
    weighted: bool = False,
    walkers: int | None = None,
    burn_in: int | None = None,
) -> WalkResult:
    """Simulate the D2PR random surfer and count node visits.

    At each step the surfer follows the degree de-coupled transition with
    probability ``alpha`` and teleports to a uniformly random node with
    probability ``1 − alpha`` (also when stranded on a dangling node).
    The resulting visit frequencies estimate the D2PR score vector.

    The simulation advances a fleet of independent walkers in lockstep
    (one numpy call per step for the whole fleet) and counts exactly
    ``steps`` visits across the fleet; each walker first takes ``burn_in``
    uncounted equilibration steps from its uniform-random start.

    Parameters
    ----------
    graph:
        The data graph.
    p, alpha, beta, weighted:
        D2PR parameters, as in :func:`repro.core.d2pr.d2pr`.
    steps:
        Number of counted walk steps, summed over the fleet (estimation
        error shrinks as ``1/sqrt(steps)``).
    seed:
        RNG seed.
    walkers:
        Fleet size; defaults to ``min(4096, steps)``.
    burn_in:
        Uncounted warm-up steps per walker (default 64).
    """
    if steps <= 0:
        raise ParameterError(f"steps must be positive, got {steps}")
    graph.require_nonempty()
    rng = as_rng(seed)
    transition = d2pr_transition(graph, p, beta=beta, weighted=weighted)
    tables = _SamplingTables(transition)
    n = graph.number_of_nodes

    if walkers is None:
        fleet = min(_DEFAULT_WALKERS, steps)
    elif walkers <= 0:
        raise ParameterError(f"walkers must be positive, got {walkers}")
    else:
        fleet = min(walkers, steps)
    warm = _DEFAULT_BURN_IN if burn_in is None else burn_in
    if warm < 0:
        raise ParameterError(f"burn_in must be >= 0, got {warm}")

    current = rng.integers(0, n, size=fleet)

    def advance() -> np.ndarray:
        """One step for the whole fleet; returns the teleport mask."""
        coin = rng.random(fleet)
        pick = rng.random(fleet)
        jump = rng.integers(0, n, size=fleet)
        teleported = (coin >= alpha) | (tables.deg[current] == 0)
        follow = np.flatnonzero(~teleported)
        if follow.size:
            current[follow] = tables.sample(current[follow], pick[follow])
        current[teleported] = jump[teleported]
        return teleported

    for _ in range(warm):
        advance()

    counts = np.zeros(n, dtype=np.int64)
    teleports = 0
    visited_chunks: list[np.ndarray] = []
    buffered = 0
    remaining = steps
    while remaining > 0:
        take = min(fleet, remaining)
        visited_chunks.append(current[:take].copy())
        buffered += take
        if buffered >= 65_536:
            counts += np.bincount(
                np.concatenate(visited_chunks), minlength=n
            )
            visited_chunks.clear()
            buffered = 0
        teleported = advance()
        teleports += int(np.count_nonzero(teleported[:take]))
        remaining -= take
    if visited_chunks:
        counts += np.bincount(np.concatenate(visited_chunks), minlength=n)
    return WalkResult(
        visit_frequencies=counts / counts.sum(),
        steps=steps,
        teleports=teleports,
    )


def estimate_cover_time(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    trials: int = 10,
    max_steps: int = 1_000_000,
    seed: int | np.random.Generator | None = None,
    start: Node | None = None,
) -> float:
    """Estimate the cover time of the pure (teleport-free) D2PR walk.

    Returns the mean number of steps until every node has been visited,
    averaged over ``trials`` independent walks; ``inf`` when a walk
    exhausts ``max_steps`` (e.g. on disconnected graphs).  All trials
    advance simultaneously, one batched sampling call per step.

    Related work [11] uses degree-biased walks (``p < 0``) to *find
    high-degree vertices* quickly.  For full coverage the effect inverts:
    boosted walks keep revisiting hubs and reach peripheral nodes slowly,
    while moderate penalisation flattens the visit distribution
    (Metropolis-like) and tends to cover fastest — measured in
    ``ext-covertime``.
    """
    if trials <= 0:
        raise ParameterError(f"trials must be positive, got {trials}")
    graph.require_nonempty()
    rng = as_rng(seed)
    transition = d2pr_transition(graph, p)
    tables = _SamplingTables(transition)
    n = graph.number_of_nodes

    if start is not None:
        current = np.full(trials, graph.index_of(start), dtype=np.int64)
    else:
        current = rng.integers(0, n, size=trials)
    seen = np.zeros((trials, n), dtype=bool)
    seen[np.arange(trials), current] = True
    remaining = np.full(trials, n, dtype=np.int64) - np.sum(seen, axis=1)
    steps_taken = np.zeros(trials, dtype=np.int64)
    active = remaining > 0

    while True:
        act = np.flatnonzero(active)
        if act.size == 0:
            break
        sources = current[act]
        stranded = tables.deg[sources] == 0
        nxt = np.empty(act.size, dtype=np.int64)
        followers = ~stranded
        if followers.any():
            nxt[followers] = tables.sample(
                sources[followers], rng.random(int(followers.sum()))
            )
        if stranded.any():  # stranded: restart uniformly
            nxt[stranded] = rng.integers(0, n, size=int(stranded.sum()))
        current[act] = nxt
        steps_taken[act] += 1
        fresh = ~seen[act, nxt]
        if fresh.any():
            seen[act[fresh], nxt[fresh]] = True
            remaining[act[fresh]] -= 1
        finished = (remaining[act] == 0) | (steps_taken[act] >= max_steps)
        if finished.any():
            active[act[finished]] = False

    totals = np.where(
        remaining == 0, steps_taken.astype(float), float("inf")
    )
    return float(np.mean(totals))
