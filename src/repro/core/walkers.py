"""Monte-Carlo simulation of the degree de-coupled random walk.

Two purposes:

1. **Independent validation** — visit frequencies of a simulated walk with
   teleportation must converge to the power-iteration fixed point.  The
   test-suite checks this, closing the loop between the matrix algebra and
   the stochastic process the paper describes.
2. **Cover-time experiments** — the related work ([11] Cooper et al.) uses
   degree-*biased* walks (our ``p = -1``) to find high-degree vertices
   quickly and reduce cover time.  :func:`estimate_cover_time` measures
   how the de-coupling weight changes the expected number of steps to
   visit every node, reproduced in ``bench_ablation_covertime``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.d2pr import d2pr_transition
from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.graph.generators import as_rng

__all__ = ["WalkResult", "simulate_walk", "estimate_cover_time"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a Monte-Carlo walk simulation.

    Attributes
    ----------
    visit_frequencies:
        Fraction of steps spent at each node (sums to 1).
    steps:
        Total steps simulated.
    teleports:
        Number of teleportation jumps taken.
    """

    visit_frequencies: np.ndarray
    steps: int
    teleports: int


def _transition_tables(
    transition: sparse.csr_matrix,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-row neighbour arrays and cumulative probabilities for sampling."""
    neighbors: list[np.ndarray] = []
    cumprobs: list[np.ndarray] = []
    for i in range(transition.shape[0]):
        start, end = transition.indptr[i], transition.indptr[i + 1]
        neighbors.append(transition.indices[start:end])
        probs = transition.data[start:end]
        cumprobs.append(np.cumsum(probs))
    return neighbors, cumprobs


def simulate_walk(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    alpha: float = 0.85,
    steps: int = 100_000,
    seed: int | np.random.Generator | None = None,
    beta: float = 0.0,
    weighted: bool = False,
) -> WalkResult:
    """Simulate the D2PR random surfer and count node visits.

    At each step the surfer follows the degree de-coupled transition with
    probability ``alpha`` and teleports to a uniformly random node with
    probability ``1 − alpha`` (also when stranded on a dangling node).
    The resulting visit frequencies estimate the D2PR score vector.

    Parameters
    ----------
    graph:
        The data graph.
    p, alpha, beta, weighted:
        D2PR parameters, as in :func:`repro.core.d2pr.d2pr`.
    steps:
        Number of walk steps (estimation error shrinks as ``1/sqrt(steps)``).
    seed:
        RNG seed.
    """
    if steps <= 0:
        raise ParameterError(f"steps must be positive, got {steps}")
    graph.require_nonempty()
    rng = as_rng(seed)
    transition = d2pr_transition(graph, p, beta=beta, weighted=weighted)
    neighbors, cumprobs = _transition_tables(transition)
    n = graph.number_of_nodes

    counts = np.zeros(n, dtype=np.int64)
    teleports = 0
    current = int(rng.integers(0, n))
    # Draw all uniform randoms up front: the loop is pure bookkeeping.
    coin = rng.random(steps)
    jump = rng.integers(0, n, size=steps)
    pick = rng.random(steps)
    for t in range(steps):
        counts[current] += 1
        nbrs = neighbors[current]
        if coin[t] >= alpha or nbrs.shape[0] == 0:
            current = int(jump[t])
            teleports += 1
        else:
            cp = cumprobs[current]
            idx = int(np.searchsorted(cp, pick[t] * cp[-1]))
            current = int(nbrs[min(idx, nbrs.shape[0] - 1)])
    return WalkResult(
        visit_frequencies=counts / counts.sum(),
        steps=steps,
        teleports=teleports,
    )


def estimate_cover_time(
    graph: BaseGraph,
    p: float = 0.0,
    *,
    trials: int = 10,
    max_steps: int = 1_000_000,
    seed: int | np.random.Generator | None = None,
    start: Node | None = None,
) -> float:
    """Estimate the cover time of the pure (teleport-free) D2PR walk.

    Returns the mean number of steps until every node has been visited,
    averaged over ``trials`` independent walks; ``inf`` when a walk
    exhausts ``max_steps`` (e.g. on disconnected graphs).

    Related work [11] uses degree-biased walks (``p < 0``) to *find
    high-degree vertices* quickly.  For full coverage the effect inverts:
    boosted walks keep revisiting hubs and reach peripheral nodes slowly,
    while moderate penalisation flattens the visit distribution
    (Metropolis-like) and tends to cover fastest — measured in
    ``ext-covertime``.
    """
    if trials <= 0:
        raise ParameterError(f"trials must be positive, got {trials}")
    graph.require_nonempty()
    rng = as_rng(seed)
    transition = d2pr_transition(graph, p)
    neighbors, cumprobs = _transition_tables(transition)
    n = graph.number_of_nodes
    start_idx = graph.index_of(start) if start is not None else None

    totals: list[float] = []
    for _ in range(trials):
        seen = np.zeros(n, dtype=bool)
        current = (
            start_idx if start_idx is not None else int(rng.integers(0, n))
        )
        seen[current] = True
        remaining = n - 1
        steps = 0
        while remaining > 0 and steps < max_steps:
            nbrs = neighbors[current]
            if nbrs.shape[0] == 0:  # stranded: restart uniformly
                current = int(rng.integers(0, n))
            else:
                cp = cumprobs[current]
                idx = int(np.searchsorted(cp, rng.random() * cp[-1]))
                current = int(nbrs[min(idx, nbrs.shape[0] - 1)])
            steps += 1
            if not seen[current]:
                seen[current] = True
                remaining -= 1
        totals.append(float(steps) if remaining == 0 else float("inf"))
    return float(np.mean(totals))
