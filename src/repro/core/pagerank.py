"""Conventional PageRank (the ``p = 0`` baseline).

Kept as a first-class function both because it is the baseline every
experiment compares against and because downstream users reaching for
ordinary PageRank should not have to know about degree de-coupling.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.engine import build_teleport, solve_transition
from repro.core.results import NodeScores
from repro.graph.base import BaseGraph, Node
from repro.linalg.transition import (
    connection_strength_transition,
    uniform_transition,
)

__all__ = ["pagerank", "walk_operator"]


def walk_operator(graph: BaseGraph, *, weighted: bool = False):
    """Graph-cached operator bundle of the conventional walk transition.

    The single owner of the ``("pagerank_transition", weighted)`` matrix
    cache key and its ``("pagerank", weighted)`` operator bundle: every
    feature built on the plain random walk — :func:`pagerank`,
    :func:`repro.core.baselines.teleport_adjusted_pagerank`, the hitting
    times in :mod:`repro.core.hitting` — resolves its transition through
    this helper, so one export and one transpose serve them all and the
    builder cannot drift between call sites.
    """

    def build():
        adjacency = graph.to_csr(weighted=weighted)
        if weighted:
            return connection_strength_transition(adjacency)
        return uniform_transition(adjacency)

    return graph.operator_bundle(
        ("pagerank", bool(weighted)),
        lambda: graph.cached(
            ("pagerank_transition", bool(weighted)), build
        ),
    )


def pagerank(
    graph: BaseGraph,
    *,
    alpha: float = 0.85,
    weighted: bool = False,
    teleport: Mapping[Node, float] | Sequence[Node] | np.ndarray | None = None,
    solver: str = "power",
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> NodeScores:
    """Compute conventional PageRank scores.

    Solves ``r = α·T_G·r + (1−α)·t`` where ``T_G`` spreads each node's mass
    uniformly over its out-edges (or proportionally to edge weights when
    ``weighted=True``).

    Equivalent to ``d2pr(graph, p=0.0, ...)`` for unweighted graphs and to
    ``d2pr(graph, p=0.0, beta=1.0, weighted=True, ...)`` for weighted ones;
    the test-suite asserts both identities.

    Parameters
    ----------
    graph:
        The data graph.
    alpha:
        Residual probability (``1 − α`` is the teleport probability).
    weighted:
        Spread transition mass proportionally to edge weights.
    teleport:
        ``None`` for uniform, or array / ``{node: weight}`` / seed sequence
        for personalised PageRank.
    solver, dangling, tol, max_iter:
        See :func:`repro.core.d2pr.d2pr`.

    Returns
    -------
    NodeScores
    """
    graph.require_nonempty()
    # Memoised per graph version (see BaseGraph.cached): repeated calls on
    # an unmutated graph reuse the row-normalised transition, and the
    # operator bundle keeps the transpose/dangling views alongside it.
    bundle = walk_operator(graph, weighted=weighted)
    teleport_vec = build_teleport(graph, teleport)
    result = solve_transition(
        bundle.mat,
        operator=bundle,
        solver=solver,
        alpha=alpha,
        teleport=teleport_vec,
        dangling=dangling,
        tol=tol,
        max_iter=max_iter,
    )
    return NodeScores(graph, result.scores, result)
