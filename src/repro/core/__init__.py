"""Core algorithms: PageRank, degree de-coupled PageRank, personalisation,
baselines and hitting times."""

from repro.core.baselines import (
    degree_scores,
    teleport_adjusted_pagerank,
    weighted_pagerank,
)
from repro.core.d2pr import (
    d2pr,
    d2pr_operator,
    d2pr_transition,
    transition_probabilities,
)
from repro.core.engine import (
    SOLVERS,
    RankQuery,
    adjacency_and_theta,
    build_teleport,
    solve_many,
    update_scores,
    update_scores_many,
)
from repro.core.hits import HitsResult, hits
from repro.core.hitting import commute_time, hitting_times
from repro.core.manipulation import (
    FarmAttackResult,
    plant_link_farm,
    rank_boost_from_farm,
)
from repro.core.pagerank import pagerank, walk_operator
from repro.core.personalized import (
    personalized_d2pr,
    personalized_pagerank,
    robust_personalized_d2pr,
    seed_weights,
)
from repro.core.results import NodeScores
from repro.core.topics import Topic, TopicSensitiveD2PR
from repro.core.walkers import WalkResult, estimate_cover_time, simulate_walk

__all__ = [
    "pagerank",
    "d2pr",
    "d2pr_transition",
    "d2pr_operator",
    "transition_probabilities",
    "personalized_pagerank",
    "personalized_d2pr",
    "robust_personalized_d2pr",
    "seed_weights",
    "walk_operator",
    "degree_scores",
    "teleport_adjusted_pagerank",
    "weighted_pagerank",
    "hitting_times",
    "commute_time",
    "hits",
    "HitsResult",
    "Topic",
    "TopicSensitiveD2PR",
    "simulate_walk",
    "estimate_cover_time",
    "WalkResult",
    "plant_link_farm",
    "rank_boost_from_farm",
    "FarmAttackResult",
    "NodeScores",
    "SOLVERS",
    "RankQuery",
    "solve_many",
    "update_scores",
    "update_scores_many",
    "adjacency_and_theta",
    "build_teleport",
]
