"""Rank manipulation and the spam-resistance of degree de-coupling.

The paper's related work (§2.2) surveys *PageRank optimisation*: colluding
webmasters add edges or build link farms to inflate a target's rank
([20, 23]), and defenders try to detect or dampen it ([3, 12]).  Degree
de-coupling has a built-in defensive property the paper does not explore —
this module makes it measurable:

    every artificial edge pointing at a target **raises the target's
    degree**, and under ``p > 0`` a higher degree *reduces* the weight of
    all transitions into the target.  Inflation is self-defeating.

:func:`rank_boost_from_farm` quantifies exactly that: it plants a link
farm, recomputes D2PR, and reports how far the target climbed.  The
``bench_ablation_spam`` benchmark sweeps ``p`` to show the boost shrinking
(and reversing) as penalisation grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.d2pr import d2pr
from repro.errors import ParameterError
from repro.graph.base import BaseGraph, DiGraph, Graph, Node

__all__ = [
    "FarmAttackResult",
    "farm_rank_anomaly",
    "plant_link_farm",
    "rank_boost_from_farm",
]


@dataclass(frozen=True)
class FarmAttackResult:
    """Outcome of a link-farm attack evaluation.

    Attributes
    ----------
    target:
        The node trying to inflate its rank.
    rank_before, rank_after:
        1-based D2PR ranks before/after planting the farm (both measured
        over the *original* node set so farm nodes do not distort the
        comparison).
    boost:
        ``rank_before − rank_after`` — positive when the attack helped.
    farm_size:
        Number of farm nodes added.
    """

    target: Node
    rank_before: int
    rank_after: int
    farm_size: int

    @property
    def boost(self) -> int:
        """Positions gained by the attack (negative = attack backfired)."""
        return self.rank_before - self.rank_after


def plant_link_farm(
    graph: BaseGraph,
    target: Node,
    farm_size: int,
    *,
    prefix: str = "farm",
    interlink: bool = True,
) -> BaseGraph:
    """Return a copy of ``graph`` with a link farm attached to ``target``.

    ``farm_size`` fresh nodes are created, each connected to the target
    (for digraphs: pointing at it).  With ``interlink=True`` the farm nodes
    also form a chain among themselves, the classic farm topology that
    gives the spam nodes their own circulating score mass.
    """
    if farm_size <= 0:
        raise ParameterError(f"farm_size must be positive, got {farm_size}")
    graph.index_of(target)  # raises for unknown target
    attacked = graph.copy()  # type: ignore[attr-defined]
    farm_nodes = [f"{prefix}{i}" for i in range(farm_size)]
    for node in farm_nodes:
        if attacked.has_node(node):
            raise ParameterError(
                f"farm node name collision: {node!r} already in graph"
            )
        attacked.add_edge(node, target)
    if interlink and farm_size > 1:
        for a, b in zip(farm_nodes, farm_nodes[1:]):
            attacked.add_edge(a, b)
    return attacked


def _rank_among(
    scores_values: np.ndarray,
    graph: BaseGraph,
    nodes: list[Node],
    target: Node,
) -> int:
    values = np.array([scores_values[graph.index_of(n)] for n in nodes])
    target_value = scores_values[graph.index_of(target)]
    return int((values > target_value).sum()) + 1


def rank_boost_from_farm(
    graph: Graph | DiGraph,
    target: Node,
    farm_size: int,
    *,
    p: float = 0.0,
    alpha: float = 0.85,
    interlink: bool = True,
) -> FarmAttackResult:
    """Measure how much a link farm improves ``target``'s D2PR rank.

    The rank is computed among the original nodes only, before and after
    the attack, under the given de-coupling weight.

    Examples
    --------
    >>> from repro.graph import barabasi_albert
    >>> g = barabasi_albert(60, 2, seed=1)
    >>> victim = g.nodes()[30]
    >>> attack_pr = rank_boost_from_farm(g, victim, 15, p=0.0)
    >>> attack_d2pr = rank_boost_from_farm(g, victim, 15, p=2.0)
    >>> attack_pr.boost > attack_d2pr.boost  # penalisation resists spam
    True
    """
    original_nodes = graph.nodes()
    before = d2pr(graph, p, alpha=alpha)
    rank_before = _rank_among(before.values, graph, original_nodes, target)

    attacked = plant_link_farm(graph, target, farm_size, interlink=interlink)
    after = d2pr(attacked, p, alpha=alpha)
    rank_after = _rank_among(after.values, attacked, original_nodes, target)
    return FarmAttackResult(
        target=target,
        rank_before=rank_before,
        rank_after=rank_after,
        farm_size=farm_size,
    )


def farm_rank_anomaly(
    graph: Graph | DiGraph,
    target: Node,
    farm_size: int,
    *,
    p: float = 0.0,
    alpha: float = 0.85,
    interlink: bool = True,
    tail_fraction: float = 0.25,
) -> dict:
    """Degree↔rank profile shift induced by a link farm.

    The detection-side companion of :func:`rank_boost_from_farm`: spam
    edges raise the target's degree while inflating its score, so a farm
    drags the graph-wide degree↔score coupling and the power-law tail of
    the score distribution in a measurable direction.  Both rankings are
    profiled with :func:`repro.diagnostics.degree_rank_profile` (same
    machinery the serving layer exposes as
    :meth:`~repro.serving.RankingService.degree_rank`).

    Returns a dict with the ``"before"`` / ``"after"`` profiles plus the
    ``"spearman_shift"`` and ``"tail_exponent_shift"`` deltas
    (after − before).
    """
    from repro.diagnostics import degree_rank_profile

    before_scores = d2pr(graph, p, alpha=alpha)
    before = degree_rank_profile(
        graph, before_scores, tail_fraction=tail_fraction
    )
    attacked = plant_link_farm(graph, target, farm_size, interlink=interlink)
    after_scores = d2pr(attacked, p, alpha=alpha)
    after = degree_rank_profile(
        attacked, after_scores, tail_fraction=tail_fraction
    )
    return {
        "before": before,
        "after": after,
        "spearman_shift": after.spearman - before.spearman,
        "tail_exponent_shift": after.tail.exponent - before.tail.exponent,
    }
