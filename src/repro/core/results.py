"""Result container mapping solver output back onto graph nodes."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.linalg.solvers import PageRankResult

__all__ = ["NodeScores"]


class NodeScores:
    """Node-significance scores aligned with a graph's node indexing.

    Wraps the raw score vector produced by a solver together with the graph
    it was computed on, providing node-keyed access, rankings and rank
    vectors (the representation the paper's Spearman correlations operate
    on).

    Examples
    --------
    >>> from repro.graph import Graph
    >>> from repro.core import pagerank
    >>> g = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> scores = pagerank(g)
    >>> scores["b"] > scores["a"]
    True
    """

    def __init__(
        self,
        graph: BaseGraph,
        values: np.ndarray,
        solver_result: PageRankResult | None = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (graph.number_of_nodes,):
            raise ParameterError(
                f"scores shape {values.shape} does not match graph with "
                f"{graph.number_of_nodes} nodes"
            )
        self._graph = graph
        self._values = values
        self.solver_result = solver_result

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BaseGraph:
        """The graph the scores were computed on."""
        return self._graph

    @property
    def values(self) -> np.ndarray:
        """Raw score vector aligned with graph node indices (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def __getitem__(self, node: Node) -> float:
        return float(self._values[self._graph.index_of(node)])

    def __len__(self) -> int:
        return self._values.shape[0]

    def __iter__(self) -> Iterator[tuple[Node, float]]:
        for idx, node in enumerate(self._graph.nodes()):
            yield node, float(self._values[idx])

    def as_dict(self) -> dict[Node, float]:
        """Return ``{node: score}`` over all nodes."""
        return dict(self)

    # ------------------------------------------------------------------
    # rankings
    # ------------------------------------------------------------------
    def ranking(self) -> list[Node]:
        """Nodes ordered by decreasing score (ties broken by node index)."""
        order = np.argsort(-self._values, kind="stable")
        nodes = self._graph.nodes()
        return [nodes[i] for i in order]

    def top(self, k: int) -> list[tuple[Node, float]]:
        """The ``k`` best-scoring nodes with their scores."""
        if k < 0:
            raise ParameterError(f"k must be >= 0, got {k}")
        nodes = self.ranking()[:k]
        return [(node, self[node]) for node in nodes]

    def rank_of(self, node: Node) -> int:
        """1-based position of ``node`` in the ranking (1 = most significant)."""
        target = self._graph.index_of(node)
        order = np.argsort(-self._values, kind="stable")
        return int(np.flatnonzero(order == target)[0]) + 1

    def rank_vector(self) -> np.ndarray:
        """Average ranks (1 = highest score), aligned with node indices.

        Ties receive the average of the positions they span — the
        convention required by Spearman's rank correlation, which is how
        the paper compares D2PR output with application significances.
        """
        from repro.metrics.correlation import rank_data

        # rank_data assigns rank 1 to the smallest value; negate for
        # "1 = most significant".
        return rank_data(-self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<NodeScores n={len(self)} "
            f"sum={float(self._values.sum()):.6f}>"
        )
