"""repro — degree de-coupled PageRank (D2PR) and its evaluation substrate.

A production-quality reproduction of

    Kim, Candan & Sapino: "PageRank Revisited: On the Relationship between
    Node Degrees and Node Significances in Different Applications",
    EDBT/ICDT 2016 workshops.

Quickstart
----------
>>> from repro import Graph, d2pr, pagerank, spearman
>>> g = Graph.from_edges([("a", "b"), ("a", "c"), ("c", "d"), ("c", "e")])
>>> conventional = pagerank(g)          # p = 0
>>> penalised = d2pr(g, p=1.0)          # high-degree neighbours penalised
>>> boosted = d2pr(g, p=-1.0)           # high-degree neighbours boosted

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro._version import __version__
from repro.core import (
    NodeScores,
    RankQuery,
    commute_time,
    d2pr,
    d2pr_transition,
    degree_scores,
    hitting_times,
    pagerank,
    personalized_d2pr,
    personalized_pagerank,
    robust_personalized_d2pr,
    solve_many,
    teleport_adjusted_pagerank,
    transition_probabilities,
    weighted_pagerank,
)
from repro.errors import (
    AdmissionError,
    ConvergenceError,
    DatasetError,
    EdgeError,
    EmptyGraphError,
    ExperimentError,
    FrozenGraphError,
    GraphError,
    NodeNotFoundError,
    ParameterError,
    ReproError,
)
from repro.graph import BipartiteGraph, DiGraph, Graph, graph_statistics, project
from repro.metrics import kendall, pearson, rank_data, spearman
from repro.serving import RankingService, RankRequest, ServingFront
from repro.telemetry import MetricsRegistry, Tracer

__all__ = [
    "__version__",
    # algorithms
    "pagerank",
    "d2pr",
    "d2pr_transition",
    "transition_probabilities",
    "personalized_pagerank",
    "personalized_d2pr",
    "robust_personalized_d2pr",
    "degree_scores",
    "teleport_adjusted_pagerank",
    "weighted_pagerank",
    "hitting_times",
    "commute_time",
    "NodeScores",
    "RankQuery",
    "solve_many",
    # serving
    "RankingService",
    "RankRequest",
    "ServingFront",
    # telemetry
    "MetricsRegistry",
    "Tracer",
    # graphs
    "Graph",
    "DiGraph",
    "BipartiteGraph",
    "project",
    "graph_statistics",
    # metrics
    "spearman",
    "pearson",
    "kendall",
    "rank_data",
    # errors
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeError",
    "EmptyGraphError",
    "FrozenGraphError",
    "ConvergenceError",
    "ParameterError",
    "AdmissionError",
    "DatasetError",
    "ExperimentError",
]
