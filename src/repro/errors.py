"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends raised by plain
misuse) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Structural graph problems (unknown nodes, illegal edges, ...)."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by the caller is not part of the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeError(GraphError):
    """An edge is malformed (negative weight, self-loop where banned, ...)."""


class EmptyGraphError(GraphError):
    """An operation that needs at least one node/edge got an empty graph."""


class FrozenGraphError(GraphError):
    """A mutation was attempted on a graph frozen via ``graph.freeze()``.

    Frozen graphs are shared, cached instances (e.g. the dataset loader's
    memoised :class:`~repro.datasets.base.DataGraph` objects); mutate a
    private ``graph.copy()`` instead.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within its budget.

    Attributes
    ----------
    iterations:
        Number of iterations actually performed.
    residual:
        The final residual when the solver gave up.
    """

    def __init__(self, message: str, *, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ParameterError(ReproError, ValueError):
    """A numeric/algorithmic parameter is outside its documented domain."""


class AdmissionError(ReproError):
    """A request was rejected at the serving front's admission gate.

    Rejection is always explicit — the request was never enqueued and no
    work was started on its behalf.  ``reason`` is a stable machine-readable
    token (``"queue_full"``, ``"shutdown"``); the stats of the rejecting
    :class:`~repro.serving.front.ServingFront` count rejections per reason.
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class DatasetError(ReproError):
    """A synthetic dataset could not be generated or validated."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown experiment id, bad config)."""
