"""Method descriptors: the identity of a centrality measure.

Every layer of the stack used to branch on a method *string* —
``RankRequest`` validation hard-coded ``("pagerank", "d2pr")``, the
coalescer called ``d2pr_operator`` directly, ``core/hits.py`` bypassed
the serving layer entirely.  A :class:`CentralityMethod` descriptor
replaces those branches with one object that owns, per method:

* the **parameter vocabulary** — which request fields the method
  interprets (``p``, ``alpha``, ``beta``, ``fatigue``, ``dangling``,
  seeds) and their validation; out-of-vocabulary fields must stay at
  their defaults, so a nonsensical request (seeds on eigenvector
  centrality, ``p`` on Katz) fails loudly instead of being silently
  ignored;
* the **transition-group key** — the tuple identifying the operator the
  method solves against.  The leading element is the method *family*
  tag, so requests of different families can never pool into one
  microbatch, while ``pagerank`` and ``d2pr`` (one family) keep sharing
  transitions, cache lines and warm starts exactly as before;
* **operator construction** against the graph's mutation-aware cache
  (:meth:`operator` returns the
  :class:`~repro.linalg.operator.LinearOperatorBundle` for batchable
  methods; :meth:`solve` runs the direct power method for spectral
  ones);
* the **convergence-certificate semantics**: ``"l1"`` — successive L1
  residual of a contraction at rate α (PageRank-shaped; the cache,
  push and incremental certificates all build on it) — or ``"eigen"``
  — the normalised eigen-residual ``‖Ax − λx‖₁ / λ`` of a power
  method on a non-stochastic operator;
* **capability flags** the planner and service consult instead of
  string checks: ``supports_push`` / ``supports_incremental`` /
  ``supports_sharding`` (pagerank-family strategies), ``batchable``
  (poolable through :func:`~repro.linalg.batch.power_iteration_batch`)
  and ``supports_seeds`` (personalisation).

``docs/methods.md`` documents the contract and how to add a method;
:mod:`repro.methods.registry` holds the name → descriptor table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError, ReproError
from repro.linalg.operator import DANGLING_STRATEGIES

__all__ = ["CERTIFICATES", "CentralityMethod", "MethodParams"]

CERTIFICATES = ("l1", "eigen")

#: Neutral value of every vocabulary field — a method that does not
#: interpret a field requires it to sit exactly here.
_FIELD_DEFAULTS = {
    "p": 0.0,
    "alpha": 0.85,
    "beta": 0.0,
    "fatigue": 0.0,
    "dangling": "teleport",
}


@dataclass(frozen=True)
class MethodParams:
    """Normalised parameter view of one ranking request.

    The common currency between the request vocabularies of the engine
    (:class:`~repro.core.engine.RankQuery`) and the serving layer
    (:class:`~repro.serving.planner.RankRequest`): both flatten into
    this view before asking their method to validate or to build a
    group key, so parameter semantics can never diverge between layers.
    """

    p: float = 0.0
    alpha: float = 0.85
    beta: float = 0.0
    weighted: bool = False
    dangling: str = "teleport"
    fatigue: float = 0.0
    has_seeds: bool = False


class CentralityMethod:
    """One centrality measure: vocabulary, operators, certificate, flags.

    Subclasses override the class attributes below plus
    :meth:`group_key` and either :meth:`operator` (batchable methods)
    or :meth:`solve` (spectral methods).  Instances are stateless; one
    instance per method lives in the registry.
    """

    #: Registry name (``RankRequest.method`` / ``RankQuery.method``).
    name: str = ""
    #: Transition-family tag — the leading element of every group key.
    #: Methods sharing a family share operators, microbatch windows and
    #: cache digests (``pagerank`` and ``d2pr`` are one family).
    family: str = ""
    #: ``"l1"`` (successive L1 residual, contraction rate α) or
    #: ``"eigen"`` (normalised eigen-residual of a power method).
    certificate: str = "l1"
    #: Poolable through ``power_iteration_batch`` — i.e. the method's
    #: operator is row-stochastic and its fixed point is the standard
    #: ``x = α·Tᵀx + (1−α)·t`` teleport system.
    batchable: bool = True
    #: Eligible for the forward-push strategy (sparse seeds).
    supports_push: bool = False
    #: Cached answers survive localized deltas by residual correction;
    #: methods without it are evicted (and re-solved) instead.
    supports_incremental: bool = False
    #: Has a block-partitioned (sharded) operator construction.
    supports_sharding: bool = False
    #: Accepts a personalisation (seed) vector.
    supports_seeds: bool = True
    #: Request fields this method interprets; everything else must stay
    #: at its default (see ``_FIELD_DEFAULTS``).
    vocabulary: frozenset = frozenset()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, params: MethodParams) -> None:
        """Raise :class:`ParameterError` on out-of-vocabulary settings."""
        if "alpha" in self.vocabulary and not 0.0 <= params.alpha < 1.0:
            raise ParameterError(
                f"alpha must be in [0, 1), got {params.alpha}"
            )
        if "p" in self.vocabulary and not np.isfinite(params.p):
            raise ParameterError(f"p must be finite, got {params.p}")
        if (
            "beta" in self.vocabulary
            and not params.weighted
            and params.beta != 0.0
        ):
            raise ParameterError(
                "beta is only meaningful for weighted graphs; "
                "pass weighted=True"
            )
        if (
            "dangling" in self.vocabulary
            and params.dangling not in DANGLING_STRATEGIES
        ):
            raise ParameterError(
                f"unknown dangling strategy {params.dangling!r}; "
                f"expected one of {DANGLING_STRATEGIES}"
            )
        if "fatigue" in self.vocabulary and not (
            np.isfinite(params.fatigue) and 0.0 <= params.fatigue < 1.0
        ):
            raise ParameterError(
                f"fatigue must be in [0, 1), got {params.fatigue}"
            )
        for field_name, default in _FIELD_DEFAULTS.items():
            if field_name in self.vocabulary:
                continue
            if getattr(params, field_name) != default:
                raise ParameterError(
                    f"method {self.name!r} does not take {field_name}; "
                    f"leave it at its default ({default!r})"
                )
        if params.has_seeds and not self.supports_seeds:
            raise ParameterError(
                f"method {self.name!r} is a global eigen measure and "
                "does not take seeds"
            )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def group_key(self, params: MethodParams) -> tuple:
        """The transition/operator identity: ``(family, *matrix params)``.

        The single construction site of group keys for this method —
        the engine's batching, the planner's canonical queries, the
        coalescer's group table and the service's bundle resolution all
        read it, so the key can never diverge between layers.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def digest_params(self, params: MethodParams) -> tuple:
        """Per-answer parameters beyond the group key (cache digests).

        Only in-vocabulary fields enter the digest, so two requests
        differing in a field the method ignores hash (and cache) equal.
        """
        return (float(params.alpha),) if "alpha" in self.vocabulary else ()

    def sort_key(self, group_key: tuple) -> tuple:
        """Warm-start processing order of this method's group keys.

        Consecutive groups are solved in this order by
        :func:`~repro.core.engine.solve_many`; keys adjacent under it
        should name *similar* transitions (e.g. neighbouring points of
        a ``p`` grid) so the later group's solve can warm-start from
        the earlier group's solutions.
        """
        return group_key

    # ------------------------------------------------------------------
    # operators / solving
    # ------------------------------------------------------------------
    def operator(self, graph, group_key: tuple, *, clamp_min=None):
        """Graph-cached :class:`LinearOperatorBundle` for ``group_key``.

        Only batchable methods have one; spectral methods solve through
        :meth:`solve` instead.
        """
        raise ReproError(  # pragma: no cover - guarded by capability flags
            f"method {self.name!r} has no batched operator; "
            "it solves through CentralityMethod.solve"
        )

    def sharded_operator(
        self,
        graph,
        group_key: tuple,
        *,
        clamp_min=None,
        n_shards: int = 8,
        method: str = "auto",
        size_floor: int | None = None,
        force: bool = False,
    ):
        """Graph-cached block-partitioned operator (sharding methods)."""
        raise ReproError(  # pragma: no cover - guarded by capability flags
            f"method {self.name!r} does not support sharding"
        )

    def solve(
        self,
        graph,
        group_key: tuple,
        *,
        alpha: float = 0.85,
        teleport: np.ndarray | None = None,
        tol: float = 1e-10,
        max_iter: int = 1000,
        clamp_min=None,
        raise_on_failure: bool = False,
    ):
        """Direct solve for non-batchable (spectral) methods.

        Returns a :class:`~repro.linalg.solvers.PageRankResult` whose
        residual history carries this method's certificate semantics.
        """
        raise ReproError(  # pragma: no cover - guarded by capability flags
            f"method {self.name!r} solves through its operator bundle; "
            "use the engine/serving paths"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<CentralityMethod {self.name!r} family={self.family!r}>"
