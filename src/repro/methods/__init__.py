"""Centrality-method registry: one descriptor per measure.

Importing this package registers the built-in family — ``pagerank``,
``d2pr`` and ``fatigued`` (row-stochastic, L1 certificate, full solver
arsenal) plus ``katz``, ``eigenvector`` and ``hits`` (spectral power
methods on the adjacency bundle, eigen certificate).  Every layer that
needs method identity — engine group keys, planner validation, cache
digests, coalescer pooling, sharded-operator resolution — dispatches
through :func:`resolve` / :func:`operator_for` instead of branching on
method strings.  See ``docs/methods.md`` for the contract.
"""

from repro.methods.base import CERTIFICATES, CentralityMethod, MethodParams
from repro.methods.registry import (
    family_method,
    method_names,
    operator_for,
    register,
    resolve,
    sharded_operator_for,
)
from repro.methods.stochastic import (
    D2PRMethod,
    FatiguedMethod,
    PageRankMethod,
    fatigued_operator,
    fatigued_transition,
)
from repro.methods.spectral import (
    EigenvectorMethod,
    HitsMethod,
    KatzMethod,
    adjacency_bundle,
    spectral_radius,
)

__all__ = [
    "CERTIFICATES",
    "CentralityMethod",
    "D2PRMethod",
    "EigenvectorMethod",
    "FatiguedMethod",
    "HitsMethod",
    "KatzMethod",
    "MethodParams",
    "PageRankMethod",
    "adjacency_bundle",
    "family_method",
    "fatigued_operator",
    "fatigued_transition",
    "method_names",
    "operator_for",
    "register",
    "resolve",
    "sharded_operator_for",
    "spectral_radius",
]
