"""Stochastic (PageRank-shaped) centrality methods.

These methods solve the teleport fixed point ``x = α·Tᵀx + (1−α)·t``
against a *row-stochastic* transition ``T``, which is what makes the
entire solver arsenal apply verbatim: batched power iteration, forward
push, incremental residual correction after deltas and the sharded
block solver all assume exactly that shape, and the successive-L1
residual is a certified error bound at contraction rate α.

* ``pagerank`` / ``d2pr`` — one family: conventional PageRank is the
  ``p = 0`` point of the degree-de-coupled transition (paper Eq. 1),
  so both names share the ``"d2pr"`` family tag, operator caches,
  microbatch windows and cache digests.
* ``fatigued`` — fatigued PageRank (PAPERS.md): high-degree nodes
  "tire" and forward less of their mass.  Per-node fatigue
  ``φ_j = γ·θ_j/θ_max`` (γ = the request's ``fatigue`` parameter,
  θ = the paper's degree/out-weight vector) down-weights *entering*
  node ``j`` by ``1−φ_j``; re-normalising rows keeps the transition
  stochastic, so the method is a diagonal rescale of the cached D2PR
  transition and reuses every solver and certificate unchanged.
  ``γ < 1`` strictly, so no surviving entry hits zero and the dangling
  set is exactly the base transition's.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.methods.base import CentralityMethod, MethodParams
from repro.methods.registry import register

__all__ = [
    "D2PRMethod",
    "FatiguedMethod",
    "PageRankMethod",
    "fatigued_operator",
    "fatigued_transition",
]


class _StochasticMethod(CentralityMethod):
    """Shared capability surface of the row-stochastic family."""

    certificate = "l1"
    batchable = True
    supports_push = True
    supports_incremental = True
    supports_sharding = True
    supports_seeds = True


class PageRankMethod(_StochasticMethod):
    """Conventional PageRank — the ``p = 0`` point of the D2PR family.

    Shares the ``"d2pr"`` family (and therefore transitions, cache
    digests and microbatch windows) with :class:`D2PRMethod`; the
    vocabulary pins ``p`` and ``beta`` at 0 so a request cannot ask
    for de-coupling under the conventional name.
    """

    name = "pagerank"
    family = "d2pr"
    vocabulary = frozenset({"alpha", "dangling"})

    def group_key(self, params: MethodParams) -> tuple:
        return ("d2pr", 0.0, 0.0, bool(params.weighted), params.dangling)

    def sort_key(self, group_key: tuple) -> tuple:
        _, p, beta, weighted, dangling = group_key
        return ("d2pr", weighted, dangling, beta, p)

    def operator(self, graph, group_key: tuple, *, clamp_min=None):
        from repro.core.d2pr import d2pr_operator

        _, p, beta, weighted, _dangling = group_key
        return d2pr_operator(
            graph, p, beta=beta, weighted=weighted, clamp_min=clamp_min
        )

    def sharded_operator(
        self,
        graph,
        group_key: tuple,
        *,
        clamp_min=None,
        n_shards: int = 8,
        method: str = "auto",
        size_floor: int | None = None,
        force: bool = False,
    ):
        from repro.core.d2pr import d2pr_sharded_operator

        _, p, beta, weighted, _dangling = group_key
        return d2pr_sharded_operator(
            graph,
            p,
            beta=beta,
            weighted=weighted,
            clamp_min=clamp_min,
            n_shards=n_shards,
            method=method,
            size_floor=size_floor,
            force=force,
        )


class D2PRMethod(PageRankMethod):
    """Degree de-coupled PageRank (paper Eq. 1) — the full vocabulary."""

    name = "d2pr"
    family = "d2pr"
    vocabulary = frozenset({"p", "alpha", "beta", "dangling"})

    def group_key(self, params: MethodParams) -> tuple:
        return (
            "d2pr",
            float(params.p),
            float(params.beta),
            bool(params.weighted),
            params.dangling,
        )


class FatiguedMethod(PageRankMethod):
    """Fatigued PageRank: degree-proportional damping, re-normalised."""

    name = "fatigued"
    family = "fatigued"
    vocabulary = frozenset({"p", "alpha", "beta", "dangling", "fatigue"})

    def group_key(self, params: MethodParams) -> tuple:
        return (
            "fatigued",
            float(params.p),
            float(params.fatigue),
            float(params.beta),
            bool(params.weighted),
            params.dangling,
        )

    def sort_key(self, group_key: tuple) -> tuple:
        _, p, fatigue, beta, weighted, dangling = group_key
        return ("fatigued", weighted, dangling, beta, fatigue, p)

    def operator(self, graph, group_key: tuple, *, clamp_min=None):
        _, p, fatigue, beta, weighted, _dangling = group_key
        return fatigued_operator(
            graph,
            p,
            fatigue=fatigue,
            beta=beta,
            weighted=weighted,
            clamp_min=clamp_min,
        )

    def sharded_operator(
        self,
        graph,
        group_key: tuple,
        *,
        clamp_min=None,
        n_shards: int = 8,
        method: str = "auto",
        size_floor: int | None = None,
        force: bool = False,
    ):
        from repro.shard.operator import DEFAULT_SIZE_FLOOR, ShardedOperator

        _, p, fatigue, beta, weighted, _dangling = group_key
        floor = DEFAULT_SIZE_FLOOR if size_floor is None else int(size_floor)

        def build():
            bundle = self.operator(graph, group_key, clamp_min=clamp_min)
            plan = graph.shard_plan(n_shards, method=method)
            return ShardedOperator(bundle, plan, size_floor=floor, force=force)

        return graph.cached(
            (
                "sharded_operator",
                "fatigued",
                float(p),
                float(fatigue),
                float(beta),
                bool(weighted),
                clamp_min,
                int(n_shards),
                str(method),
            ),
            build,
        )


def fatigued_transition(
    graph,
    p: float,
    *,
    fatigue: float,
    beta: float = 0.0,
    weighted: bool = False,
    clamp_min: float | None = None,
):
    """Row-stochastic fatigued transition, memoised on the graph cache.

    Column-scales the cached D2PR transition by ``1 − φ`` (φ = per-node
    fatigue, γ·θ/θ_max) and re-normalises rows.  γ < 1 keeps every
    surviving entry positive, so zero rows — and hence the dangling
    mask — are exactly those of the base transition; the delta-refresh
    machinery does not recognise this key, so a :class:`GraphDelta`
    evicts it and the next solve rebuilds (correct, merely colder).
    """
    from repro.core.d2pr import d2pr_transition
    from repro.core.engine import adjacency_and_theta

    def build():
        base = d2pr_transition(
            graph, p, beta=beta, weighted=weighted, clamp_min=clamp_min
        )
        _, theta = adjacency_and_theta(graph, weighted=weighted)
        theta_max = float(theta.max()) if theta.size else 0.0
        if theta_max > 0.0:
            keep = 1.0 - float(fatigue) * (theta / theta_max)
        else:
            keep = np.ones_like(theta, dtype=np.float64)
        mat = base.multiply(keep[np.newaxis, :]).tocsr()
        row_mass = np.asarray(mat.sum(axis=1)).ravel()
        inv = np.zeros_like(row_mass)
        nonzero = row_mass > 0.0
        inv[nonzero] = 1.0 / row_mass[nonzero]
        mat = sparse.diags(inv).dot(mat).tocsr()
        mat.sort_indices()
        return mat

    return graph.cached(
        (
            "fatigued_transition",
            float(p),
            float(fatigue),
            float(beta),
            bool(weighted),
            clamp_min,
        ),
        build,
    )


def fatigued_operator(
    graph,
    p: float,
    *,
    fatigue: float,
    beta: float = 0.0,
    weighted: bool = False,
    clamp_min: float | None = None,
):
    """Cached :class:`LinearOperatorBundle` over the fatigued transition."""
    return graph.operator_bundle(
        (
            "fatigued",
            float(p),
            float(fatigue),
            float(beta),
            bool(weighted),
            clamp_min,
        ),
        lambda: fatigued_transition(
            graph,
            p,
            fatigue=fatigue,
            beta=beta,
            weighted=weighted,
            clamp_min=clamp_min,
        ),
    )


register(PageRankMethod())
register(D2PRMethod())
register(FatiguedMethod())
