"""Name → :class:`CentralityMethod` table and group-key dispatch.

The registry is the single source of method identity for the whole
stack: the serving planner derives its ``METHODS`` tuple (and its
validation error messages) from :func:`method_names`, the engine and
coalescer resolve operator bundles for a transition-group key through
:func:`operator_for`, and the service resolves sharded operators
through :func:`sharded_operator_for`.  Group keys carry their family
tag as the leading element, so a key alone is enough to find the
descriptor that built it.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.methods.base import CERTIFICATES, CentralityMethod

__all__ = [
    "family_method",
    "method_names",
    "operator_for",
    "register",
    "resolve",
    "sharded_operator_for",
]

_REGISTRY: dict[str, CentralityMethod] = {}
#: family tag -> descriptor owning that family's operator construction
#: (first registered method of the family; ``pagerank`` and ``d2pr``
#: share the ``"d2pr"`` family and therefore the same operators).
_FAMILIES: dict[str, CentralityMethod] = {}


def register(method: CentralityMethod) -> CentralityMethod:
    """Add a descriptor to the registry (idempotent per name)."""
    if not method.name or not method.family:
        raise ParameterError(
            "a CentralityMethod must declare both a name and a family"
        )
    if method.certificate not in CERTIFICATES:
        raise ParameterError(
            f"unknown certificate {method.certificate!r}; "
            f"expected one of {CERTIFICATES}"
        )
    _REGISTRY[method.name] = method
    _FAMILIES.setdefault(method.family, method)
    return method


def method_names() -> tuple:
    """All registered method names, in registration order."""
    return tuple(_REGISTRY)


def resolve(name: str) -> CentralityMethod:
    """Look up a method by request name; raises with the full menu."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown method {name!r}; expected one of {method_names()}"
        ) from None


def family_method(family) -> CentralityMethod:
    """Descriptor owning a family tag (or a family-tagged group key)."""
    tag = family[0] if isinstance(family, tuple) else family
    try:
        return _FAMILIES[tag]
    except KeyError:
        raise ParameterError(
            f"unknown method family {tag!r}; "
            f"known families: {tuple(_FAMILIES)}"
        ) from None


def operator_for(graph, group_key: tuple, *, clamp_min=None):
    """Graph-cached operator bundle for a family-tagged group key."""
    return family_method(group_key).operator(
        graph, group_key, clamp_min=clamp_min
    )


def sharded_operator_for(
    graph,
    group_key: tuple,
    *,
    clamp_min=None,
    n_shards: int = 8,
    method: str = "auto",
    size_floor: int | None = None,
    force: bool = False,
):
    """Graph-cached sharded operator for a family-tagged group key."""
    return family_method(group_key).sharded_operator(
        graph,
        group_key,
        clamp_min=clamp_min,
        n_shards=n_shards,
        method=method,
        size_floor=size_floor,
        force=force,
    )
