"""Spectral centrality methods: Katz, eigenvector centrality, HITS.

"Spectral centrality measures in complex networks" (PAPERS.md) unifies
these as power methods on the *adjacency* operator rather than a
stochastic transition — which is exactly the shape of the repo's
:class:`~repro.linalg.operator.LinearOperatorBundle`: the bundle caches
the CSR adjacency and its transpose per graph version, and each method
here iterates those views directly.  Because the operator is not
row-stochastic, these methods are not poolable through
``power_iteration_batch`` (``batchable = False``); the planner routes
them to the dedicated ``"spectral"`` strategy, which calls
:meth:`CentralityMethod.solve` and still caches the answer under the
method's certificate.

Certificates:

* ``eigenvector`` / ``hits`` — the **eigen certificate**: the
  normalised eigen-residual ``‖Aᵀx − λx‖₁ / λ`` with the L1 Rayleigh
  quotient ``λ = ‖Aᵀx‖₁`` (exact for non-negative iterates).  For an
  L1-normalised power method this equals the successive iterate
  difference, so the recorded residual history *is* the certificate.
* ``katz`` — the **L1 certificate**: Katz is solved as the fixed point
  ``x = (α/λ̂)·Aᵀx + (1−α)·t`` (λ̂ = cached spectral-radius estimate
  of the adjacency), a contraction whose asymptotic rate is α — the
  same successive-L1 semantics as the stochastic family.

A small diagonal shift keeps the power method aperiodic (bipartite
adjacencies oscillate with period 2); the shift leaves eigenvectors
unchanged and is subtracted back out of the reported eigenvalue and
residual.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.solvers import PageRankResult
from repro.methods.base import CentralityMethod, MethodParams
from repro.methods.registry import register

__all__ = [
    "EigenvectorMethod",
    "HitsMethod",
    "KatzMethod",
    "adjacency_bundle",
    "spectral_radius",
]


def adjacency_bundle(graph, *, weighted: bool = False):
    """Cached adjacency-operator bundle shared by the spectral family.

    The bundle is a view cache, not a stochastic-matrix contract: it
    memoises the CSR adjacency and its transpose per graph version, so
    Katz, eigenvector centrality and HITS all iterate one export.
    """
    return graph.operator_bundle(
        ("adjacency", bool(weighted)),
        lambda: graph.to_csr(weighted=weighted),
    )


def spectral_radius(
    graph,
    *,
    weighted: bool = False,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> float:
    """Perron-root estimate of the adjacency, memoised per graph version.

    Runs a diagonally shifted L1 power method on ``Aᵀ``; Katz divides
    its attenuation by this estimate so that ``alpha`` is a *spectral*
    attenuation fraction (``alpha → 1`` approaches the eigenvector
    limit) independent of the graph's degree scale.
    """

    def build() -> float:
        bundle = adjacency_bundle(graph, weighted=weighted)
        at = bundle.t_csr
        n = at.shape[0]
        if at.nnz == 0:
            return 0.0
        col_mass = np.asarray(at.sum(axis=0)).ravel()
        shift = 0.25 * float(col_mass.max())
        x = np.full(n, 1.0 / n)
        lam = 0.0
        for _ in range(max_iter):
            y = at @ x
            lam_new = float(y.sum())  # L1 Rayleigh quotient, x >= 0
            y += shift * x
            total = float(y.sum())
            x_new = y / total
            if abs(lam_new - lam) <= tol * max(1.0, abs(lam_new)):
                lam = lam_new
                break
            lam = lam_new
            x = x_new
        return lam

    return graph.cached(("spectral_radius", bool(weighted)), build)


class _SpectralMethod(CentralityMethod):
    """Shared capability surface: direct solves, no pooling/push/deltas."""

    certificate = "eigen"
    batchable = False
    supports_push = False
    supports_incremental = False
    supports_sharding = False
    supports_seeds = False

    def group_key(self, params: MethodParams) -> tuple:
        return (self.family, bool(params.weighted))

    @staticmethod
    def _teleport(n: int, teleport) -> np.ndarray:
        if teleport is None:
            return np.full(n, 1.0 / n)
        vec = np.asarray(teleport, dtype=np.float64)
        return vec / vec.sum()


class KatzMethod(_SpectralMethod):
    """Katz centrality: ``x = (α/λ̂)·Aᵀx + (1−α)·t``.

    Follows the spectral-attenuation convention: the raw Katz
    attenuation is ``α/λ̂``, always inside the convergence radius, so
    ``alpha`` carries its PageRank meaning of "fraction of score that
    flows through edges" and the L1 certificate contracts at rate α.
    Seeds personalise ``t`` exactly as they do for PageRank.
    """

    name = "katz"
    family = "katz"
    certificate = "l1"
    supports_seeds = True
    vocabulary = frozenset({"alpha"})

    def solve(
        self,
        graph,
        group_key: tuple,
        *,
        alpha: float = 0.85,
        teleport=None,
        tol: float = 1e-10,
        max_iter: int = 1000,
        clamp_min=None,
        raise_on_failure: bool = False,
    ) -> PageRankResult:
        _, weighted = group_key
        bundle = adjacency_bundle(graph, weighted=weighted)
        at = bundle.t_csr
        n = at.shape[0]
        t = self._teleport(n, teleport)
        lam = spectral_radius(graph, weighted=weighted)
        if lam <= 0.0:  # edgeless: score is the teleport itself
            return PageRankResult(
                scores=t, iterations=0, converged=True,
                residuals=[0.0], method="katz",
            )
        scale = float(alpha) / lam
        base = (1.0 - float(alpha)) * t
        x = t.copy()
        residuals: list[float] = []
        converged = False
        iterations = 0
        for iterations in range(1, max_iter + 1):
            x_new = scale * (at @ x) + base
            residual = float(np.abs(x_new - x).sum())
            residuals.append(residual)
            x = x_new
            if residual < tol:
                converged = True
                break
        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"katz did not reach tol={tol} within {max_iter} iterations",
                iterations=iterations,
                residual=residuals[-1],
            )
        return PageRankResult(
            scores=x / x.sum(), iterations=iterations, converged=converged,
            residuals=residuals, method="katz",
        )


class EigenvectorMethod(_SpectralMethod):
    """Eigenvector centrality: dominant eigenvector of ``Aᵀ``.

    L1-normalised power method with a diagonal shift for aperiodicity;
    the recorded residuals are the normalised eigen-residual
    ``‖Aᵀx − λx‖₁ / λ`` of the *unshifted* operator.
    """

    name = "eigenvector"
    family = "eigenvector"
    vocabulary = frozenset()

    def solve(
        self,
        graph,
        group_key: tuple,
        *,
        alpha: float = 0.85,
        teleport=None,
        tol: float = 1e-10,
        max_iter: int = 1000,
        clamp_min=None,
        raise_on_failure: bool = False,
    ) -> PageRankResult:
        _, weighted = group_key
        bundle = adjacency_bundle(graph, weighted=weighted)
        at = bundle.t_csr
        n = at.shape[0]
        if at.nnz == 0:  # edgeless: every node is equally (in)significant
            return PageRankResult(
                scores=np.full(n, 1.0 / n), iterations=0, converged=True,
                residuals=[0.0], method="eigenvector",
            )
        col_mass = np.asarray(at.sum(axis=0)).ravel()
        shift = 0.25 * float(col_mass.max())
        x = np.full(n, 1.0 / n)
        residuals: list[float] = []
        converged = False
        iterations = 0
        for iterations in range(1, max_iter + 1):
            ax = at @ x
            lam = float(ax.sum())  # L1 Rayleigh quotient, x >= 0
            if lam <= 0.0:
                # Unreachable with shift > 0 keeping x strictly positive,
                # but guard against pathological numerics.
                break
            residual = float(np.abs(ax - lam * x).sum()) / lam
            residuals.append(residual)
            y = ax + shift * x
            x = y / float(y.sum())
            if residual < tol:
                converged = True
                break
        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"eigenvector centrality did not reach tol={tol} "
                f"within {max_iter} iterations",
                iterations=iterations,
                residual=residuals[-1] if residuals else float("inf"),
            )
        return PageRankResult(
            scores=x, iterations=iterations, converged=converged,
            residuals=residuals, method="eigenvector",
        )


class HitsMethod(_SpectralMethod):
    """HITS authorities: dominant eigenvector of ``AᵀA``.

    Alternating L1-normalised iteration (authorities ← Aᵀ·hubs,
    hubs ← A·authorities); the residual is the successive L1 change of
    the authority vector, i.e. the eigen certificate for ``AᵀA``.
    Hub scores are recovered from authorities by one adjacency apply
    (:func:`repro.core.hits.hits` does exactly that), so one method
    descriptor serves both sides.
    """

    name = "hits"
    family = "hits"
    vocabulary = frozenset()

    def solve(
        self,
        graph,
        group_key: tuple,
        *,
        alpha: float = 0.85,
        teleport=None,
        tol: float = 1e-10,
        max_iter: int = 1000,
        clamp_min=None,
        raise_on_failure: bool = False,
    ) -> PageRankResult:
        _, weighted = group_key
        bundle = adjacency_bundle(graph, weighted=weighted)
        adjacency = bundle.mat
        adjacency_t = bundle.t_csr
        n = adjacency.shape[0]
        authorities = np.full(n, 1.0 / n)
        hubs_vec = np.full(n, 1.0 / n)
        residuals: list[float] = []
        converged = False
        iterations = 0
        for iterations in range(1, max_iter + 1):
            new_auth = adjacency_t @ hubs_vec
            total = new_auth.sum()
            if total == 0.0:  # graph with no edges
                new_auth = np.full(n, 1.0 / n)
            else:
                new_auth /= total
            new_hubs = adjacency @ new_auth
            total = new_hubs.sum()
            if total == 0.0:
                new_hubs = np.full(n, 1.0 / n)
            else:
                new_hubs /= total
            residual = float(np.abs(new_auth - authorities).sum())
            residuals.append(residual)
            authorities, hubs_vec = new_auth, new_hubs
            if residual < tol:
                converged = True
                break
        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"HITS did not reach tol={tol} within {max_iter} iterations",
                iterations=iterations,
                residual=residuals[-1],
            )
        return PageRankResult(
            scores=authorities, iterations=iterations, converged=converged,
            residuals=residuals, method="hits",
        )


register(KatzMethod())
register(EigenvectorMethod())
register(HitsMethod())
