"""Microbatch coalescing of concurrent ranking requests.

One personalised query against a 20M-edge graph streams the whole
transition once per power sweep; sixteen queries against the *same*
transition can share every one of those streams
(:func:`~repro.linalg.power_iteration_batch` advances an ``n × K`` block
with one sparse·dense multiply per sweep).  The coalescer is the serving
piece that turns request traffic into those blocks:

* :meth:`MicrobatchCoalescer.submit` files one column — a ``(teleport,
  alpha)`` pair under a transition-group key — and returns a
  :class:`CoalescerTicket` immediately;
* a group **auto-flushes** when it reaches the configured ``window``
  (the flush threshold / maximum block width, which also caps the dense
  block memory at ``O(n · window)``); two optional triggers bound how
  long a column can sit in an underfull window: ``max_age`` flushes a
  group whose oldest pending column has waited longer than the budget
  (checked on every submit and by :meth:`MicrobatchCoalescer.poll`),
  and ``backlog`` flushes everything once the *total* pending count
  across groups reaches the bound — many sparse groups each one column
  short of its window must not pin unbounded dense memory;
* :meth:`flush` (or reading an unflushed ticket's :meth:`~CoalescerTicket.
  result`, which flushes its group on demand) drains partial windows, so
  a caller can never deadlock on an underfull batch;
* before solving, the pending columns are **ordered by (teleport digest,
  alpha)** so columns sharing a teleport sit adjacent — when a whole
  flush shares one teleport, the batch solver's α-family fast path
  reconstructs the entire block from a single power sequence; and when
  two consecutive flushes of one group have identical column structure
  (the shape of parameter sweeps), the later flush **warm-starts** from
  the earlier block's solutions, mirroring
  :func:`~repro.core.engine.solve_many`.

Thread safety
-------------
The coalescer serves two call patterns.  The original synchronous one —
a single loop submitting many requests before reading any result — still
works unchanged.  Under the concurrent front
(:class:`~repro.serving.front.ServingFront`) several worker threads
submit, flush and read tickets at once; the coalescer is safe for that
because all bookkeeping (group tables, pending lists, ticket resolution,
warm-start memory, counters) happens under one internal condition
variable, while the **batched solves themselves run outside the lock**:
a flush atomically takes ownership of its group's pending columns, marks
the group *solving*, releases the lock for the solve, and re-acquires it
to deliver results and wake waiters.  Consequences worth knowing:

* two threads can solve two different flushes concurrently (even of the
  same group, when columns arrived between the takes — the warm-start
  signature check keeps the blocks independent);
* a thread reading a ticket whose column is being solved by another
  thread's flush **waits** on the condition variable instead of
  double-solving;
* submission during a flush files into the group's fresh pending list
  and never blocks on the solve.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import _teleport_digest
from repro.errors import ParameterError, ReproError
from repro.graph.base import BaseGraph
from repro.linalg.batch import power_iteration_batch
from repro.linalg.solvers import PageRankResult
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["CoalescerTicket", "MicrobatchCoalescer"]


@dataclass
class _Column:
    teleport: np.ndarray | None
    alpha: float
    digest: bytes | None
    ticket: "CoalescerTicket"
    filed_at: float


class CoalescerTicket:
    """Handle for one submitted column; resolves when its group flushes."""

    __slots__ = ("_coalescer", "_group", "_result", "_mutation", "_meta")

    def __init__(self, coalescer: "MicrobatchCoalescer", group: tuple) -> None:
        self._coalescer = coalescer
        self._group = group
        self._result: PageRankResult | None = None
        self._mutation: int | None = None
        self._meta: dict | None = None

    @property
    def done(self) -> bool:
        """Whether the column's batch has been solved."""
        with self._coalescer._cv:
            return self._result is not None

    @property
    def mutation(self) -> int:
        """Graph mutation count the column was **solved** at.

        Captured inside the flush, so an answer computed before a
        mutation landed is never mistaken for one certified after it —
        the result-cache stamps entries with this, not with whatever the
        counter says when the ticket happens to be read.
        """
        if self._mutation is None:
            self.result()
        return self._mutation

    @property
    def meta(self) -> dict | None:
        """Flush telemetry for this column, once solved.

        ``flush_cause``, ``batch_occupancy``, ``batch_method``,
        ``queue_wait`` (seconds pending before the flush took the
        column), ``iterations`` and final ``residual`` of this column —
        the facts the serving layer copies into the request's solve
        span.  ``None`` until the column's batch has been delivered.
        """
        with self._coalescer._cv:
            return self._meta

    def result(self) -> PageRankResult:
        """The column's solution, flushing its group first if needed.

        When another thread's in-flight flush already owns this column,
        the call waits for that solve instead of starting a second one.
        """
        coalescer = self._coalescer
        while True:
            with coalescer._cv:
                if self._result is not None:
                    return self._result
                state = coalescer._groups.get(self._group)
                mine_pending = state is not None and any(
                    column.ticket is self for column in state.pending
                )
                if not mine_pending:
                    if state is not None and state.solving > 0:
                        # Another thread's flush took my column; wait for
                        # its delivery instead of re-solving.
                        coalescer._cv.wait()
                        continue
                    raise ReproError(  # pragma: no cover - defensive
                        "coalescer flush did not resolve this ticket"
                    )
            # My column is still pending: drive the flush ourselves (the
            # solve runs outside the condition variable; if another
            # thread races us to it, the next loop iteration waits).
            coalescer._flush_group(self._group)


@dataclass
class _GroupState:
    pending: list[_Column] = field(default_factory=list)
    #: Number of in-flight flush solves currently owning columns of this
    #: group; ticket readers wait while non-zero, and the group is never
    #: evicted from the LRU table while a solve is out.
    solving: int = 0
    # Warm-start memory: the previous flush's (column signature, scores
    # block) — reused when the next flush has identical structure.
    prev_signature: tuple | None = None
    prev_scores: np.ndarray | None = None


class MicrobatchCoalescer:
    """Collects same-transition ranking requests into batched solves.

    Parameters
    ----------
    graph:
        The served graph; transition matrices and operator bundles
        resolve through its mutation-aware cache, so a flush after a
        :class:`~repro.graph.delta.GraphDelta` transparently uses the
        delta-refreshed operator.
    window:
        Flush threshold and maximum block width (K) per solve.  Also the
        dense-memory cap: one flush holds ``O(n · window)`` floats.
    precision:
        Forwarded to :func:`~repro.linalg.power_iteration_batch`
        (``"double"`` or the float32-sweep ``"mixed"`` serving mode).
    max_iter:
        Per-flush iteration budget.
    max_groups:
        Retained group states (LRU by last submit/flush).  Each flushed
        group keeps its previous block as warm-start memory — an
        ``n × window`` float64 array, ~128 MB at n = 1M / window = 16 —
        so idle groups past this bound are dropped (losing only their
        warm start, never pending columns: groups with unflushed
        columns or an in-flight solve are exempt from eviction).
    max_age:
        Latency budget in seconds: a group whose **oldest** pending
        column has waited longer than this is flushed underfull.  The
        check runs on every :meth:`submit` and on :meth:`poll` (for
        callers with idle periods between submissions — the serving
        front drives :meth:`poll` from a timer thread).  ``None``
        (default) disables the trigger — columns then wait for a full
        window or an on-demand read, which is correct for tight
        submit-then-read loops but lets a steady trickle of distinct
        groups serve every request at occupancy 1.
    backlog:
        Total-pending bound across *all* groups: reaching it flushes
        everything.  Many sparse groups each one column short of a
        window otherwise pin ``O(n · pending)`` dense memory with no
        flush in sight.  ``None`` (default) disables the trigger.
    clock:
        Monotonic time source for the age trigger (injectable for
        deterministic tests); defaults to :func:`time.monotonic`.
    metrics:
        Telemetry registry for the flush counters (cause-labelled),
        column totals and occupancy gauges; ``None`` creates a private
        registry.  The service passes its own so one export covers the
        whole stack.
    """

    def __init__(
        self,
        graph: BaseGraph,
        *,
        window: int = 16,
        precision: str = "double",
        max_iter: int = 1000,
        clamp_min: float | None = None,
        max_groups: int = 8,
        max_age: float | None = None,
        backlog: int | None = None,
        clock=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window}")
        if precision not in ("double", "mixed"):
            raise ParameterError(
                f"precision must be 'double' or 'mixed', got {precision!r}"
            )
        if max_groups < 1:
            raise ParameterError(
                f"max_groups must be >= 1, got {max_groups}"
            )
        if max_age is not None and not (
            np.isfinite(max_age) and max_age >= 0.0
        ):
            raise ParameterError(
                f"max_age must be a non-negative number, got {max_age}"
            )
        if backlog is not None and backlog < 1:
            raise ParameterError(f"backlog must be >= 1, got {backlog}")
        self._graph = graph
        self.window = window
        self.precision = precision
        self.max_iter = max_iter
        self.clamp_min = clamp_min
        self.max_groups = max_groups
        self.max_age = max_age
        self.backlog = backlog
        if clock is None:
            import time

            clock = time.monotonic
        self._clock = clock
        # One condition variable (over a non-reentrant lock: no method
        # nests acquisition) guards every piece of mutable state below;
        # flush solves run outside it and notify on delivery.
        self._cv = threading.Condition()
        self._groups: dict[tuple, _GroupState] = {}
        # Flush counters live in the telemetry registry (atomic under
        # the counter family's leaf lock) instead of bare ints mutated
        # under the condition variable — exports never tear them.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_flushes = self.metrics.counter(
            "coalescer_flushes_total",
            "Batched flushes by trigger cause",
            labels=("cause",),
        )
        self._m_columns = self.metrics.counter(
            "coalescer_columns_total", "Columns solved through flushes"
        )
        self._g_occupancy = self.metrics.gauge(
            "coalescer_max_occupancy", "Widest flushed block so far"
        )
        self._g_occupancy.set(0)
        self.metrics.gauge(
            "coalescer_pending", "Columns filed but not yet solved"
        ).set_function(lambda: self.pending)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        group_key: tuple,
        *,
        teleport: np.ndarray | None,
        alpha: float,
        tol: float,
    ) -> CoalescerTicket:
        """File one column under ``group_key`` and return its ticket.

        ``group_key`` is the planner's family-tagged transition-group
        key (``RankRequest.group_key``, built by the method registry —
        e.g. ``("d2pr", p, beta, weighted, dangling)``); ``tol`` joins
        it internally so
        columns solved to different accuracies never share a block (a
        block converges per column, but its certificate is per flush).
        Reaching ``window`` pending columns auto-flushes the group;
        the ``max_age``/``backlog`` triggers are also checked here.
        """
        if not (np.isfinite(tol) and tol > 0.0):
            raise ParameterError(f"tol must be positive, got {tol}")
        if not 0.0 <= alpha < 1.0:
            # Validate here, not at flush: a bad column must fail its
            # own submit instead of poisoning a whole batched block.
            raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
        key = (*group_key, float(tol))
        flush_all = False
        with self._cv:
            state = self._groups.setdefault(key, _GroupState())
            self._touch(key)
            ticket = CoalescerTicket(self, key)
            state.pending.append(
                _Column(
                    teleport=teleport,
                    alpha=float(alpha),
                    digest=_teleport_digest(teleport),
                    ticket=ticket,
                    filed_at=self._clock(),
                )
            )
            window_full = len(state.pending) >= self.window
            if not window_full and self.backlog is not None:
                flush_all = self._pending_locked() >= self.backlog
        if window_full:
            self._flush_group(key, cause="window")
        elif flush_all:
            for gkey in self._group_keys():
                self._flush_group(gkey, cause="backlog")
        else:
            self.poll()
        return ticket

    def _pending_locked(self) -> int:
        return sum(len(s.pending) for s in self._groups.values())

    def _group_keys(self) -> list[tuple]:
        with self._cv:
            return list(self._groups)

    @property
    def pending(self) -> int:
        """Columns filed but not yet solved, across all groups."""
        with self._cv:
            return self._pending_locked()

    def poll(self) -> int:
        """Flush groups whose oldest pending column exceeds ``max_age``.

        Submission already runs this check, so a steadily-fed coalescer
        needs no polling; call it from service idle loops — or let a
        :class:`~repro.serving.front.ServingFront` poller thread drive
        it — when traffic can stop with columns in flight.  Returns the
        number of groups flushed.  No-op when ``max_age`` is ``None``.
        """
        if self.max_age is None:
            return 0
        with self._cv:
            now = self._clock()
            due = [
                key
                for key, state in self._groups.items()
                if state.pending
                and now - state.pending[0].filed_at >= self.max_age
            ]
        flushed = 0
        for key in due:
            if self._flush_group(key, cause="age"):
                flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush(self, group: tuple | None = None) -> None:
        """Solve pending columns — one group, or every group."""
        if group is not None:
            self._flush_group(group)
            return
        for key in self._group_keys():
            self._flush_group(key)

    def _flush_group(self, key: tuple, cause: str = "demand") -> bool:
        """Take ownership of ``key``'s pending columns and solve them.

        Returns whether any columns were actually flushed.  The solve
        runs outside the condition variable: concurrent submits keep
        filing into the group, concurrent flushes of *other* pending
        columns proceed independently, and ticket readers wait on the
        ``solving`` marker.
        """
        from repro.methods import operator_for  # local: avoids cycle

        with self._cv:
            state = self._groups.get(key)
            if state is None or not state.pending:
                return False
            columns = state.pending
            state.pending = []
            state.solving += 1
            # Adjacent shared-teleport columns let the batch solver's
            # α-family fast path fire on family-shaped flushes; the sort
            # key also makes the flush signature deterministic for
            # warm-start matching across flushes.
            columns.sort(key=lambda c: (c.digest or b"", c.alpha))
            signature = tuple((c.alpha, c.digest) for c in columns)
            warm = (
                state.prev_scores
                if state.prev_signature == signature
                and state.prev_scores is not None
                else None
            )
            taken_at = self._clock()
        group_key, tol = tuple(key[:-1]), key[-1]
        dangling = group_key[-1]
        try:
            bundle = operator_for(
                self._graph, group_key, clamp_min=self.clamp_min
            )
            if warm is not None and warm.shape[0] != bundle.n:
                warm = None
            batch = power_iteration_batch(
                bundle.mat,
                teleports=[c.teleport for c in columns],
                alphas=np.array([c.alpha for c in columns]),
                tol=tol,
                max_iter=self.max_iter,
                dangling=dangling,
                warm_start=warm,
                precision=self.precision,
                operator=bundle,
            )
            solved_at = self._graph.mutation_count
        except BaseException:
            # Restore the columns so a failed solve (solver error,
            # interrupt) never strands unresolved tickets; the next
            # flush retries them.
            with self._cv:
                state.pending = columns + state.pending
                state.solving -= 1
                self._cv.notify_all()
            raise
        with self._cv:
            for j, column in enumerate(columns):
                column.ticket._result = batch.column(j)
                column.ticket._mutation = solved_at
                residuals = batch.residuals[j]
                column.ticket._meta = {
                    "flush_cause": cause,
                    "batch_occupancy": len(columns),
                    "batch_method": batch.method,
                    "queue_wait": max(0.0, taken_at - column.filed_at),
                    "iterations": int(batch.iterations[j]),
                    "residual": (
                        float(residuals[-1]) if residuals else None
                    ),
                }
            state.prev_signature = signature
            state.prev_scores = batch.scores
            state.solving -= 1
            if key in self._groups:
                self._touch(key)
            # Counter locks are leaves (see docs/serving.md
            # § Concurrency): incrementing under the condition variable
            # keeps delivery and accounting atomic for ticket readers.
            self._m_flushes.inc(cause=cause)
            self._m_columns.inc(len(columns))
            self._g_occupancy.set_max(len(columns))
            self._evict_idle_groups()
            self._cv.notify_all()
        return True

    def _touch(self, key: tuple) -> None:
        """Move ``key`` to the recently-used end of the group table."""
        state = self._groups.pop(key)
        self._groups[key] = state

    def _evict_idle_groups(self) -> None:
        """Drop the oldest idle groups past ``max_groups``.

        Only their warm-start memory is lost; a group holding pending
        (unflushed) columns or an in-flight solve is never evicted.
        """
        if len(self._groups) <= self.max_groups:
            return
        excess = len(self._groups) - self.max_groups
        for key in list(self._groups):
            if excess <= 0:
                break
            state = self._groups[key]
            if not state.pending and state.solving == 0:
                del self._groups[key]
                excess -= 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Flush counters and batch-occupancy summary (O(1) state).

        A backwards-compatible view over the telemetry registry — the
        exporters publish the same numbers under the
        ``coalescer_*`` names.
        """
        causes = {"window": 0, "age": 0, "backlog": 0, "demand": 0}
        for labels, value in self._m_flushes.values().items():
            causes[dict(labels)["cause"]] = int(value)
        flushes = sum(causes.values())
        columns = int(self._m_columns.value())
        with self._cv:
            pending = self._pending_locked()
        return {
            "window": self.window,
            "flushes": flushes,
            "columns": columns,
            "pending": pending,
            "mean_occupancy": columns / flushes if flushes else 0.0,
            "max_occupancy": int(self._g_occupancy.value()),
            "flush_causes": causes,
        }
