"""Queue-based admission control for the concurrent serving front.

A serving process under more load than it can absorb has exactly three
honest options: queue the request, serve it now, or **refuse it with a
reason**.  :class:`AdmissionController` implements that contract as a
bounded FIFO ingress queue plus per-class concurrency limits:

* **Bounded queue** — an offer beyond ``capacity`` raises
  :class:`~repro.errors.AdmissionError` with ``reason="queue_full"``.
  Backpressure is *explicit*: the client learns immediately that the
  front is saturated instead of watching its request age in an
  unbounded queue.
* **Per-class concurrency limits** — each queued item carries a class
  label (the serving front uses the planner's strategy name), and
  ``limits`` caps how many items of a class may be *running* at once.
  :meth:`take` hands out the **first queued item whose class has a free
  slot**, skipping over blocked ones — an expensive class (a global
  ``sharded`` solve) saturating its slots cannot starve the cheap
  pushes queued behind it; they jump ahead while the heavy slot drains.
  FIFO order is preserved *within* a class.
* **Explicit shutdown** — :meth:`close` rejects everything still queued
  with ``reason="shutdown"`` and returns the rejected items so the
  caller can fail their tickets loudly.  Nothing is ever dropped
  silently.

Thread safety: one condition variable guards all state; ``offer`` /
``take`` / ``release`` / ``close`` may be called from any thread.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import AdmissionError, ParameterError
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded ingress queue with per-class concurrency limits.

    Parameters
    ----------
    capacity:
        Maximum queued (admitted but not yet running) items.
    limits:
        ``{class_label: max_concurrent}`` — classes absent from the map
        are unlimited.  Limits bound *running* items (between
        :meth:`take` and :meth:`release`), not queued ones.
    metrics:
        Telemetry registry for the admit/reject counters and the
        queue-depth gauge; ``None`` creates a private registry.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        limits: dict[str, int] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        limits = dict(limits or {})
        for label, limit in limits.items():
            if limit < 1:
                raise ParameterError(
                    f"limit for class {label!r} must be >= 1, got {limit}"
                )
        self.capacity = capacity
        self.limits = limits
        self._cv = threading.Condition()
        self._queue: deque[tuple[object, str]] = deque()
        self._running: dict[str, int] = {}
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_admitted = self.metrics.counter(
            "admission_admitted_total", "Requests admitted to the queue"
        )
        self._m_rejected = self.metrics.counter(
            "admission_rejected_total",
            "Requests refused, by reason",
            labels=("reason",),
        )
        # Callback gauge: evaluated at export time, takes the condition
        # variable — safe because no code updates *gauge* families while
        # holding it (counters are leaf locks; see docs/serving.md).
        self.metrics.gauge(
            "admission_queue_depth", "Admitted but not yet running requests"
        ).set_function(self.depth)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def offer(self, item: object, cls: str = "default") -> None:
        """Admit ``item`` or raise :class:`AdmissionError` with a reason."""
        with self._cv:
            if self._closed:
                self._m_rejected.inc(reason="shutdown")
                raise AdmissionError(
                    "serving front is shut down", reason="shutdown"
                )
            if len(self._queue) >= self.capacity:
                self._m_rejected.inc(reason="queue_full")
                raise AdmissionError(
                    f"ingress queue is full ({self.capacity} deep); "
                    "retry later or raise capacity",
                    reason="queue_full",
                )
            self._queue.append((item, cls))
            self._m_admitted.inc()
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def _eligible(self) -> int | None:
        """Index of the first queued item whose class has a free slot."""
        for i, (_item, cls) in enumerate(self._queue):
            limit = self.limits.get(cls)
            if limit is None or self._running.get(cls, 0) < limit:
                return i
        return None

    def take(
        self, timeout: float | None = None
    ) -> tuple[object, str] | None:
        """The next runnable ``(item, class)``, or ``None``.

        Blocks until an item whose class has a free concurrency slot is
        available (claiming its slot), the controller is closed
        (returns ``None`` once the queue is empty), or ``timeout``
        elapses (``None``; ``timeout=0`` polls).  Pair every successful
        take with a :meth:`release` of the returned class.
        """
        with self._cv:
            while True:
                index = self._eligible()
                if index is not None:
                    item, cls = self._queue[index]
                    del self._queue[index]
                    self._running[cls] = self._running.get(cls, 0) + 1
                    return item, cls
                if self._closed and not self._queue:
                    return None
                if timeout == 0:
                    return None
                if not self._cv.wait(timeout=timeout):
                    return None

    def release(self, cls: str) -> None:
        """Return the concurrency slot claimed by a :meth:`take`."""
        with self._cv:
            count = self._running.get(cls, 0)
            if count <= 0:
                raise ParameterError(
                    f"release of class {cls!r} without a matching take"
                )
            if count == 1:
                del self._running[cls]
            else:
                self._running[cls] = count - 1
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> list[tuple[object, str]]:
        """Stop admitting; return still-queued items for explicit rejection.

        Waiting :meth:`take` calls wake and drain what remains already
        taken; the *queued* backlog is handed back to the caller, whose
        job is to fail each item loudly (the serving front rejects their
        tickets with ``reason="shutdown"``).  Idempotent.
        """
        with self._cv:
            self._closed = True
            leftovers = list(self._queue)
            self._queue.clear()
            if leftovers:
                self._m_rejected.inc(len(leftovers), reason="shutdown")
            self._cv.notify_all()
            return leftovers

    @property
    def closed(self) -> bool:
        with self._cv:
            return self._closed

    def depth(self) -> int:
        """Currently queued (admitted, not yet running) items."""
        with self._cv:
            return len(self._queue)

    def stats(self) -> dict:
        """Admission health: depth, running per class, rejections by reason.

        A backwards-compatible view over the telemetry registry (the
        ``admission_*`` export names).
        """
        rejected = {
            dict(labels)["reason"]: int(value)
            for labels, value in self._m_rejected.values().items()
        }
        with self._cv:
            depth = len(self._queue)
            running = dict(self._running)
            closed = self._closed
        return {
            "capacity": self.capacity,
            "depth": depth,
            "admitted": int(self._m_admitted.value()),
            "rejected": rejected,
            "running": running,
            "limits": dict(self.limits),
            "closed": closed,
        }
