"""Per-strategy latency observation for the serving layer.

The query planner's cost model starts from static constants (seed-count
windows, a crude frontier-reach estimate).  Under real traffic the
service *observes* what each strategy actually costs on this graph, on
this hardware, at this load — the :class:`LatencyRecorder` is where
those observations live, and
:meth:`~repro.serving.planner.QueryPlanner.observe` is how they flow
back into planning (see the planner's self-tuning contract).

The recorder keeps one bounded **ring buffer per key** (strategy name):
O(window) memory per strategy, O(1) amortised per observation, and
quantiles computed over the *recent* window rather than all of history —
a strategy whose cost regime shifted (graph grew, cache warmed, worker
pool saturated) is re-estimated within ``window`` requests.  Total
counts are kept separately and never truncated.

All methods are thread-safe; the serving front's worker threads record
into one shared instance.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.errors import ParameterError

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Bounded per-key latency rings with count/p50/p95 summaries."""

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window}")
        self.window = window
        self._lock = threading.Lock()
        self._rings: dict[str, deque[float]] = {}
        self._counts: dict[str, int] = {}

    def observe(self, key: str, seconds: float) -> None:
        """Record one observed latency for ``key`` (negatives are clamped)."""
        value = max(0.0, float(seconds))
        with self._lock:
            ring = self._rings.get(key)
            if ring is None:
                ring = deque(maxlen=self.window)
                self._rings[key] = ring
                self._counts[key] = 0
            ring.append(value)
            self._counts[key] += 1

    def count(self, key: str) -> int:
        """Total observations ever recorded for ``key``."""
        with self._lock:
            return self._counts.get(key, 0)

    def quantile(self, key: str, q: float) -> float | None:
        """The ``q``-quantile of the recent window, or ``None`` if empty."""
        with self._lock:
            ring = self._rings.get(key)
            if not ring:
                return None
            values = list(ring)
        return float(np.percentile(values, 100.0 * q))

    def summary(self) -> dict:
        """``{key: {count, window, p50, p95, mean, last}}`` for every key."""
        with self._lock:
            snapshot = {
                key: (self._counts[key], list(ring))
                for key, ring in self._rings.items()
                if ring
            }
        out = {}
        for key, (count, values) in snapshot.items():
            arr = np.asarray(values)
            out[key] = {
                "count": count,
                "window": len(values),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "mean": float(arr.mean()),
                "last": float(arr[-1]),
            }
        return out
