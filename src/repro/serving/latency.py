"""Per-strategy latency observation for the serving layer.

The query planner's cost model starts from static constants (seed-count
windows, a crude frontier-reach estimate).  Under real traffic the
service *observes* what each strategy actually costs on this graph, on
this hardware, at this load — the :class:`LatencyRecorder` is where
those observations live, and
:meth:`~repro.serving.planner.QueryPlanner.observe` is how they flow
back into planning (see the planner's self-tuning contract).

Since the telemetry subsystem landed, the recorder is a **thin adapter**
over one :class:`~repro.telemetry.metrics.Histogram` family
(``serving_latency_seconds``, labelled by strategy) in a
:class:`~repro.telemetry.metrics.MetricsRegistry`: latency is recorded
once, the planner's self-tuning reads it through this per-key API, and
operators read the very same numbers through ``registry.snapshot()`` or
the Prometheus/JSON exporters.  The histogram keeps the recorder's
long-standing contract — one bounded window per key (O(window) memory,
quantiles over the *recent* regime rather than all of history) plus
never-truncated totals — and every method stays thread-safe; the
serving front's worker threads record into one shared instance.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["LatencyRecorder"]

#: The histogram family name the recorder registers (or joins) in its
#: registry — shared with exporters and `RankingService.stats()`.
LATENCY_METRIC = "serving_latency_seconds"


class LatencyRecorder:
    """Bounded per-key latency rings with count/p50/p95 summaries.

    ``metrics`` is the registry to record into; ``None`` creates a
    private one, preserving the standalone behaviour the planner tests
    pin.  A shared registry must not already hold ``name`` with a
    different window (the registry rejects the mismatch).
    """

    def __init__(
        self,
        window: int = 256,
        *,
        metrics: MetricsRegistry | None = None,
        name: str = LATENCY_METRIC,
    ) -> None:
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window}")
        self.window = window
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hist = self.metrics.histogram(
            name,
            "Observed serving latency per plan strategy",
            labels=("strategy",),
            window=window,
        )

    def observe(self, key: str, seconds: float) -> None:
        """Record one observed latency for ``key`` (negatives are clamped)."""
        self._hist.observe(max(0.0, float(seconds)), strategy=key)

    def count(self, key: str) -> int:
        """Total observations ever recorded for ``key``."""
        return self._hist.count(strategy=key)

    def quantile(self, key: str, q: float) -> float | None:
        """The ``q``-quantile of the recent window, or ``None`` if empty."""
        return self._hist.quantile(q, strategy=key)

    def summary(self) -> dict:
        """``{key: {count, window, p50, p95, mean, last}}`` for every key."""
        out = {}
        for labels, summary in self._hist.summaries().items():
            if summary["window"] == 0:
                continue
            key = dict(labels)["strategy"]
            out[key] = {
                "count": summary["count"],
                "window": summary["window"],
                "p50": summary["p50"],
                "p95": summary["p95"],
                "p99": summary["p99"],
                "mean": summary["mean"],
                "last": summary["last"],
            }
        return out
