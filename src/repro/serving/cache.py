"""Delta-aware result cache for served ranking answers.

Classic result caching dies on streaming graphs: any edit invalidates
every entry, so a workload with even a trickle of deltas never sees a
hit.  This cache keeps entries *alive across localized deltas* instead:

* entries are keyed by the planner's **canonical query digest**
  (:func:`~repro.serving.planner.canonical_query`) and tagged with the
  graph's ``mutation_count`` and the tolerance they were solved to — a
  lookup serves only entries certified at the current graph version for
  at least the requested accuracy;
* when the service routes a :class:`~repro.graph.delta.GraphDelta`
  through :meth:`~repro.serving.RankingService.apply_delta` and the
  delta is localized, each live entry is **marked pending** with a
  reference to its still-cached pre-delta operator, instead of being
  evicted — an O(1) capture per entry.  The next lookup reports
  ``"pending"`` and the service corrects the entry by residual push
  (:func:`~repro.linalg.incremental.incremental_update` — the
  ``update_scores`` machinery, with the baseline residual derived
  lazily from the retained pre-delta operator), re-certifying it at
  the new graph version for a small fraction of a cold solve;
* an entry still pending when a *second* delta lands was not read in
  between — it is evicted rather than chained, mirroring the one-layer
  rule of the graph's own delta-aware matrix refresh;
* capacity is bounded LRU; storing past capacity evicts the
  least-recently-served digest.

Entries hold the **full certified score vector** (as served
:class:`~repro.core.results.NodeScores`); top-k requests slice it on the
way out, so one entry answers every ``k`` — and a corrected entry
re-certifies every slice at once.  Cached vectors are shared with
callers under the library's read-only contract.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.results import NodeScores
from repro.errors import ParameterError
from repro.serving.planner import RankRequest

__all__ = ["CacheEntry", "ResultCache"]

#: Relative slack when comparing tolerances, so an entry solved at
#: exactly the requested tol is never rejected over float noise.
_TOL_SLACK = 1e-9


@dataclass
class CacheEntry:
    """One cached answer: the certified vector plus its provenance."""

    scores: NodeScores
    tol: float
    mutation: int
    request: RankRequest
    #: Sparse canonical teleport — a sorted ``(indices, unit-normalised
    #: weights)`` pair, or ``None`` for uniform.  O(seeds) resident
    #: memory per entry; the service materialises the dense vector only
    #: when a correction actually solves.
    teleport: tuple[np.ndarray, np.ndarray] | None
    #: Correction token captured by the service before a localized delta
    #: was applied (opaque to the cache — in practice a reference to the
    #: pre-delta operator bundle, from which the baseline residual is
    #: derived lazily at correction time).  Non-``None`` marks the entry
    #: as awaiting incremental correction.
    pending: object | None = None
    hits: int = 0


class ResultCache:
    """Bounded LRU of certified ranking answers, corrected across deltas."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._corrections = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self, digest: str, *, mutation: int, tol: float
    ) -> tuple[str, CacheEntry | None]:
        """Classify ``digest`` for a request at ``(mutation, tol)``.

        Returns ``("hit", entry)`` for a servable certified entry,
        ``("pending", entry)`` for a pre-delta entry awaiting incremental
        correction (still at the post-delta mutation count), and
        ``("miss", None)`` otherwise.  An entry from a *different* graph
        version with no pending correction — the graph mutated behind
        the service's back — is evicted on sight; an entry that merely
        fails the tolerance gate is left in place (it still serves
        looser requests) and the miss's fresh solve will overwrite it.
        """
        self._lookups += 1
        entry = self._entries.get(digest)
        if entry is None:
            self._misses += 1
            return "miss", None
        if entry.mutation != mutation:
            # Mutated outside the service's apply_delta path: the entry
            # has no correction route, so it can never serve again.
            self._evict(digest)
            self._misses += 1
            return "miss", None
        if entry.tol > tol * (1.0 + _TOL_SLACK):
            self._misses += 1
            return "miss", None
        self._entries.move_to_end(digest)
        if entry.pending is not None:
            return "pending", entry
        entry.hits += 1
        self._hits += 1
        return "hit", entry

    def peek(self, digest: str, *, mutation: int, tol: float) -> str:
        """Classify like :meth:`lookup` without counters, LRU or eviction.

        The dry-run used by :meth:`~repro.serving.RankingService.plan`.
        """
        entry = self._entries.get(digest)
        if (
            entry is None
            or entry.mutation != mutation
            or entry.tol > tol * (1.0 + _TOL_SLACK)
        ):
            return "miss"
        return "pending" if entry.pending is not None else "hit"

    def store(
        self,
        digest: str,
        *,
        scores: NodeScores,
        tol: float,
        mutation: int,
        request: RankRequest,
        teleport: tuple[np.ndarray, np.ndarray] | None,
    ) -> CacheEntry:
        """Insert (or overwrite) the certified answer for ``digest``."""
        entry = CacheEntry(
            scores=scores,
            tol=float(tol),
            mutation=int(mutation),
            request=request,
            teleport=teleport,
        )
        if digest in self._entries:
            del self._entries[digest]
        self._entries[digest] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        return entry

    # ------------------------------------------------------------------
    # delta lifecycle
    # ------------------------------------------------------------------
    def live_entries(self) -> list[tuple[str, CacheEntry]]:
        """Digest/entry pairs eligible for baseline capture (not pending)."""
        return [
            (digest, entry)
            for digest, entry in self._entries.items()
            if entry.pending is None
        ]

    def pending_digests(self) -> list[str]:
        """Digests still awaiting correction from an earlier delta."""
        return [
            digest
            for digest, entry in self._entries.items()
            if entry.pending is not None
        ]

    def mark_pending(
        self, digest: str, token: object, *, mutation: int
    ) -> None:
        """Flag ``digest`` as awaiting correction at graph version ``mutation``.

        ``token`` is whatever the service needs to derive the correction
        later — in practice a reference to the entry's *pre-delta*
        operator bundle, from which the baseline residual (the part the
        incremental solver freezes as dust; see ``linalg/incremental.py``)
        is computed lazily on first post-delta access.
        """
        entry = self._entries.get(digest)
        if entry is None:  # pragma: no cover - defensive
            return
        entry.pending = token
        entry.mutation = int(mutation)

    def resolve_pending(
        self, digest: str, *, scores: NodeScores, tol: float, mutation: int
    ) -> CacheEntry:
        """Replace a pending entry with its corrected, re-certified answer."""
        entry = self._entries.get(digest)
        if entry is None:  # pragma: no cover - defensive
            raise ParameterError(f"no cache entry for digest {digest!r}")
        entry.scores = scores
        entry.tol = float(tol)
        entry.mutation = int(mutation)
        entry.pending = None
        self._corrections += 1
        self._entries.move_to_end(digest)
        return entry

    def evict(self, digest: str) -> None:
        """Drop one entry (counted in the eviction stats)."""
        if digest in self._entries:
            self._evict(digest)

    def evict_all(self) -> int:
        """Drop every entry (de-localised delta / external mutation path)."""
        dropped = len(self._entries)
        self._entries.clear()
        self._evictions += dropped
        return dropped

    def _evict(self, digest: str) -> None:
        del self._entries[digest]
        self._evictions += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hit/miss/correction/eviction counters plus occupancy."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "pending": sum(
                1
                for entry in self._entries.values()
                if entry.pending is not None
            ),
            "lookups": self._lookups,
            "hits": self._hits,
            "misses": self._misses,
            "corrections": self._corrections,
            "evictions": self._evictions,
            "hit_rate": self._hits / self._lookups if self._lookups else 0.0,
        }
