"""Delta-aware result cache for served ranking answers.

Classic result caching dies on streaming graphs: any edit invalidates
every entry, so a workload with even a trickle of deltas never sees a
hit.  This cache keeps entries *alive across localized deltas* instead:

* entries are keyed by the planner's **canonical query digest**
  (:func:`~repro.serving.planner.canonical_query`) and tagged with the
  graph's ``mutation_count`` and the tolerance they were solved to — a
  lookup serves only entries certified at the current graph version for
  at least the requested accuracy;
* when the service routes a :class:`~repro.graph.delta.GraphDelta`
  through :meth:`~repro.serving.RankingService.apply_delta` and the
  delta is localized, each live entry is **marked pending** with a
  reference to its still-cached pre-delta operator, instead of being
  evicted — an O(1) capture per entry.  The next lookup reports
  ``"pending"`` and the service corrects the entry by residual push
  (:func:`~repro.linalg.incremental.incremental_update` — the
  ``update_scores`` machinery, with the baseline residual derived
  lazily from the retained pre-delta operator), re-certifying it at
  the new graph version for a small fraction of a cold solve;
* an entry still pending when a *second* delta lands was not read in
  between — it is evicted rather than chained, mirroring the one-layer
  rule of the graph's own delta-aware matrix refresh;
* capacity is bounded LRU; storing past capacity evicts the
  least-recently-served digest.

Entries hold the **full certified score vector** (as served
:class:`~repro.core.results.NodeScores`); top-k requests slice it on the
way out, so one entry answers every ``k`` — and a corrected entry
re-certifies every slice at once.  Cached vectors are shared with
callers under the library's read-only contract.

Thread safety
-------------
Every public method holds one internal :class:`threading.RLock` for its
whole critical section, so the cache can sit behind the concurrent
serving front (:class:`~repro.serving.front.ServingFront`) without
external locking.  The lock is held only for O(entries) bookkeeping —
never during a solve — so it is not a throughput bottleneck.  The
delta-pending correction path is made atomic by **token identity**:

* :meth:`lookup` returns the pending token alongside the entry, and the
  corrector must hand the same token back to :meth:`resolve_pending`;
* resolving with a token that is no longer the entry's current pending
  marker means a delta landed (or the entry was re-marked) while the
  correction solved — the stale corrected answer is **discarded and the
  entry evicted**, never stored;
* resolving an entry whose token was already cleared by an identical
  concurrent correction is idempotent: the first resolution wins, the
  second is reported as already applied and nothing changes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.results import NodeScores
from repro.errors import ParameterError
from repro.serving.planner import RankRequest
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["CacheEntry", "ResultCache"]

#: Relative slack when comparing tolerances, so an entry solved at
#: exactly the requested tol is never rejected over float noise.
_TOL_SLACK = 1e-9


@dataclass
class CacheEntry:
    """One cached answer: the certified vector plus its provenance."""

    scores: NodeScores
    tol: float
    mutation: int
    request: RankRequest
    #: Sparse canonical teleport — a sorted ``(indices, unit-normalised
    #: weights)`` pair, or ``None`` for uniform.  O(seeds) resident
    #: memory per entry; the service materialises the dense vector only
    #: when a correction actually solves.
    teleport: tuple[np.ndarray, np.ndarray] | None
    #: Correction token captured by the service before a localized delta
    #: was applied (opaque to the cache — in practice a reference to the
    #: pre-delta operator bundle, from which the baseline residual is
    #: derived lazily at correction time).  Non-``None`` marks the entry
    #: as awaiting incremental correction; its *identity* is the
    #: atomicity handle of the correction lifecycle (see module docs).
    pending: object | None = None
    hits: int = 0


class ResultCache:
    """Bounded LRU of certified ranking answers, corrected across deltas."""

    def __init__(
        self,
        capacity: int = 128,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        # All counters live in the (possibly shared) telemetry registry;
        # each increment is atomic under the counter family's own leaf
        # lock, so readers exporting a snapshot never see torn values.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_lookups = self.metrics.counter(
            "cache_lookups_total", "Result-cache lookups"
        )
        self._m_hits = self.metrics.counter(
            "cache_hits_total", "Certified answers served from cache"
        )
        self._m_misses = self.metrics.counter(
            "cache_misses_total", "Lookups that required a solve"
        )
        self._m_corrections = self.metrics.counter(
            "cache_corrections_total",
            "Pending entries re-certified by incremental correction",
        )
        self._m_stale = self.metrics.counter(
            "cache_stale_corrections_total",
            "Corrections discarded because a newer delta superseded them",
        )
        self._m_evictions = self.metrics.counter(
            "cache_evictions_total", "Entries dropped (LRU or invalidation)"
        )
        occupancy = self.metrics.gauge(
            "cache_entries", "Resident cache entries"
        )
        occupancy.set_function(self.__len__)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self, digest: str, *, mutation: int, tol: float
    ) -> tuple[str, CacheEntry | None]:
        """Classify ``digest`` for a request at ``(mutation, tol)``.

        Returns ``("hit", entry)`` for a servable certified entry,
        ``("pending", entry)`` for a pre-delta entry awaiting incremental
        correction (still at the post-delta mutation count), and
        ``("miss", None)`` otherwise.  An entry from a *different* graph
        version with no pending correction — the graph mutated behind
        the service's back — is evicted on sight; an entry that merely
        fails the tolerance gate is left in place (it still serves
        looser requests) and the miss's fresh solve will overwrite it.

        A ``"pending"`` caller that goes on to correct the entry must
        capture ``entry.pending`` under this call and pass it back to
        :meth:`resolve_pending` as the token.
        """
        with self._lock:
            self._m_lookups.inc()
            entry = self._entries.get(digest)
            if entry is None:
                self._m_misses.inc()
                return "miss", None
            if entry.mutation != mutation:
                # Mutated outside the service's apply_delta path: the
                # entry has no correction route, so it can never serve
                # again.
                self._evict(digest)
                self._m_misses.inc()
                return "miss", None
            if entry.tol > tol * (1.0 + _TOL_SLACK):
                self._m_misses.inc()
                return "miss", None
            self._entries.move_to_end(digest)
            if entry.pending is not None:
                return "pending", entry
            entry.hits += 1
            self._m_hits.inc()
            return "hit", entry

    def peek(self, digest: str, *, mutation: int, tol: float) -> str:
        """Classify like :meth:`lookup` without counters, LRU or eviction.

        The dry-run used by :meth:`~repro.serving.RankingService.plan`.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if (
                entry is None
                or entry.mutation != mutation
                or entry.tol > tol * (1.0 + _TOL_SLACK)
            ):
                return "miss"
            return "pending" if entry.pending is not None else "hit"

    def store(
        self,
        digest: str,
        *,
        scores: NodeScores,
        tol: float,
        mutation: int,
        request: RankRequest,
        teleport: tuple[np.ndarray, np.ndarray] | None,
    ) -> CacheEntry:
        """Insert (or overwrite) the certified answer for ``digest``."""
        entry = CacheEntry(
            scores=scores,
            tol=float(tol),
            mutation=int(mutation),
            request=request,
            teleport=teleport,
        )
        with self._lock:
            if digest in self._entries:
                del self._entries[digest]
            self._entries[digest] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._m_evictions.inc()
            return entry

    # ------------------------------------------------------------------
    # delta lifecycle
    # ------------------------------------------------------------------
    def live_entries(self) -> list[tuple[str, CacheEntry]]:
        """Digest/entry pairs eligible for baseline capture (not pending)."""
        with self._lock:
            return [
                (digest, entry)
                for digest, entry in self._entries.items()
                if entry.pending is None
            ]

    def pending_digests(self) -> list[str]:
        """Digests still awaiting correction from an earlier delta."""
        with self._lock:
            return [
                digest
                for digest, entry in self._entries.items()
                if entry.pending is not None
            ]

    def mark_pending(
        self, digest: str, token: object, *, mutation: int
    ) -> None:
        """Flag ``digest`` as awaiting correction at graph version ``mutation``.

        ``token`` is whatever the service needs to derive the correction
        later — in practice a reference to the entry's *pre-delta*
        operator bundle, from which the baseline residual (the part the
        incremental solver freezes as dust; see ``linalg/incremental.py``)
        is computed lazily on first post-delta access.  The token's
        identity also guards the correction lifecycle: an in-flight
        correction holding the *previous* token (or none) can no longer
        resolve into this entry once it is re-marked.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:  # pragma: no cover - defensive
                return
            entry.pending = token
            entry.mutation = int(mutation)

    def resolve_pending(
        self,
        digest: str,
        *,
        scores: NodeScores,
        tol: float,
        mutation: int,
        token: object | None = None,
    ) -> tuple[str, CacheEntry | None]:
        """Land a correction computed for the pending marker ``token``.

        The atomic commit point of the correction lifecycle.  Returns a
        ``(state, entry)`` pair:

        * ``("resolved", entry)`` — ``token`` is the entry's current
          pending marker (or ``token is None``, the pre-concurrency
          trusting form): the corrected answer replaces the entry and it
          is re-certified at ``mutation``.
        * ``("already", entry)`` — the entry is no longer pending but
          sits at the same ``mutation`` the correction targeted: an
          identical concurrent correction (or a fresh solve) landed
          first.  Idempotent — nothing changes, the resident answer is
          equally certified and the caller may serve its own.
        * ``("stale", None)`` — the entry vanished, was re-marked by a
          newer delta, or moved to a different mutation while the
          correction solved.  The corrected answer no longer describes
          the current graph: it is **not** stored and any conflicting
          entry is evicted (never served stale).  The caller must
          re-plan the request.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return "stale", None
            if entry.pending is None:
                if entry.mutation == int(mutation):
                    return "already", entry
                return "stale", None
            if token is not None and entry.pending is not token:
                # A newer delta re-marked the entry while this correction
                # solved: its answer belongs to a superseded graph
                # version, and the entry's retained scores were already
                # consumed by that re-mark's capture assumptions — drop
                # both rather than risk serving either.
                self._evict(digest)
                self._m_stale.inc()
                return "stale", None
            entry.scores = scores
            entry.tol = float(tol)
            entry.mutation = int(mutation)
            entry.pending = None
            self._m_corrections.inc()
            self._entries.move_to_end(digest)
            return "resolved", entry

    def evict(self, digest: str) -> None:
        """Drop one entry (counted in the eviction stats)."""
        with self._lock:
            if digest in self._entries:
                self._evict(digest)

    def evict_all(self) -> int:
        """Drop every entry (de-localised delta / external mutation path)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self._m_evictions.inc(dropped)
            return dropped

    def _evict(self, digest: str) -> None:
        del self._entries[digest]
        self._m_evictions.inc()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hit/miss/correction/eviction counters plus occupancy.

        A backwards-compatible view over the telemetry registry — the
        same numbers the Prometheus/JSON exporters publish.
        """
        lookups = int(self._m_lookups.value())
        hits = int(self._m_hits.value())
        with self._lock:
            entries = len(self._entries)
            pending = sum(
                1
                for entry in self._entries.values()
                if entry.pending is not None
            )
        return {
            "capacity": self.capacity,
            "entries": entries,
            "pending": pending,
            "lookups": lookups,
            "hits": hits,
            "misses": int(self._m_misses.value()),
            "corrections": int(self._m_corrections.value()),
            "stale_corrections": int(self._m_stale.value()),
            "evictions": int(self._m_evictions.value()),
            "hit_rate": hits / lookups if lookups else 0.0,
        }
