"""Ranking service layer: query planning, microbatching, result caching.

The first layer of the library that owns *requests* rather than solves
— the ROADMAP's "serve heavy traffic" step.  :class:`RankingService` is
the front door; :mod:`~repro.serving.planner`,
:mod:`~repro.serving.coalescer` and :mod:`~repro.serving.cache` are its
injectable components.  See ``docs/serving.md`` for the serving
contract.
"""

from repro.serving.cache import CacheEntry, ResultCache
from repro.serving.coalescer import CoalescerTicket, MicrobatchCoalescer
from repro.serving.planner import (
    METHODS,
    STRATEGIES,
    CanonicalQuery,
    QueryPlan,
    QueryPlanner,
    RankRequest,
    canonical_query,
)
from repro.serving.service import RankingService, ServedResult, ServingTicket

__all__ = [
    "METHODS",
    "STRATEGIES",
    "CacheEntry",
    "CanonicalQuery",
    "CoalescerTicket",
    "MicrobatchCoalescer",
    "QueryPlan",
    "QueryPlanner",
    "RankRequest",
    "RankingService",
    "ResultCache",
    "ServedResult",
    "ServingTicket",
    "canonical_query",
]
