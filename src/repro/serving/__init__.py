"""Ranking service layer: query planning, microbatching, result caching.

The first layer of the library that owns *requests* rather than solves
— the ROADMAP's "serve heavy traffic" step.  :class:`RankingService` is
the front door; :mod:`~repro.serving.planner`,
:mod:`~repro.serving.coalescer` and :mod:`~repro.serving.cache` are its
injectable components.  :class:`ServingFront` puts a concurrent request
path — bounded admission queue, worker pool, flush timer — in front of
the (thread-safe) service.  See ``docs/serving.md`` for the serving and
concurrency contracts.

Every component records into one shared
:class:`~repro.telemetry.metrics.MetricsRegistry` (reachable as
``service.telemetry``); pass ``tracing=True`` to the service to sample
per-request traces — see ``docs/observability.md``.
"""

from repro.serving.admission import AdmissionController
from repro.serving.cache import CacheEntry, ResultCache
from repro.serving.coalescer import CoalescerTicket, MicrobatchCoalescer
from repro.serving.front import FrontTicket, ServingFront
from repro.serving.latency import LatencyRecorder
from repro.serving.planner import (
    METHODS,
    STRATEGIES,
    CanonicalQuery,
    QueryPlan,
    QueryPlanner,
    RankRequest,
    canonical_query,
)
from repro.serving.service import RankingService, ServedResult, ServingTicket
from repro.serving.sync import ReadWriteLock

__all__ = [
    "METHODS",
    "STRATEGIES",
    "AdmissionController",
    "CacheEntry",
    "CanonicalQuery",
    "CoalescerTicket",
    "FrontTicket",
    "LatencyRecorder",
    "MicrobatchCoalescer",
    "QueryPlan",
    "QueryPlanner",
    "RankRequest",
    "RankingService",
    "ResultCache",
    "ServedResult",
    "ServingFront",
    "ServingTicket",
    "canonical_query",
]
