"""The ranking service façade: one front door for ranking traffic.

:class:`RankingService` is the first layer of the library that owns
*requests* rather than solves.  It wires the serving pieces together —
:class:`~repro.serving.planner.QueryPlanner` (strategy choice),
:class:`~repro.serving.coalescer.MicrobatchCoalescer` (pooled batched
solves) and :class:`~repro.serving.cache.ResultCache` (delta-aware
result reuse) — over the cached-operator compute core built in the
earlier layers:

* :meth:`RankingService.rank` answers one request; :meth:`rank_many`
  answers a burst, coalescing the pooled ones into shared batched
  blocks; :meth:`submit` exposes the underlying ticket interface for
  callers that interleave submission and consumption.
* :meth:`RankingService.apply_delta` is the **one mutation door** for a
  served graph: it applies the :class:`~repro.graph.delta.GraphDelta`
  through the graph's delta-aware matrix refresh and, for localized
  deltas, captures each cached answer's baseline residual against the
  still-cached pre-delta operator so the cache can *correct* entries by
  residual push on next access instead of evicting them.
* :meth:`RankingService.stats` reports the serving health: plan mix,
  cache hit rate and corrections, microbatch occupancy, delta counts,
  and per-strategy observed latencies.

Every answer the service returns — cached, coalesced, pushed or
incrementally corrected — carries the same solver-tolerance certificate
as a cold solve of the same request (see ``docs/serving.md`` for the
exact contract).

Thread safety
-------------
The service is safe to drive from many threads (the
:class:`~repro.serving.front.ServingFront` worker pool does exactly
that).  The concurrency model is a **readers/writer barrier** over the
graph plus small per-component locks:

* every solve path — :meth:`submit`, :meth:`rank`, ticket resolution,
  :meth:`poll` — holds the shared (read) side of a
  :class:`~repro.serving.sync.ReadWriteLock`, because solves read
  operator bundles that the delta path patches *in place*;
* :meth:`apply_delta` holds the exclusive (write) side: it waits for
  in-flight solves to drain and blocks new ones while the graph, the
  operator caches and the result cache move to the next version
  together.  Draining outstanding microbatches from inside the write
  hold re-enters the read side, which is a no-op for the writer thread.

Lock ordering (outermost first): RW barrier → service bookkeeping lock
→ leaf locks (cache, coalescer, graph matrix cache).  The coalescer's
condition variable is never held while acquiring the bookkeeping lock,
and vice versa — service code calls into the coalescer only outside its
own bookkeeping lock.
"""

from __future__ import annotations

import pickle
import threading
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.results import NodeScores
from repro.errors import ParameterError, ReproError
from repro.graph.base import BaseGraph, Node
from repro.graph.delta import GraphDelta
from repro.graph.persist import DeltaLog, load_snapshot, save_snapshot
from repro.linalg.incremental import incremental_update, residual_vector
from repro.linalg.push import forward_push
from repro.linalg.solvers import _validate_common
from repro.serving.cache import CacheEntry, ResultCache
from repro.serving.coalescer import CoalescerTicket, MicrobatchCoalescer
from repro.serving.latency import LatencyRecorder
from repro.serving.planner import (
    CanonicalQuery,
    QueryPlan,
    QueryPlanner,
    RankRequest,
    canonical_query,
    dense_teleport,
)
from repro.serving.sync import ReadWriteLock
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import (
    Tracer,
    activate_span,
    active_span,
    annotate,
    child_span,
)

__all__ = ["RankingService", "ServedResult", "ServingTicket"]


@dataclass(frozen=True)
class _PendingCorrection:
    """Correction token: the pre-delta operator an entry was solved on.

    Holding the bundle (not a precomputed residual) keeps
    :meth:`RankingService.apply_delta` at O(1) per cached entry; the
    bundle is immutable, so the baseline residual derived from it at
    correction time equals the one a pre-delta capture would have
    produced.  Its memory is one retained matrix per delta layer per
    transition group — released as entries are corrected or evicted.

    The token's *identity* also guards the correction commit: the cache
    stores a corrected answer only when the entry is still pending on
    this very token (see :meth:`ResultCache.resolve_pending`), so a
    delta landing between solve and commit can never be papered over.
    """

    old_bundle: object


@dataclass(frozen=True)
class ServedResult:
    """One served answer: scores plus the plan that produced them."""

    scores: NodeScores
    plan: QueryPlan
    request: RankRequest

    @property
    def topk(self) -> list[tuple[Node, float]] | None:
        """The request's top-``k`` slice of the certified vector."""
        if self.request.top_k is None:
            return None
        return self.scores.top(self.request.top_k)


class ServingTicket:
    """Deferred handle for a submitted request.

    Cached / pushed / incrementally-corrected requests resolve at
    submission time; coalesced (``"batch"``) requests resolve when their
    microbatch flushes — reading :meth:`result` flushes on demand, so a
    ticket can always be consumed immediately.

    Thread-safe: any number of threads may read :meth:`result`
    concurrently (e.g. a client thread racing the mutation path's
    pre-delta drain).  Resolution is idempotent — the coalescer hands
    every resolver the same solved column — and exactly one computed
    answer is committed; later readers observe it.
    """

    __slots__ = ("plan", "request", "_result", "_resolver", "_cond")

    def __init__(
        self,
        request: RankRequest,
        plan: QueryPlan,
        *,
        result: ServedResult | None = None,
        resolver=None,
    ) -> None:
        self.request = request
        self.plan = plan
        self._result = result
        self._resolver = resolver
        self._cond = threading.Condition()

    @property
    def done(self) -> bool:
        with self._cond:
            return self._result is not None

    def _set_resolver(self, resolver) -> None:
        with self._cond:
            self._resolver = resolver
            self._cond.notify_all()

    def result(self) -> ServedResult:
        """The served answer (resolving the pending microbatch if needed)."""
        with self._cond:
            # A shared (deduplicated) ticket can be handed out in the
            # narrow window before its submitter attaches the resolver;
            # wait for one rather than failing.
            while self._result is None and self._resolver is None:
                self._cond.wait()
            if self._result is not None:
                return self._result
            resolver = self._resolver
        value = resolver()
        with self._cond:
            if self._result is None:
                self._result = value
                self._resolver = None
            return self._result


class RankingService:
    """Serve ranking queries over one graph with planning, batching, caching.

    Parameters
    ----------
    graph:
        The served graph.  Mutations must flow through
        :meth:`apply_delta`; a mutation behind the service's back is
        detected by the mutation counter and simply evicts affected
        cache entries (never serves stale answers).
    planner / cache / coalescer:
        Injectable components; defaults are constructed from the scalar
        options below.  The default planner is wired to the service's
        latency recorder so its push/batch decision boundary self-tunes
        under traffic; an injected planner without a recorder gets the
        service's recorder attached.
    window:
        Microbatch flush threshold (see
        :class:`~repro.serving.coalescer.MicrobatchCoalescer`).
    max_age / backlog / clock:
        Forwarded to the default coalescer: the age bound on underfull
        windows (drained by :meth:`poll`), the total-pending-columns
        flush trigger, and the injectable monotonic clock that makes
        age-based behaviour deterministic in tests.  Ignored (with an
        error) when an explicit ``coalescer`` is injected — configure
        that coalescer directly instead.
    cache_capacity:
        Result-cache LRU bound.
    precision:
        Batched-solve precision (``"double"`` or the float32-sweep
        ``"mixed"`` serving mode).
    localized_fraction:
        A delta naming at most this fraction of the nodes is treated as
        localized: cached entries are corrected by residual push instead
        of evicted.  Larger deltas evict (a correction whose support is
        a sizeable fraction of the graph contracts no faster than the
        warm re-solve it would fall back to).
    max_iter:
        Iteration budget forwarded to every solver.
    sharding:
        Serve through block-partitioned operators
        (:func:`~repro.core.d2pr.d2pr_sharded_operator`): global
        rankings run the sharded block-relaxation solver, and
        push-eligible queries whose seeds land in one shard run
        **shard-local push** against that shard's small diagonal block —
        certified by the escaped-mass bound, falling back to a global
        push when the certificate fails (counted in :meth:`stats`).
        Graphs below ``shard_size_floor`` nodes serve exactly as with
        ``sharding=False``.
    n_shards / shard_workers / shard_method / shard_size_floor:
        Shard count, worker-pool size (``None``/``1`` = serial),
        partitioning method and the size floor below which sharding is
        bypassed (``None`` = the library default).
    delta_log:
        Optional :class:`~repro.graph.persist.DeltaLog` the service tees
        every applied delta into (after the graph commit), enabling
        :meth:`warm_start` recovery of mutations a checkpoint has not
        absorbed.  :meth:`checkpoint` arms one automatically.

    The service is a context manager: ``with RankingService(g) as svc:``
    releases sharding worker pools on exit (see :meth:`close`).
    """

    def __init__(
        self,
        graph: BaseGraph,
        *,
        planner: QueryPlanner | None = None,
        cache: ResultCache | None = None,
        coalescer: MicrobatchCoalescer | None = None,
        window: int = 16,
        max_age: float | None = None,
        backlog: int | None = None,
        clock=None,
        cache_capacity: int = 128,
        precision: str = "double",
        localized_fraction: float = 0.05,
        max_iter: int = 1000,
        clamp_min: float | None = None,
        sharding: bool = False,
        n_shards: int = 8,
        shard_workers: int | None = None,
        shard_method: str = "auto",
        shard_size_floor: int | None = None,
        delta_log: DeltaLog | None = None,
        compact_threshold: float | None = None,
        telemetry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        tracing: bool = False,
        trace_sample: int = 1,
        trace_capacity: int = 256,
    ) -> None:
        graph.require_nonempty()
        if not 0.0 <= localized_fraction <= 1.0:
            raise ParameterError(
                f"localized_fraction must be in [0, 1], "
                f"got {localized_fraction}"
            )
        if compact_threshold is not None and not (
            np.isfinite(compact_threshold) and compact_threshold > 0.0
        ):
            raise ParameterError(
                f"compact_threshold must be positive, "
                f"got {compact_threshold}"
            )
        if n_shards < 1:
            raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
        if coalescer is not None and (
            max_age is not None or backlog is not None or clock is not None
        ):
            raise ParameterError(
                "max_age/backlog/clock configure the default coalescer; "
                "with an injected coalescer, set them on it directly"
            )
        self._graph = graph
        # One telemetry registry per serving stack: every component
        # below registers its families here, so a single snapshot /
        # Prometheus export covers the whole request path.
        self._telemetry = (
            telemetry if telemetry is not None else MetricsRegistry()
        )
        if tracer is not None:
            self._tracer: Tracer | None = tracer
        elif tracing:
            self._tracer = Tracer(
                sample_every=trace_sample,
                capacity=trace_capacity,
                metrics=self._telemetry,
            )
        else:
            self._tracer = None
        self._planner = planner or QueryPlanner()
        if self._planner.latency is None:
            self._planner.latency = LatencyRecorder(metrics=self._telemetry)
        self._latency = self._planner.latency
        self._cache = cache or ResultCache(
            capacity=cache_capacity, metrics=self._telemetry
        )
        self._coalescer = coalescer or MicrobatchCoalescer(
            graph,
            window=window,
            precision=precision,
            max_iter=max_iter,
            clamp_min=clamp_min,
            max_age=max_age,
            backlog=backlog,
            clock=clock,
            metrics=self._telemetry,
        )
        self._clamp_min = clamp_min
        self._localized_fraction = localized_fraction
        self._max_iter = max_iter
        self._sharding = bool(sharding)
        self._n_shards = int(n_shards)
        self._shard_workers = shard_workers
        self._shard_method = shard_method
        self._shard_size_floor = shard_size_floor
        # Optional write-ahead tee: every delta committed through
        # apply_delta is appended here after the graph commit, so a
        # later warm_start(checkpoint) can replay exactly the mutations
        # the checkpoint has not yet absorbed.  checkpoint() arms one
        # automatically; passing it here re-arms an existing log.
        self._delta_log = delta_log
        # Log-compaction policy: once a checkpoint exists, apply_delta
        # auto-checkpoints (truncating the log) whenever the log grows
        # past compact_threshold × the snapshot's byte size.
        self._compact_threshold = (
            float(compact_threshold) if compact_threshold is not None
            else None
        )
        self._checkpoint_path: Path | None = None
        self._snapshot_bytes: int | None = None
        # Readers/writer barrier: solves share, apply_delta excludes
        # (delta refresh patches cached operator bundles in place).
        self._rw = ReadWriteLock()
        # Bookkeeping lock (leaf relative to the RW barrier): counters,
        # the inflight-dedup table, outstanding tickets, shard-op memo.
        self._lock = threading.RLock()
        # Transition group -> ShardedOperator (or None when the graph is
        # below the size floor).  Mirrors the graph-level cache so the
        # service can close stale operators on delta instead of leaving
        # worker pools to garbage collection.
        self._shard_ops: dict[tuple, object | None] = {}
        # Service counters live in the telemetry registry; each
        # increment is atomic under the counter family's own leaf lock
        # (no bare dict mutations — see docs/serving.md § Concurrency).
        self._m_requests = self._telemetry.counter(
            "serving_requests_total", "Requests submitted to the service"
        )
        self._m_plans = self._telemetry.counter(
            "serving_plans_total",
            "Planned requests by chosen strategy",
            labels=("strategy",),
        )
        self._m_deltas = self._telemetry.counter(
            "serving_deltas_total",
            "Graph deltas through apply_delta, by disposition",
            labels=("kind",),
        )
        self._m_shard = self._telemetry.counter(
            "serving_shard_events_total",
            "Shard-routing outcomes",
            labels=("event",),
        )
        self._outstanding: list[ServingTicket] = []
        # digest -> (tol, ticket) of not-yet-resolved batch submissions,
        # so identical queries in one burst share a single column.
        self._inflight: dict[str, tuple[float, ServingTicket]] = {}
        # Set by warm_start(): {"replayed": ..., "seeded": ...}.
        self._warm_started: dict | None = None

    @property
    def graph(self) -> BaseGraph:
        """The served graph (mutate only through :meth:`apply_delta`)."""
        return self._graph

    @property
    def precision(self) -> str:
        """The batched-solve precision the coalescer serves under."""
        return self._coalescer.precision

    @property
    def coalescer(self) -> MicrobatchCoalescer:
        """The microbatch coalescer (the front reads its age bound)."""
        return self._coalescer

    @property
    def telemetry(self) -> MetricsRegistry:
        """The metrics registry every serving component records into."""
        return self._telemetry

    @property
    def tracer(self) -> Tracer | None:
        """The request tracer, or ``None`` when tracing is off."""
        return self._tracer

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def _coerce(self, request, kwargs) -> RankRequest:
        if request is None:
            return RankRequest(**kwargs)
        if kwargs:
            raise ParameterError(
                "pass either a RankRequest or keyword fields, not both"
            )
        if not isinstance(request, RankRequest):
            raise ParameterError(
                f"expected a RankRequest, got {type(request).__name__}"
            )
        return request

    def plan(self, request: RankRequest | None = None, **kwargs) -> QueryPlan:
        """Dry-run planning: explain how a request *would* be served.

        Consults the cache without counting a lookup or touching LRU
        order, and executes nothing.
        """
        request = self._coerce(request, kwargs)
        with self._rw.read():
            query = canonical_query(self._graph, request)
            state = self._cache.peek(
                query.digest,
                mutation=self._graph.mutation_count,
                tol=request.tol,
            )
            return self._planner.plan(
                self._graph,
                query,
                cache_state=None if state == "miss" else state,
                shard_state=self._sharded(query.group_key),
            )

    def submit(
        self, request: RankRequest | None = None, **kwargs
    ) -> ServingTicket:
        """Plan and dispatch one request, returning its ticket.

        ``"batch"``-planned requests are filed with the microbatch
        coalescer and resolve when their window flushes (or on first
        :meth:`ServingTicket.result` read); every other strategy
        resolves immediately.  Observed latencies are recorded per
        strategy and fed back into the planner's cost model.

        With tracing configured (``tracing=True`` / an injected
        :class:`~repro.telemetry.trace.Tracer`) and this request
        sampled, the whole submission runs under a ``rank`` trace whose
        spans cover planning, the solve and the cache commit; a caller
        that already holds an active span (the serving front) keeps it —
        the service then adds its spans to the caller's trace instead of
        starting its own.
        """
        request = self._coerce(request, kwargs)
        trace = None
        if self._tracer is not None and active_span() is None:
            trace = self._tracer.start("rank", method=request.method)
        if trace is None:
            return self._submit_inner(request, None)
        with trace.activate():
            try:
                ticket = self._submit_inner(request, trace)
            except BaseException as exc:
                trace.root.annotate(error=type(exc).__name__)
                trace.finish()
                raise
        if ticket.done:
            # Synchronous strategies completed inside the activation;
            # batch tickets carry the trace and finish at resolution.
            trace.finish()
        return ticket

    def _submit_inner(
        self, request: RankRequest, trace
    ) -> ServingTicket:
        with self._rw.read():
            with child_span("plan") as span:
                query = canonical_query(self._graph, request)
                state, entry = self._cache.lookup(
                    query.digest,
                    mutation=self._graph.mutation_count,
                    tol=request.tol,
                )
                plan = self._planner.plan(
                    self._graph,
                    query,
                    cache_state=None if state == "miss" else state,
                    shard_state=self._sharded(query.group_key),
                )
                if span is not None:
                    span.annotate(
                        strategy=plan.strategy,
                        reason=plan.reason,
                        cache_state=state,
                    )
            self._m_requests.inc()
            self._m_plans.inc(strategy=plan.strategy)

            if plan.strategy == "batch":
                return self._submit_batch(query, plan, trace=trace)
            start = perf_counter()
            with child_span("solve", strategy=plan.strategy) as span:
                if plan.strategy == "cached":
                    scores = entry.scores
                    if span is not None:
                        span.annotate(cache="hit")
                elif plan.strategy == "incremental":
                    scores = self._correct_entry(query.digest, entry)
                elif plan.strategy == "spectral":
                    scores = self._serve_spectral(query)
                elif plan.strategy == "shard_push":
                    scores = self._serve_shard_push(query, plan)
                elif plan.strategy == "push":
                    scores = self._serve_push(query)
                elif plan.strategy == "sharded":
                    scores = self._serve_sharded(query)
                else:  # pragma: no cover - planner strategies are closed
                    raise ReproError(f"unknown strategy {plan.strategy!r}")
            self._planner.observe(plan.strategy, perf_counter() - start)
            return ServingTicket(
                request, plan, result=ServedResult(scores, plan, request)
            )

    def rank(
        self, request: RankRequest | None = None, **kwargs
    ) -> ServedResult:
        """Answer one request synchronously."""
        return self.submit(request, **kwargs).result()

    def rank_many(
        self, requests: Sequence[RankRequest]
    ) -> list[ServedResult]:
        """Answer a burst of requests, coalescing the pooled ones.

        All requests are submitted before any result is read, so
        ``"batch"``-planned requests against one transition fill shared
        microbatch windows (the coalescer auto-flushes full windows and
        the final reads drain partial ones).
        """
        tickets = [self.submit(request) for request in requests]
        return [ticket.result() for ticket in tickets]

    def poll(self) -> int:
        """Flush microbatch groups whose oldest column exceeds ``max_age``.

        The serving front's timer thread calls this so latency-bounded
        coalescing works without any client blocking in
        :meth:`ServingTicket.result`.  Returns the number of groups
        flushed; a service without ``max_age`` is a no-op.
        """
        with self._rw.read():
            return self._coalescer.poll()

    # ------------------------------------------------------------------
    # strategy execution
    # ------------------------------------------------------------------
    def _bundle(self, group_key: tuple):
        from repro.methods import operator_for  # local: avoids cycle

        return operator_for(
            self._graph, group_key, clamp_min=self._clamp_min
        )

    def _sharded(self, group_key: tuple):
        """The block-partitioned operator for ``group_key``, or ``None``.

        ``None`` when sharding is off or the graph sits below the size
        floor — the planner then never chooses a shard strategy, so the
        service degrades to exactly the unsharded behaviour.  Built
        operators are memoised both on the graph's mutation-aware cache
        (via :func:`~repro.core.d2pr.d2pr_sharded_operator`) and in a
        service-side table, so :meth:`apply_delta` can close stale
        worker pools instead of leaving them to garbage collection.
        The build runs under the bookkeeping lock so concurrent first
        requests cannot race two worker pools into existence.
        """
        if not self._sharding:
            return None
        with self._lock:
            if group_key in self._shard_ops:
                return self._shard_ops[group_key]
            from repro.methods import family_method, sharded_operator_for
            from repro.shard.operator import DEFAULT_SIZE_FLOOR

            floor = (
                DEFAULT_SIZE_FLOOR
                if self._shard_size_floor is None
                else self._shard_size_floor
            )
            if (
                self._graph.number_of_nodes < floor
                or not family_method(group_key).supports_sharding
            ):
                sharded = None
            else:
                sharded = sharded_operator_for(
                    self._graph,
                    group_key,
                    clamp_min=self._clamp_min,
                    n_shards=self._n_shards,
                    method=self._shard_method,
                    size_floor=floor,
                )
            self._shard_ops[group_key] = sharded
            return sharded

    @staticmethod
    def _sparse_pair(
        query: CanonicalQuery,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The cache-resident form of a query's teleport (O(seeds))."""
        if query.seed_idx is None:
            return None
        return (query.seed_idx, query.seed_weights)

    def _dense_teleport(
        self, pair: tuple[np.ndarray, np.ndarray] | None
    ) -> np.ndarray | None:
        if pair is None:
            return None
        return dense_teleport(self._graph.number_of_nodes, pair[0], pair[1])

    def _commit(
        self, query: CanonicalQuery, scores: NodeScores, *, mutation=None
    ):
        """Store a fresh answer under a ``cache.commit`` span."""
        request = query.request
        with child_span("cache.commit") as span:
            entry = self._cache.store(
                query.digest,
                scores=scores,
                tol=request.tol,
                mutation=(
                    self._graph.mutation_count
                    if mutation is None
                    else mutation
                ),
                request=request,
                teleport=self._sparse_pair(query),
            )
            if span is not None:
                span.annotate(outcome="stored")
        return entry

    def _serve_spectral(self, query: CanonicalQuery) -> NodeScores:
        """Direct solve for non-batchable (adjacency power-method) methods.

        The answer is cached like any other: the method's recorded
        residual history is its certificate (eigen-residual for
        eigenvector/HITS, successive-L1 for Katz), and because spectral
        methods declare ``supports_incremental=False`` the entry is
        evicted — never residual-corrected — when a delta lands.
        """
        from repro.methods import resolve  # local: avoids cycle

        request = query.request
        method = resolve(request.method)
        result = method.solve(
            self._graph,
            query.group_key,
            alpha=request.alpha,
            teleport=query.dense_teleport(),
            tol=request.tol,
            max_iter=self._max_iter,
            clamp_min=self._clamp_min,
        )
        scores = NodeScores(self._graph, result.scores, result)
        self._commit(query, scores)
        return scores

    def _serve_push(self, query: CanonicalQuery) -> NodeScores:
        request = query.request
        bundle = self._bundle(query.group_key)
        result = forward_push(
            None,
            (query.seed_idx, query.seed_weights),
            alpha=request.alpha,
            tol=request.tol,
            max_iter=self._max_iter,
            dangling=request.dangling,
            operator=bundle,
        )
        scores = NodeScores(self._graph, result.scores, result)
        self._commit(query, scores)
        return scores

    def _serve_shard_push(
        self, query: CanonicalQuery, plan: QueryPlan
    ) -> NodeScores:
        """Serve a single-shard localized query by shard-local push.

        Runs forward push on the shard's ghost-augmented local system
        (at a tolerance split so the certificate below can still pass)
        and accepts the answer only when

            local residual + 3 · ghost mass <= tol

        — the ghost's settled mass bounds the walk's out-of-shard
        probability, and each unit of escaped mass costs at most one
        unit of un-returned score, one unit of unrepresented off-shard
        score and one unit of renormalisation shift.  On certificate
        failure (or a local solver fallback) the query re-runs as a
        plain global push — never wrong, only slower — and the fallback
        is counted in :meth:`stats`.
        """
        request = query.request
        sharded = self._sharded(query.group_key)
        shard = int(plan.estimates["shard"])
        splan = sharded.plan
        lo = int(splan.bounds[shard])
        hi = int(splan.bounds[shard + 1])
        local_bundle, ghost = sharded.push_context(shard)
        local_idx = splan.ranks[query.seed_idx] - lo
        result = forward_push(
            None,
            (local_idx, query.seed_weights),
            alpha=request.alpha,
            tol=request.tol / 4.0,
            max_iter=self._max_iter,
            dangling="self",
            operator=local_bundle,
        )
        # The local solve is certified by its own residual whether push
        # stayed localized or de-localized into its internal power
        # fallback — both end below the local tolerance; only the
        # escaped (ghost) mass separates the local from the global
        # answer.
        residual = float(result.residuals[-1]) if result.residuals else 0.0
        ghost_mass = float(result.scores[ghost])
        certified = residual + 3.0 * ghost_mass <= request.tol
        if not certified:
            self._m_shard.inc(event="shard_push_fallback")
            annotate(shard_push="fallback", ghost_mass=ghost_mass)
            return self._serve_push(query)
        self._m_shard.inc(event="shard_push_local")
        annotate(shard_push="local", shard=shard, ghost_mass=ghost_mass)
        full = np.zeros(self._graph.number_of_nodes)
        full[splan.order[lo:hi]] = result.scores[:ghost]
        total = full.sum()
        if total > 0.0:
            full /= total
        scores = NodeScores(self._graph, full, result)
        self._commit(query, scores)
        return scores

    def _serve_sharded(self, query: CanonicalQuery) -> NodeScores:
        """Serve a global ranking through the sharded block solver."""
        from repro.shard.solver import sharded_solve

        request = query.request
        sharded = self._sharded(query.group_key)
        result = sharded_solve(
            alpha=request.alpha,
            teleport=self._dense_teleport(self._sparse_pair(query)),
            dangling=request.dangling,
            tol=request.tol,
            max_iter=self._max_iter,
            operator=self._bundle(query.group_key),
            sharded=sharded,
            workers=self._shard_workers,
            precision=self.precision,
        )
        self._m_shard.inc(event="sharded_solves")
        scores = NodeScores(self._graph, result.scores, result)
        self._commit(query, scores)
        return scores

    def _correct_entry(self, digest: str, entry: CacheEntry) -> NodeScores:
        request = entry.request
        bundle = self._bundle(request.group_key)
        teleport = self._dense_teleport(entry.teleport)
        # The baseline residual — the previous solve's own truncation
        # dust, frozen by the incremental solver — is derived lazily
        # here from the pre-delta operator retained at delta time, so
        # apply_delta stays O(1) per cached entry.
        pending = entry.pending
        baseline = None
        if isinstance(pending, _PendingCorrection):
            values = entry.scores.values
            total = values.sum()
            _, t_norm = _validate_common(
                None, request.alpha, teleport, pending.old_bundle
            )
            if total > 0.0:
                baseline = residual_vector(
                    pending.old_bundle,
                    values / total,
                    t_norm,
                    request.alpha,
                    request.dangling,
                )
        result = incremental_update(
            None,
            entry.scores.values,
            alpha=request.alpha,
            teleport=teleport,
            dangling=request.dangling,
            tol=entry.tol,
            max_iter=self._max_iter,
            operator=bundle,
            baseline_residual=baseline,
        )
        scores = NodeScores(self._graph, result.scores, result)
        # Token-identity commit: stores only if the entry is still
        # pending on *this* correction token.  The RW barrier already
        # excludes a delta landing mid-correction, so in-service use
        # always resolves cleanly; the token guard is what makes
        # standalone/concurrent cache use safe, and on "stale" the
        # computed answer is still returned (it was solved against the
        # current graph under the read hold) — only caching is skipped.
        with child_span("cache.commit") as span:
            outcome, _resolved = self._cache.resolve_pending(
                digest,
                scores=scores,
                tol=entry.tol,
                mutation=self._graph.mutation_count,
                token=pending,
            )
            if span is not None:
                span.annotate(outcome=outcome)
        return scores

    def _submit_batch(
        self, query: CanonicalQuery, plan: QueryPlan, trace=None
    ) -> ServingTicket:
        request = query.request
        ticket = ServingTicket(request, plan, resolver=None)
        # The batch resolves on another thread (or later on this one);
        # capture the submitting request's span so the resolver can
        # re-enter it there, and the owned trace so it can finish it.
        parent = active_span()
        with self._lock:
            inflight = self._inflight.get(query.digest)
            if inflight is not None and inflight[0] <= request.tol:
                # An identical (or stricter) query is already filed in
                # this burst: share its column instead of solving a
                # redundant one.  The wrapper re-labels the shared
                # answer with this request's own plan/top_k.
                shared = inflight[1]

                def resolve_shared() -> ServedResult:
                    with activate_span(parent):
                        with child_span(
                            "solve", strategy="batch"
                        ) as span:
                            result = shared.result()
                            if span is not None:
                                span.annotate(deduplicated=True)
                    if trace is not None:
                        trace.finish()
                    return ServedResult(result.scores, plan, request)

                ticket._set_resolver(resolve_shared)
                return ticket
            # Reserve the dedup slot before filing the column (outside
            # this lock), so a concurrent identical submission shares
            # this ticket instead of filing a duplicate.
            self._inflight[query.digest] = (request.tol, ticket)
            self._outstanding.append(ticket)
        cticket: CoalescerTicket = self._coalescer.submit(
            query.group_key,
            teleport=query.dense_teleport(),
            alpha=request.alpha,
            tol=request.tol,
        )

        def resolve() -> ServedResult:
            with self._rw.read():
                start = perf_counter()
                with activate_span(parent):
                    with child_span("solve", strategy="batch") as span:
                        result = cticket.result()
                        if span is not None:
                            meta = cticket.meta
                            if meta:
                                span.annotate(**{
                                    key: value
                                    for key, value in meta.items()
                                    if value is not None
                                })
                    scores = NodeScores(self._graph, result.scores, result)
                    # Certify at the version the column was *solved* at
                    # (the flush may long precede this read — and a
                    # mutation in between must not let pre-mutation
                    # scores masquerade as post-mutation answers).
                    self._commit(query, scores, mutation=cticket.mutation)
                self._planner.observe("batch", perf_counter() - start)
            with self._lock:
                # Identity-guarded: a later submission at a stricter tol
                # may have replaced this digest's inflight entry with
                # its own still-unresolved ticket, which must keep
                # deduping.
                current = self._inflight.get(query.digest)
                if current is not None and current[1] is ticket:
                    del self._inflight[query.digest]
                if ticket in self._outstanding:
                    self._outstanding.remove(ticket)
            if trace is not None:
                trace.finish()
            return ServedResult(scores, plan, request)

        ticket._set_resolver(resolve)
        return ticket

    def _drain(self) -> None:
        """Resolve every outstanding coalesced ticket (pre-delta barrier)."""
        while True:
            with self._lock:
                outstanding = list(self._outstanding)
            if not outstanding:
                break
            for ticket in outstanding:
                ticket.result()
        self._coalescer.flush()
        with self._lock:
            self._inflight.clear()

    # ------------------------------------------------------------------
    # streaming mutations
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> dict:
        """Apply a :class:`~repro.graph.delta.GraphDelta` through the service.

        The serving-layer mutation door: the exclusive side of the
        readers/writer barrier is taken (in-flight solves finish, new
        ones wait), outstanding microbatches are drained (their answers
        belong to the pre-delta graph and are cached as such), then, for
        a **localized** delta (touching at most ``localized_fraction``
        of the nodes), each live cached answer retains a reference to
        its still-cached pre-delta operator *before* the delta lands (an
        O(1) capture) — the next request for that answer derives its
        baseline residual from it and corrects by residual push at a
        fraction of a cold solve.  De-localised deltas evict the cache
        instead (classic semantics), and entries still pending from a
        previous delta are evicted rather than chained.  The delta
        itself goes through
        :meth:`~repro.graph.base.BaseGraph.apply_delta`, so the graph's
        cached matrices and operator bundles are surgically refreshed
        too.

        Raises exactly what ``graph.apply_delta`` raises (frozen graph,
        missing edges, bad indices); on any failure the graph and every
        cached answer are unchanged.  The frozen-graph check runs before
        outstanding microbatches are drained; a delta rejected by deeper
        validation (e.g. deleting a missing edge) may still have drained
        them first — the drained answers are valid pre-delta results and
        are cached as such, so no stale data can be served either way.
        Returns the graph-level delta stats.
        """
        if not isinstance(delta, GraphDelta):
            raise ParameterError(
                f"apply_delta expects a GraphDelta, got {type(delta).__name__}"
            )
        if delta.size == 0:
            return self._graph.apply_delta(delta)
        with self._rw.write():
            self._graph._check_mutable()  # fail before paying the drain
            self._drain()
            graph = self._graph
            n = graph.number_of_nodes
            touched = delta.endpoints()
            # Node inserts/deletes renumber (or resize) the score index
            # space, so no cached vector can be residual-corrected across
            # them — always take the evicting path.
            localized = not delta.has_node_ops and touched.size <= max(
                1.0, self._localized_fraction * n
            )

            prepared: list[tuple[str, _PendingCorrection]] = []
            stale: list[str] = []
            if localized:
                from repro.methods import resolve  # local: avoids cycle

                mutation = graph.mutation_count
                for digest, entry in self._cache.live_entries():
                    if entry.mutation != mutation:
                        stale.append(digest)
                        continue
                    # Residual correction assumes the stochastic fixed
                    # point; methods without it (spectral family) are
                    # evicted and re-solved on next access instead.
                    if not resolve(
                        entry.request.method
                    ).supports_incremental:
                        stale.append(digest)
                        continue
                    # O(1) per entry: retain the (still-cached,
                    # immutable) pre-delta bundle; the baseline residual
                    # is derived from it lazily when the entry is next
                    # requested.
                    prepared.append(
                        (
                            digest,
                            _PendingCorrection(
                                self._bundle(entry.request.group_key)
                            ),
                        )
                    )
                pending = self._cache.pending_digests()

            # Raises → nothing committed (and nothing logged: the graph
            # commit precedes the log tee inside apply_graph_delta).
            stats = graph.apply_delta(delta, log=self._delta_log)
            # The graph cache just dropped its shard plans and sharded
            # operators (unrecognised keys are never refreshed); close
            # the stale operators' worker pools now instead of waiting
            # for garbage collection to release their shared-memory
            # segments.
            with self._lock:
                shard_ops = list(self._shard_ops.values())
                self._shard_ops.clear()
            self._m_deltas.inc(kind="applied")
            self._m_deltas.inc(
                kind="localized" if localized else "evicting"
            )
            for sharded in shard_ops:
                if sharded is not None:
                    sharded.close()
            if localized:
                mutation = graph.mutation_count
                for digest in pending + stale:
                    self._cache.evict(digest)
                for digest, token in prepared:
                    self._cache.mark_pending(
                        digest, token, mutation=mutation
                    )
            else:
                self._cache.evict_all()
            # Log-compaction policy: still inside the write hold, so the
            # snapshot sees exactly the post-delta graph and no request
            # can slip between the delta and the truncation.
            due, _why = self._compaction_due()
            if due:
                self._checkpoint_locked(self._checkpoint_path)
                self._m_deltas.inc(kind="compactions")
            return stats

    # ------------------------------------------------------------------
    # persistence: checkpoint + warm restart
    # ------------------------------------------------------------------
    _CHECKPOINT_FORMAT = "repro-service-checkpoint"
    _CHECKPOINT_VERSION = 1

    def checkpoint(
        self, path: str | Path | None = None, *, auto: bool = False
    ) -> dict:
        """Persist the served graph and warm-start state under ``path``.

        Under the exclusive side of the readers/writer barrier (in-flight
        solves finish, outstanding microbatches drain), writes:

        * ``path/graph/`` — the graph snapshot
          (:func:`~repro.graph.persist.save_snapshot`);
        * ``path/service.pkl`` — the warm-start state: every certified
          current-version cache entry (digest, raw score vector, tol,
          request, sparse teleport) plus the transition group keys whose
          operators were built, so :meth:`warm_start` can rebuild them
          before traffic arrives;
        * ``path/deltas.log`` — an **armed, empty**
          :class:`~repro.graph.persist.DeltaLog`: the snapshot has
          absorbed everything logged so far (the log is truncated), and
          every delta applied after this checkpoint is teed into it, so
          a warm restart replays exactly the un-checkpointed tail.  A
          service constructed with its own ``delta_log`` keeps (and
          truncates) that log; its path is recorded in the state file.

        ``path`` may be omitted after the first checkpoint — the last
        checkpoint directory is reused.  With ``auto=True`` the
        checkpoint is **conditional**: it only runs when the armed
        delta log has grown past ``compact_threshold`` × the last
        snapshot's byte size (the log-compaction policy — the same
        check :meth:`apply_delta` performs automatically after every
        delta when ``compact_threshold`` is set), and the returned dict
        says whether it ran (``"compacted"``) and why not otherwise.

        Returns a summary dict (nodes, edges, cached entries, log path).
        """
        if path is None:
            path = self._checkpoint_path
            if path is None:
                raise ParameterError(
                    "no previous checkpoint to reuse; pass checkpoint(path)"
                )
        path = Path(path)
        with self._rw.write():
            if auto:
                due, why = self._compaction_due()
                if not due:
                    return {"compacted": False, "reason": why}
            summary = self._checkpoint_locked(path)
        if auto:
            summary["compacted"] = True
            self._m_deltas.inc(kind="compactions")
        return summary

    def _compaction_due(self) -> tuple[bool, str]:
        """Whether the armed log has outgrown the compaction threshold.

        Caller holds the write (or is otherwise exclusive); reads the
        log's on-disk payload size against ``compact_threshold`` × the
        last snapshot's byte size.
        """
        if self._compact_threshold is None:
            return False, "no compact_threshold configured"
        if self._delta_log is None:
            return False, "no delta log armed"
        if self._snapshot_bytes is None or self._checkpoint_path is None:
            return False, "no checkpoint written yet"
        log_bytes = self._delta_log.size
        budget = self._compact_threshold * self._snapshot_bytes
        if log_bytes <= budget:
            return False, (
                f"log {log_bytes}B within budget {budget:.0f}B "
                f"({self._compact_threshold:g} of snapshot "
                f"{self._snapshot_bytes}B)"
            )
        return True, (
            f"log {log_bytes}B exceeds budget {budget:.0f}B"
        )

    def _checkpoint_locked(self, path: Path) -> dict:
        """Checkpoint body; caller holds the exclusive (write) side."""
        self._drain()
        path.mkdir(parents=True, exist_ok=True)
        save_snapshot(self._graph, path / "graph")
        mutation = self._graph.mutation_count
        entries: list[tuple[str, dict]] = []
        group_keys: set[tuple] = set()
        for digest, entry in self._cache.live_entries():
            if entry.mutation != mutation:
                continue
            group_keys.add(entry.request.group_key)
            entries.append(
                (
                    digest,
                    {
                        "values": np.array(
                            entry.scores.values, dtype=np.float64
                        ),
                        "tol": float(entry.tol),
                        "request": entry.request,
                        "teleport": entry.teleport,
                    },
                )
            )
        with self._lock:
            group_keys.update(
                key
                for key, sharded in self._shard_ops.items()
                if sharded is not None
            )
        if self._delta_log is None:
            self._delta_log = DeltaLog(path / "deltas.log")
        self._delta_log.truncate()
        state = {
            "format": self._CHECKPOINT_FORMAT,
            "version": self._CHECKPOINT_VERSION,
            "nodes": self._graph.number_of_nodes,
            "edges": self._graph.number_of_edges,
            "log_path": str(self._delta_log.path),
            "group_keys": sorted(group_keys),
            "entries": entries,
        }
        tmp = path / "service.pkl.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path / "service.pkl")
        # Remember the directory and snapshot footprint so the
        # compaction policy (and path-less re-checkpoints) can
        # compare the armed log against what a fresh snapshot costs.
        self._checkpoint_path = path
        self._snapshot_bytes = sum(
            f.stat().st_size
            for f in (path / "graph").iterdir()
            if f.is_file()
        )
        return {
            "path": str(path),
            "nodes": state["nodes"],
            "edges": state["edges"],
            "entries": len(entries),
            "group_keys": len(group_keys),
            "log": state["log_path"],
            "snapshot_bytes": self._snapshot_bytes,
        }

    @classmethod
    def warm_start(
        cls,
        path: str | Path,
        *,
        backend=None,
        **options,
    ) -> "RankingService":
        """Restore a service from a :meth:`checkpoint` directory.

        Loads the graph snapshot (``backend`` picks the storage backend,
        e.g. ``"mmap"`` for a zero-copy memory-mapped restore), replays
        any deltas the checkpoint's armed log accumulated after the
        snapshot, then constructs the service (``options`` are the
        normal constructor options — service configuration is not
        persisted) and **pre-builds** the operator bundles — and, with
        ``sharding=True``, the block-partitioned operators — for every
        transition group the checkpointed service had built, so the
        first requests skip cold operator construction.

        When *zero* deltas were replayed, the checkpointed cache entries
        are re-seeded too: the restored graph is bit-identical to the
        one the answers were certified on, so they serve as hits
        immediately — a warm restart answers its previous query stream
        without re-solving.  Any replayed delta (or a snapshot/state
        mismatch) skips seeding; correctness never depends on it.

        The restored service keeps the checkpoint's delta log armed, so
        the checkpoint → mutate → warm-start cycle composes.
        """
        if "delta_log" in options:
            raise ParameterError(
                "warm_start re-arms the checkpoint's own delta log; "
                "delta_log cannot be overridden here"
            )
        path = Path(path)
        state_path = path / "service.pkl"
        try:
            with open(state_path, "rb") as handle:
                state = pickle.load(handle)
        except FileNotFoundError:
            raise ReproError(
                f"{path} is not a service checkpoint (no service.pkl)"
            ) from None
        if (
            not isinstance(state, dict)
            or state.get("format") != cls._CHECKPOINT_FORMAT
        ):
            raise ReproError(f"{state_path} is not a service checkpoint")
        graph = load_snapshot(path / "graph", backend=backend)
        log = None
        replayed = 0
        log_path = state.get("log_path")
        if log_path and Path(log_path).exists():
            log = DeltaLog(log_path)
            replayed = int(log.replay(graph)["records"])
        service = cls(graph, delta_log=log, **options)
        # Re-arm the compaction baseline: the restored service can keep
        # auto-compacting against the checkpoint it was started from.
        service._checkpoint_path = path
        service._snapshot_bytes = sum(
            f.stat().st_size
            for f in (path / "graph").iterdir()
            if f.is_file()
        )
        from repro.methods import adjacency_bundle, family_method

        for key in state.get("group_keys", ()):
            key = tuple(key)
            if family_method(key).batchable:
                service._bundle(key)
            else:
                # Spectral families solve on the shared adjacency
                # bundle; pre-build that instead of a transition.
                adjacency_bundle(graph, weighted=bool(key[-1]))
            service._sharded(key)
        seeded = 0
        if (
            replayed == 0
            and state.get("nodes") == graph.number_of_nodes
            and state.get("edges") == graph.number_of_edges
        ):
            mutation = graph.mutation_count
            for digest, record in state.get("entries", ()):
                service._cache.store(
                    digest,
                    scores=NodeScores(graph, record["values"]),
                    tol=record["tol"],
                    mutation=mutation,
                    request=record["request"],
                    teleport=record["teleport"],
                )
                seeded += 1
        service._warm_started = {"replayed": replayed, "seeded": seeded}
        return service

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving health: plan mix, cache, batching, deltas, latencies.

        A backwards-compatible **view over the telemetry registry** —
        every number here is also published (under its ``serving_*`` /
        ``cache_*`` / ``coalescer_*`` family name) by
        ``service.telemetry.snapshot()`` and the Prometheus/JSON
        exporters.
        """
        cache = self._cache.stats()
        plan_mix = {
            dict(labels)["strategy"]: int(value)
            for labels, value in self._m_plans.values().items()
        }
        deltas = {
            "applied": 0,
            "localized": 0,
            "evicting": 0,
            "compactions": 0,
        }
        for labels, value in self._m_deltas.values().items():
            deltas[dict(labels)["kind"]] = int(value)
        shard_stats = {
            "shard_push_local": 0,
            "shard_push_fallback": 0,
            "sharded_solves": 0,
        }
        for labels, value in self._m_shard.values().items():
            shard_stats[dict(labels)["event"]] = int(value)
        return {
            "requests": int(self._m_requests.value()),
            "plan_mix": plan_mix,
            "cache": cache,
            "hit_rate": cache["hit_rate"],
            "coalescer": self._coalescer.stats(),
            "deltas": deltas,
            "latency": self._latency.summary(),
            "planner": self._planner.tuning(),
            "sharding": {
                "enabled": self._sharding,
                **shard_stats,
            },
            "warm_start": self._warm_started,
        }

    def degree_rank(
        self, request: RankRequest | None = None, *, tail_fraction: float = 0.25
    ):
        """Serve ``request`` and profile its degree↔rank coupling.

        Stats-style analytics companion to :meth:`rank`: the request is
        answered through the normal planned/cached path, then the scores
        are profiled with
        :func:`repro.diagnostics.degree_rank_profile` — Spearman
        degree↔score correlation, log–log Pearson coupling and the
        power-law tail fit of the score distribution.  Returns a
        :class:`~repro.diagnostics.DegreeRankProfile` tagged with the
        request's method name (``profile.summary()`` gives the flat
        dict view).
        """
        from repro.diagnostics import degree_rank_profile

        request = request if request is not None else RankRequest()
        served = self.rank(request)
        return degree_rank_profile(
            self._graph,
            served.scores,
            weighted=bool(request.weighted),
            tail_fraction=tail_fraction,
            method=request.method,
        )

    def close(self) -> None:
        """Release sharding worker pools and shared-memory segments.

        Idempotent; a service without sharding (or whose pools were
        never spun up) is a no-op.  Cached answers and the coalescer's
        warm-start memory are untouched — only process/segment resources
        are released, and a later sharded request transparently rebuilds
        them.
        """
        with self._lock:
            shard_ops = list(self._shard_ops.values())
            self._shard_ops.clear()
        for sharded in shard_ops:
            if sharded is not None:
                sharded.close()

    def __enter__(self) -> "RankingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
