"""Synchronisation primitives for the concurrent serving layer.

The serving front's concurrency model needs exactly one non-standard
primitive: a **readers/writer barrier** separating solves from
mutations.  Query execution — push, shard-local push, sharded solve,
batch flush, incremental correction — reads graph matrices and operator
bundles that :meth:`~repro.serving.RankingService.apply_delta` patches
*in place* (the delta-aware refresh keeps the cached CSR transpose
alive by writing ``old + D`` into its buffers).  Readers therefore
share; the mutation door excludes.  ``threading`` offers no
reader/writer lock, so :class:`ReadWriteLock` implements the minimal
contract the service needs:

* **shared (read) side** — any number of concurrent holders; reentrant
  per thread, and a no-op for the thread currently holding the write
  side (so the mutation path can call back into read-guarded helpers,
  e.g. draining outstanding microbatches resolves tickets through the
  normal read-locked path);
* **exclusive (write) side** — waits for active readers to drain and
  blocks new ones while waiting (writer preference: a steady stream of
  cheap queries cannot starve a delta), reentrant per thread;
* **no upgrades** — acquiring write while holding only read raises
  instead of deadlocking two upgraders against each other.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import ReproError

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Reader-shared / writer-exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # threads holding the read side (once each)
        self._writer: int | None = None  # ident of the active writer
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    def _held_reads(self) -> int:
        return getattr(self._local, "reads", 0)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or self._held_reads() > 0:
                # Reentrant read, or read inside our own write hold.
                self._local.reads = self._held_reads() + 1
                return
            while self._writer is not None or self._writers_waiting > 0:
                self._cond.wait()
            self._readers += 1
            self._local.reads = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            reads = self._held_reads()
            if reads <= 0:
                raise ReproError("release_read without a matching acquire")
            self._local.reads = reads - 1
            if self._writer == me:
                return  # nested inside our write hold: nothing counted
            if self._local.reads == 0:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._held_reads() > 0:
                raise ReproError(
                    "cannot upgrade a read hold to a write hold; release "
                    "the read side first"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers > 0:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me or self._writer_depth <= 0:
                raise ReproError("release_write without a matching acquire")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read(self):
        """``with lock.read():`` — hold the shared side for the block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — hold the exclusive side for the block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
