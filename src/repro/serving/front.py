"""The concurrent serving front: workers, admission, timed flushes.

:class:`~repro.serving.RankingService` is thread-safe but *passive* —
every caller brings its own thread and blocks through its own solve.
:class:`ServingFront` puts an active request path in front of it:

* **admission** — each incoming request is dry-run planned and offered
  to an :class:`~repro.serving.admission.AdmissionController` under its
  strategy label: a full ingress queue or a closed front rejects with
  an explicit :class:`~repro.errors.AdmissionError` (never silently),
  and per-strategy concurrency limits keep expensive ``sharded`` solves
  from starving the cheap pushes queued behind them;
* **a worker pool** — ``workers`` threads drain the queue and execute
  requests through the service, fulfilling each request's
  :class:`FrontTicket`;
* **microbatch-aware scheduling** — workers *file* ``batch``-planned
  requests with the coalescer and keep draining the queue instead of
  resolving immediately, so concurrent pooled requests fill shared
  windows (the whole point of coalescing); parked tickets resolve when
  the queue goes momentarily idle or a window's worth has accumulated;
* **a flush timer** — a daemon thread calls
  :meth:`RankingService.poll` every ``poll_interval`` seconds so
  age-bounded flushing (``max_age``) holds even when every client is
  parked waiting and no new request would trigger a flush.

The front is a context manager; :meth:`close` stops intake, fails
every queued-but-unstarted request with ``reason="shutdown"``, drains
the workers and stops the timer.  It does **not** close the underlying
service (whose sharding pools may outlive several fronts).

Latency contract: a client thread calling ``front.submit(...).result()``
observes queueing + solve time; the service records per-strategy solve
latencies which feed the planner's self-tuning (see
``docs/serving.md`` for the full concurrency contract).
"""

from __future__ import annotations

import threading
from time import perf_counter

from contextlib import nullcontext

from repro.errors import AdmissionError, ParameterError, ReproError
from repro.serving.admission import AdmissionController
from repro.serving.planner import RankRequest
from repro.serving.service import RankingService, ServedResult
from repro.telemetry.trace import active_span

__all__ = ["FrontTicket", "ServingFront"]


class FrontTicket:
    """Future-style handle for a request admitted to the front.

    Fulfilled by a worker thread with either a
    :class:`~repro.serving.ServedResult` or the exception the solve
    raised (including the explicit shutdown rejection); any number of
    threads may block in :meth:`result`.
    """

    __slots__ = (
        "request",
        "strategy",
        "_cond",
        "_result",
        "_error",
        "_trace",
        "_aspan",
    )

    def __init__(self, request: RankRequest, strategy: str) -> None:
        self.request = request
        #: The dry-run planned strategy the request was admitted under
        #: (advisory: the serving-time plan may differ if e.g. a cache
        #: entry appeared in between).
        self.strategy = strategy
        self._cond = threading.Condition()
        self._result: ServedResult | None = None
        self._error: BaseException | None = None
        # Sampled requests carry their trace (and open admission span,
        # measuring queue wait) from the client thread to the worker.
        self._trace = None
        self._aspan = None

    @property
    def done(self) -> bool:
        with self._cond:
            return self._result is not None or self._error is not None

    def _fulfill(self, result: ServedResult) -> None:
        with self._cond:
            if self._result is None and self._error is None:
                self._result = result
                self._cond.notify_all()

    def _fail(self, error: BaseException) -> None:
        with self._cond:
            if self._result is None and self._error is None:
                self._error = error
                self._cond.notify_all()

    def result(self, timeout: float | None = None) -> ServedResult:
        """Block for the served answer; re-raises the worker's exception."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._result is not None or self._error is not None,
                timeout=timeout,
            ):
                raise ReproError(
                    f"ticket not fulfilled within {timeout} s"
                )
            if self._error is not None:
                raise self._error
            return self._result


class ServingFront:
    """Queue-fed worker pool over a :class:`RankingService`.

    Parameters
    ----------
    service:
        The (thread-safe) service to execute against.
    workers:
        Worker threads draining the ingress queue.
    capacity:
        Ingress queue bound; an offer beyond it raises
        :class:`~repro.errors.AdmissionError` (``reason="queue_full"``).
    limits:
        Per-strategy concurrency limits, e.g. ``{"sharded": 1}`` —
        strategies absent from the map are unlimited.  Defaults to
        ``{"sharded": max(1, workers // 2)}`` so global solves can never
        occupy the whole pool.  Pass ``{}`` to disable.
    poll_interval:
        Period of the flush-timer thread driving
        :meth:`RankingService.poll`.  Defaults to half the coalescer's
        ``max_age`` (no timer when the service has no age bound).
    """

    def __init__(
        self,
        service: RankingService,
        *,
        workers: int = 4,
        capacity: int = 64,
        limits: dict[str, int] | None = None,
        poll_interval: float | None = None,
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if poll_interval is not None and poll_interval <= 0:
            raise ParameterError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        self._service = service
        self.workers = workers
        if limits is None:
            limits = {"sharded": max(1, workers // 2)}
        # Duck-typed service wrappers (tests, gating shims) may not
        # expose a registry/tracer; fall back to a private registry so
        # the front's own counters always work.
        telemetry = getattr(service, "telemetry", None)
        if telemetry is None:
            from repro.telemetry.metrics import MetricsRegistry

            telemetry = MetricsRegistry()
        self._telemetry = telemetry
        self._admission = AdmissionController(
            capacity, limits=limits, metrics=telemetry
        )
        max_age = service.coalescer.max_age
        if poll_interval is None and max_age is not None:
            poll_interval = max(max_age / 2.0, 1e-3)
        self.poll_interval = poll_interval
        self._window = service.coalescer.window
        self._m_served = telemetry.counter(
            "front_served_total", "Requests fulfilled by front workers"
        )
        self._m_failed = telemetry.counter(
            "front_failed_total",
            "Requests whose ticket was failed with an exception",
        )
        self._m_polls = telemetry.counter(
            "front_polls_total", "Flush-timer service polls"
        )
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        for i in range(workers):
            t = threading.Thread(
                target=self._worker_loop,
                name=f"repro-front-worker-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        self._timer: threading.Thread | None = None
        if self.poll_interval is not None:
            self._timer = threading.Thread(
                target=self._timer_loop,
                name="repro-front-poll",
                daemon=True,
            )
            self._timer.start()

    @property
    def service(self) -> RankingService:
        return self._service

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(
        self, request: RankRequest | None = None, **kwargs
    ) -> FrontTicket:
        """Admit one request, returning its ticket without blocking.

        Raises :class:`~repro.errors.AdmissionError` when the ingress
        queue is full or the front is shut down — backpressure is the
        *caller's* signal to shed or retry, never a silent drop.
        """
        plan = self._service.plan(request, **kwargs)
        if request is None:
            request = RankRequest(**kwargs)
        ticket = FrontTicket(request, plan.strategy)
        tracer = getattr(self._service, "tracer", None)
        if tracer is not None and active_span() is None:
            trace = tracer.start(
                "front.rank",
                method=request.method,
                admitted_strategy=plan.strategy,
            )
            if trace is not None:
                ticket._trace = trace
                ticket._aspan = trace.root.child("admission")
        try:
            self._admission.offer(ticket, plan.strategy)
        except AdmissionError as exc:
            if ticket._trace is not None:
                ticket._aspan.annotate(rejected=exc.reason)
                ticket._trace.finish()
            raise
        return ticket

    def rank(
        self, request: RankRequest | None = None, **kwargs
    ) -> ServedResult:
        """Admit one request and block for its answer (closed-loop client)."""
        return self.submit(request, **kwargs).result()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    @staticmethod
    def _activation(ticket: FrontTicket):
        """Context manager making the ticket's trace ambient (or a no-op).

        Run service calls under it so the service threads its plan /
        solve / cache spans into the front's trace instead of starting
        an owned one.
        """
        if ticket._trace is None:
            return nullcontext()
        return ticket._trace.activate()

    def _execute(self, ticket: FrontTicket) -> None:
        try:
            with self._activation(ticket):
                result = self._service.rank(ticket.request)
            ticket._fulfill(result)
            self._m_served.inc()
        except BaseException as exc:  # noqa: BLE001 - fulfil with any error
            ticket._fail(exc)
            self._m_failed.inc()
            if ticket._trace is not None:
                ticket._trace.root.annotate(error=type(exc).__name__)
        finally:
            if ticket._trace is not None:
                ticket._trace.finish()

    def _resolve_parked(
        self, parked: list[tuple[FrontTicket, object]]
    ) -> None:
        for fticket, sticket in parked:
            try:
                # No activation needed: the service captured the parent
                # span at submit time and re-enters it in its resolver.
                fticket._fulfill(sticket.result())
                self._m_served.inc()
            except BaseException as exc:  # noqa: BLE001
                fticket._fail(exc)
                self._m_failed.inc()
                if fticket._trace is not None:
                    fticket._trace.root.annotate(error=type(exc).__name__)
            finally:
                if fticket._trace is not None:
                    fticket._trace.finish()
        parked.clear()

    def _worker_loop(self) -> None:
        # Tickets whose columns are filed with the coalescer but whose
        # resolution is deferred so concurrent submissions can pool.
        # Parking is time-bounded: under a sustained non-batch stream
        # the queue never goes idle, so age alone must force a resolve.
        parked: list[tuple[FrontTicket, object]] = []
        parked_since = 0.0
        park_bound = (
            self.poll_interval if self.poll_interval is not None else 0.05
        )
        while True:
            if parked and perf_counter() - parked_since > park_bound:
                self._resolve_parked(parked)
            # With parked work, only poll the queue — an empty instant
            # means the burst is over and the partial window should
            # flush rather than age out.
            taken = self._admission.take(timeout=0 if parked else 0.05)
            if taken is None:
                if parked:
                    self._resolve_parked(parked)
                    continue
                if self._admission.closed:
                    return
                if self._stop.is_set():
                    return
                continue
            ticket, cls = taken
            if ticket._aspan is not None:
                # Close the admission span: its duration is the queue
                # wait between client offer and worker pickup.
                ticket._aspan.close()
            try:
                if cls == "batch":
                    # File the column now (cheap); defer the resolve so
                    # other workers' pooled columns share the window.
                    try:
                        with self._activation(ticket):
                            sticket = self._service.submit(ticket.request)
                    except BaseException as exc:  # noqa: BLE001
                        ticket._fail(exc)
                        self._m_failed.inc()
                        if ticket._trace is not None:
                            ticket._trace.finish()
                    else:
                        if not parked:
                            parked_since = perf_counter()
                        parked.append((ticket, sticket))
                        if len(parked) >= self._window:
                            self._resolve_parked(parked)
                else:
                    self._execute(ticket)
            finally:
                self._admission.release(cls)

    def _timer_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self._service.poll()
                self._m_polls.inc()
            except Exception:  # pragma: no cover - poll must never kill
                pass

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 30.0) -> None:
        """Stop intake, reject the queued backlog, drain workers and timer.

        Every admitted-but-unstarted request fails its ticket with an
        explicit ``AdmissionError(reason="shutdown")`` — a client
        blocked in :meth:`FrontTicket.result` sees the rejection, not a
        hang.  In-flight requests finish normally.  Idempotent; does not
        close the underlying service.
        """
        leftovers = self._admission.close()
        for item, _cls in leftovers:
            item._fail(
                AdmissionError(
                    "serving front shut down before this request started",
                    reason="shutdown",
                )
            )
            if item._trace is not None:
                item._aspan.annotate(rejected="shutdown")
                item._trace.finish()
        self._stop.set()
        for t in self._threads:
            t.join(timeout=timeout)
        if self._timer is not None:
            self._timer.join(timeout=timeout)

    def __enter__(self) -> "ServingFront":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        """Front health: admission state, served/failed counts, poll count.

        A view over the service's telemetry registry (families
        ``front_*`` and ``admission_*``).
        """
        return {
            "workers": self.workers,
            "served": int(self._m_served.value()),
            "failed": int(self._m_failed.value()),
            "polls": int(self._m_polls.value()),
            "poll_interval": self.poll_interval,
            "admission": self._admission.stats(),
        }
