"""Query normalisation and planning for the ranking service.

The compute layers below this package solve *systems*: a transition
matrix, a teleport vector, a tolerance.  The serving layer owns
*requests* — "rank this graph for these seeds with this method" — and its
first job is deciding **how** each request should be executed.  That is
the planner's contract:

* :class:`RankRequest` is the normalised request vocabulary: a method
  name resolved through the registry (:mod:`repro.methods` — the
  stochastic ``pagerank``/``d2pr``/``fatigued`` family plus the
  spectral ``katz``/``eigenvector``/``hits`` family), its per-method
  parameters (``p``, ``alpha``, ``beta``/``weighted``, ``fatigue``), a
  seed specification, dangling strategy, tolerance and an optional
  ``top_k``.  Which parameters a method accepts — and how they fold
  into group keys and cache digests — is owned by its
  :class:`~repro.methods.CentralityMethod` descriptor, not by this
  module.
* :func:`canonical_query` resolves a request against a graph into its
  transition-group key, dense teleport vector and a **canonical digest**
  — the result-cache key, stable across equivalent spellings of the same
  query (seed lists vs mappings vs arrays, scaled teleports).
* :class:`QueryPlanner` chooses an execution strategy with explicit,
  explainable cost heuristics:

  - ``"cached"``      — the result cache holds a certified answer for
    this digest at the current graph version;
  - ``"incremental"`` — the cache holds a pre-delta answer plus the
    captured baseline residual of a pending
    :class:`~repro.graph.delta.GraphDelta`: correct it by residual
    push (:func:`~repro.linalg.incremental.incremental_update`)
    instead of re-solving;
  - ``"push"``        — the seed support is sparse and its estimated
    frontier reach is a small fraction of the stored entries: serve by
    :func:`~repro.linalg.push.forward_push` (which still falls back to
    power iteration on its own if the frontier de-localises, so a
    mis-planned push is never wrong, only slower);
  - ``"spectral"``    — the method is not batchable (its operator is
    the raw adjacency, not a stochastic transition — eigenvector/
    Katz/HITS): solve directly through
    :meth:`~repro.methods.CentralityMethod.solve`; the answer is still
    cached under the method's eigen/L1 certificate;
  - ``"shard_push"``  — push-eligible *and* the service holds a
    block-partitioned operator (``shard_state``) whose plan maps every
    seed into one shard with no foreign dangling rows: run the push
    against that shard's small diagonal block plus a ghost absorber
    (:meth:`~repro.shard.operator.ShardedOperator.push_context`) — the
    service certifies the answer with the escaped-mass bound and falls
    back to a global push when too much mass leaves the shard;
  - ``"sharded"``     — uniform-teleport (global) rankings when a
    sharded operator is held: fan the block-relaxation rounds of
    :func:`~repro.shard.solver.sharded_solve` across its worker pool
    instead of streaming the monolithic matrix;
  - ``"batch"``       — everything else (dense teleports, wide seed
    sets, pooled cohorts): pooled
    :func:`~repro.linalg.power_iteration_batch` blocks through the
    microbatch coalescer.

Every :class:`QueryPlan` carries the reason string and the raw cost
estimates behind the choice, so ``plan.explain()`` answers "why did the
service do that?" without a debugger.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node
from repro.methods import MethodParams, method_names, resolve
from repro.serving.latency import LatencyRecorder
from repro.telemetry.trace import annotate

__all__ = [
    "METHODS",
    "STRATEGIES",
    "RankRequest",
    "CanonicalQuery",
    "QueryPlan",
    "QueryPlanner",
    "canonical_query",
    "dense_teleport",
]

#: Registry-derived: every registered centrality method is servable.
METHODS = method_names()
STRATEGIES = (
    "cached",
    "incremental",
    "spectral",
    "shard_push",
    "push",
    "sharded",
    "batch",
)


@dataclass(frozen=True)
class RankRequest:
    """One ranking request against the served graph.

    The serving-layer counterpart of :class:`~repro.core.engine.RankQuery`:
    where a ``RankQuery`` names a linear system, a ``RankRequest`` names a
    *question* — including the method, the accuracy the caller needs and
    how much of the answer they want back.

    Attributes
    ----------
    method:
        A registered :class:`~repro.methods.CentralityMethod` name:
        ``"pagerank"`` / ``"d2pr"`` / ``"fatigued"`` (stochastic) or
        ``"katz"`` / ``"eigenvector"`` / ``"hits"`` (spectral).  The
        descriptor owns which of the fields below the method accepts;
        out-of-vocabulary fields must stay at their defaults.
    p:
        Degree de-coupling weight (``d2pr``/``fatigued``).
    alpha:
        Residual probability (stochastic family and ``katz``).
    beta:
        Connection-strength blend (weighted graphs only).
    weighted:
        Honour stored edge weights.
    fatigue:
        Fatigue strength γ ∈ [0, 1) (``method="fatigued"``): node ``j``
        forwards only ``1 − γ·θ_j/θ_max`` of incoming transition mass
        before row re-normalisation.
    seeds:
        Personalisation: ``None`` (global ranking), an index-aligned
        array, a ``{node: weight}`` mapping, or a sequence of seed nodes.
    dangling:
        Dangling-mass strategy (``"teleport"``, ``"uniform"``, ``"self"``).
    tol:
        L1 accuracy of the answer.  Cached entries only serve requests
        whose tolerance they meet (an entry solved at 1e-8 never answers
        a 1e-10 request).
    top_k:
        When set, the served result also materialises the top-``k``
        slice; the full certified vector is still cached.
    """

    method: str = "d2pr"
    p: float = 0.0
    alpha: float = 0.85
    beta: float = 0.0
    weighted: bool = False
    fatigue: float = 0.0
    seeds: Mapping[Node, float] | Sequence[Node] | np.ndarray | None = None
    dangling: str = "teleport"
    tol: float = 1e-10
    top_k: int | None = None

    def method_params(self) -> MethodParams:
        """This request's parameters in the registry's normalised view."""
        return MethodParams(
            p=float(self.p),
            alpha=float(self.alpha),
            beta=float(self.beta),
            weighted=bool(self.weighted),
            dangling=self.dangling,
            fatigue=float(self.fatigue),
            has_seeds=self.seeds is not None,
        )

    def validate(self) -> None:
        """Raise :class:`ParameterError` on out-of-domain settings.

        Method-parameter validation (vocabulary, domains, seed support)
        is delegated to the resolved
        :class:`~repro.methods.CentralityMethod`; only serving-level
        vocabulary (``tol``, ``top_k``) is checked here.
        """
        resolve(self.method).validate(self.method_params())
        if not (np.isfinite(self.tol) and self.tol > 0.0):
            raise ParameterError(f"tol must be positive, got {self.tol}")
        if self.top_k is not None and self.top_k < 0:
            raise ParameterError(f"top_k must be >= 0, got {self.top_k}")

    @property
    def resolved_p(self) -> float:
        """The de-coupling weight of the transition this request solves."""
        method = resolve(self.method)
        return float(self.p) if "p" in method.vocabulary else 0.0

    @property
    def group_key(self) -> tuple:
        """The transition identity ``(family, *matrix params)``.

        Built by the resolved method's
        :meth:`~repro.methods.CentralityMethod.group_key` — the single
        construction site: the planner's canonical queries, the
        coalescer's group table and the service's bundle resolution
        (including pre-/post-delta corrections) all read this property,
        so the key can never diverge between them.  The leading family
        tag keeps different families out of each other's microbatch
        pools while ``pagerank`` and ``d2pr`` (one family) keep
        sharing transitions.
        """
        return resolve(self.method).group_key(self.method_params())


@dataclass(frozen=True)
class CanonicalQuery:
    """A request resolved against a concrete graph.

    ``digest`` identifies the *answer* (method, transition parameters,
    alpha, dangling and the unit-normalised teleport) — two requests with
    equal digests have identical score vectors at any common tolerance,
    so the digest is the result-cache key.  ``group_key`` identifies the
    *transition matrix* — requests sharing it can be pooled into one
    batched solve.

    The teleport is held **sparse** — sorted seed indices plus
    unit-normalised weights (``None``/``None`` for uniform) — so
    normalising and digesting a request costs O(seeds), not O(n): a
    cache *hit* never allocates or hashes a dense n-vector.  Paths that
    actually solve (batch columns, incremental corrections) materialise
    the dense vector on demand via :meth:`dense_teleport`.
    """

    request: RankRequest
    n: int
    seed_idx: np.ndarray | None
    seed_weights: np.ndarray | None
    digest: str
    group_key: tuple

    def dense_teleport(self) -> np.ndarray | None:
        """The dense ``(n,)`` teleport vector (``None`` = uniform)."""
        return dense_teleport(self.n, self.seed_idx, self.seed_weights)


def dense_teleport(
    n: int,
    seed_idx: np.ndarray | None,
    seed_weights: np.ndarray | None,
) -> np.ndarray | None:
    """Materialise a sparse canonical teleport as a dense ``(n,)`` vector.

    The one scatter site shared by every consumer of the sparse form
    (batch columns, cache corrections), so the materialisation can never
    diverge between paths.  ``None`` indices mean uniform teleportation
    and return ``None``.
    """
    if seed_idx is None:
        return None
    vec = np.zeros(n)
    vec[seed_idx] = seed_weights
    return vec


def _sparse_seeds(
    graph: BaseGraph,
    seeds: Mapping[Node, float] | Sequence[Node] | np.ndarray | None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Resolve a seed spec into sorted (indices, unit-normalised weights).

    Mirrors :func:`~repro.core.engine.build_teleport` semantics —
    mappings keep their weights, sequences weight each occurrence
    equally, dense arrays are sparsified — without ever allocating a
    dense vector for the mapping/sequence forms.  Zero-weight seeds are
    dropped (a dense spelling would not contain them either), so every
    spelling of one distribution produces one canonical form.
    """
    if seeds is None:
        return None, None
    n = graph.number_of_nodes
    if isinstance(seeds, np.ndarray):
        if seeds.shape != (n,):
            raise ParameterError(
                f"teleport array must have shape ({n},), got {seeds.shape}"
            )
        vec = seeds.astype(np.float64)
        if not np.isfinite(vec).all() or (vec < 0).any():
            raise ParameterError(
                "teleport vector must be non-negative and finite"
            )
        idx = np.flatnonzero(vec)
        weights = vec[idx]
    elif isinstance(seeds, Mapping):
        pairs = []
        for node, weight in seeds.items():
            weight = float(weight)
            if weight < 0:
                raise ParameterError(
                    f"teleport weight for {node!r} must be >= 0, "
                    f"got {weight}"
                )
            pairs.append((graph.index_of(node), weight))
        idx = np.array([i for i, _ in pairs], dtype=np.int64)
        weights = np.array([w for _, w in pairs])
        order = np.argsort(idx)
        idx, weights = idx[order], weights[order]
        keep = weights > 0.0
        idx, weights = idx[keep], weights[keep]
    else:
        indices = np.array(
            [graph.index_of(node) for node in seeds], dtype=np.int64
        )
        idx, counts = np.unique(indices, return_counts=True)
        weights = counts.astype(np.float64)
    total = weights.sum()
    if total <= 0.0:
        raise ParameterError("teleport specification has no positive mass")
    return idx, weights / total


def canonical_query(graph: BaseGraph, request: RankRequest) -> CanonicalQuery:
    """Validate ``request`` and resolve it against ``graph``.

    Normalises the seed specification into the sparse canonical form
    (O(seeds), no dense allocation) and computes the canonical digest.
    Scaled teleports digest equal (weights are normalised to unit mass
    before hashing), so ``{a: 1}`` and ``{a: 3.0}`` share a cache line,
    as do a seed list, the equivalent mapping and the equivalent dense
    array.
    """
    request.validate()
    method = resolve(request.method)
    params = request.method_params()
    group_key = method.group_key(params)
    seed_idx, seed_weights = _sparse_seeds(graph, request.seeds)
    h = hashlib.sha1()
    # The digest covers the group key plus the method's declared
    # per-answer parameters (alpha for methods that use it, nothing for
    # pure eigen methods) — fields a method ignores cannot split its
    # cache lines.
    h.update(repr((group_key, method.digest_params(params))).encode())
    if seed_idx is None:
        h.update(b"<uniform>")
    else:
        h.update(seed_idx.tobytes())
        h.update(seed_weights.tobytes())
    return CanonicalQuery(
        request=request,
        n=graph.number_of_nodes,
        seed_idx=seed_idx,
        seed_weights=seed_weights,
        digest=h.hexdigest(),
        group_key=group_key,
    )


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one request, with its evidence.

    ``estimates`` holds the raw numbers behind the choice (stored-entry
    count, estimated power sweeps, seed support, estimated push frontier
    reach and the localization ratio) so operators can audit the plan mix
    the service reports in :meth:`~repro.serving.RankingService.stats`.
    """

    strategy: str
    reason: str
    digest: str
    group_key: tuple
    estimates: Mapping[str, float] = field(default_factory=dict)

    def explain(self) -> str:
        """One-line human-readable account of the decision."""
        facts = ", ".join(
            f"{key}={value:.3g}" if isinstance(value, float) else
            f"{key}={value}"
            for key, value in self.estimates.items()
        )
        out = f"strategy={self.strategy}: {self.reason}"
        return f"{out} [{facts}]" if facts else out


class QueryPlanner:
    """Chooses an execution strategy per request with explicit heuristics.

    Parameters
    ----------
    push_max_seeds:
        Largest seed-support size the push path is considered for; wider
        personalisation vectors spread mass too broadly for
        Gauss–Southwell push to beat a pooled batched sweep.
    push_localization:
        Upper bound on the *localization ratio* — the estimated frontier
        reach (``support · avg_out_entries / (1 − α)``) as a fraction of
        the stored entries — below which push is chosen.  The estimate is
        deliberately crude (the push solver carries its own exact
        ``frontier_cap`` fallback); it exists to keep obviously global
        queries off the push path, not to be a performance model.
    latency:
        A :class:`~repro.serving.latency.LatencyRecorder` of observed
        per-strategy latencies.  When provided (the
        :class:`~repro.serving.RankingService` wires its own recorder
        into its default planner), the static ``push_localization``
        constant **self-tunes** under real traffic: once both ``push``
        and ``batch`` hold at least ``min_samples`` observations, the
        effective threshold is scaled by
        ``sqrt(batch_p50 / push_p50)`` (clamped to ``tune_bounds`` as a
        multiple of the static value).  Observed-cheap pushes widen
        their eligibility window, observed-expensive pushes shrink it —
        the decision boundary tracks what the strategies actually cost
        on this graph and hardware instead of the shipped constants.
        The square root damps the adjustment: observed latencies are
        noisy mixtures of query shapes, and the boundary should drift
        with sustained evidence, not whiplash on one slow flush.
    min_samples / tune_bounds:
        Evidence floor and clamp interval for the self-tuning above.
    """

    def __init__(
        self,
        *,
        push_max_seeds: int = 32,
        push_localization: float = 0.25,
        latency: LatencyRecorder | None = None,
        min_samples: int = 12,
        tune_bounds: tuple[float, float] = (0.25, 4.0),
    ) -> None:
        if push_max_seeds < 0:
            raise ParameterError(
                f"push_max_seeds must be >= 0, got {push_max_seeds}"
            )
        if not 0.0 <= push_localization <= 1.0:
            raise ParameterError(
                f"push_localization must be in [0, 1], "
                f"got {push_localization}"
            )
        if min_samples < 1:
            raise ParameterError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        lo, hi = tune_bounds
        if not (0.0 < lo <= 1.0 <= hi):
            raise ParameterError(
                f"tune_bounds must satisfy 0 < lo <= 1 <= hi, "
                f"got {tune_bounds}"
            )
        self.push_max_seeds = push_max_seeds
        self.push_localization = push_localization
        self.latency = latency
        self.min_samples = min_samples
        self.tune_bounds = (float(lo), float(hi))

    # ------------------------------------------------------------------
    # observed-latency feedback
    # ------------------------------------------------------------------
    def observe(self, strategy: str, seconds: float) -> None:
        """Feed one observed per-strategy latency into the cost model.

        No-op without an attached recorder; the service calls this for
        every served request (batch requests at resolution time, so the
        recorded cost is the pooled per-request cost, queueing included).
        """
        if self.latency is not None:
            self.latency.observe(strategy, seconds)

    def effective_push_localization(self) -> float:
        """The self-tuned push threshold (static value until evidence)."""
        ratio = self._observed_ratio()
        if ratio is None:
            return self.push_localization
        lo, hi = self.tune_bounds
        scale = min(hi, max(lo, math.sqrt(ratio)))
        return min(1.0, self.push_localization * scale)

    def _observed_ratio(self) -> float | None:
        """``batch_p50 / push_p50`` when both have enough evidence."""
        recorder = self.latency
        if recorder is None:
            return None
        if (
            recorder.count("push") < self.min_samples
            or recorder.count("batch") < self.min_samples
        ):
            return None
        push_p50 = recorder.quantile("push", 0.5)
        batch_p50 = recorder.quantile("batch", 0.5)
        if not push_p50 or batch_p50 is None:
            return None
        return batch_p50 / push_p50

    def tuning(self) -> dict:
        """Self-tuning evidence: static vs effective threshold and p50s.

        Surfaced through ``RankingService.stats()["planner"]`` so
        operators can see *why* the plan mix drifted under load.
        """
        recorder = self.latency
        out = {
            "push_localization": self.push_localization,
            "effective_push_localization": (
                self.effective_push_localization()
            ),
            "min_samples": self.min_samples,
            "samples": {
                "push": recorder.count("push") if recorder else 0,
                "batch": recorder.count("batch") if recorder else 0,
            },
        }
        ratio = self._observed_ratio()
        if ratio is not None:
            out["observed_batch_over_push_p50"] = ratio
        return out

    def plan(
        self,
        graph: BaseGraph,
        query: CanonicalQuery,
        *,
        cache_state: str | None = None,
        shard_state=None,
    ) -> QueryPlan:
        """Plan one canonical query.

        ``cache_state`` is the service's result-cache verdict for the
        query's digest: ``"hit"`` (certified answer at the current graph
        version), ``"pending"`` (pre-delta answer plus captured baseline
        residual awaiting incremental correction) or ``None`` (miss).

        ``shard_state`` is the service's block-partitioned operator for
        the query's transition group (a
        :class:`~repro.shard.operator.ShardedOperator`), or ``None`` when
        the service is not sharding.  It upgrades two decisions:
        push-eligible queries whose seeds land in a single shard become
        ``"shard_push"``, and uniform-teleport global rankings become
        ``"sharded"``.  Wide-seed personalised queries stay ``"batch"``
        regardless — pooling cohorts through the coalescer beats solving
        them one sharded system at a time.

        When a trace is active, the decision is annotated onto the
        ambient span (``planner_strategy`` / ``planner_reason``) — this
        covers dry-run plans too, which the service's own ``plan`` span
        does not see.
        """
        plan = self._plan(
            graph, query, cache_state=cache_state, shard_state=shard_state
        )
        annotate(
            planner_strategy=plan.strategy, planner_reason=plan.reason
        )
        return plan

    def _plan(
        self,
        graph: BaseGraph,
        query: CanonicalQuery,
        *,
        cache_state: str | None = None,
        shard_state=None,
    ) -> QueryPlan:
        request = query.request
        n = graph.number_of_nodes
        m = graph.number_of_edges
        entries = float(m if graph.directed else 2 * m)
        alpha = float(request.alpha)
        # Power iteration contracts the L1 error by a factor alpha per
        # sweep, so reaching tol takes ~ log(tol)/log(alpha) sweeps.
        if 0.0 < alpha < 1.0 and request.tol < 1.0:
            sweeps = max(1.0, math.log(request.tol) / math.log(alpha))
        else:
            sweeps = 1.0
        estimates: dict[str, float] = {
            "entries": entries,
            "est_power_sweeps": sweeps,
        }

        if cache_state == "hit":
            return QueryPlan(
                strategy="cached",
                reason="certified cache entry at the current graph version",
                digest=query.digest,
                group_key=query.group_key,
                estimates=estimates,
            )
        if cache_state == "pending":
            return QueryPlan(
                strategy="incremental",
                reason=(
                    "cached pre-delta answer with captured baseline "
                    "residual: correct by residual push instead of "
                    "re-solving"
                ),
                digest=query.digest,
                group_key=query.group_key,
                estimates=estimates,
            )

        method = resolve(request.method)
        if not method.batchable:
            estimates["certificate"] = method.certificate
            return QueryPlan(
                strategy="spectral",
                reason=(
                    f"{method.name} iterates the adjacency operator "
                    f"(not a stochastic transition): direct spectral "
                    f"solve under the {method.certificate} certificate"
                ),
                digest=query.digest,
                group_key=query.group_key,
                estimates=estimates,
            )

        if query.seed_idx is not None:
            support = int(query.seed_idx.size)
            avg_entries = entries / max(n, 1)
            # Crude frontier-reach model: the pushed mass decays by alpha
            # per hop, so the visited neighbourhood is roughly the seeds'
            # out-entries amplified by the walk length 1/(1-alpha).
            reach = support * avg_entries / max(1.0 - alpha, 1e-12)
            localization = reach / max(entries, 1.0)
            threshold = self.effective_push_localization()
            estimates.update(
                seed_support=float(support),
                est_frontier_entries=reach,
                localization=localization,
                localization_threshold=threshold,
            )
            if (
                method.supports_push
                and support <= self.push_max_seeds
                and localization <= threshold
            ):
                shard = self._local_shard(shard_state, query)
                if shard is not None:
                    estimates.update(
                        shard=float(shard),
                        shard_nodes=float(
                            shard_state.plan.sizes[shard]
                        ),
                    )
                    return QueryPlan(
                        strategy="shard_push",
                        reason=(
                            f"{support} seed(s) fall in shard {shard} "
                            "with no foreign dangling rows: shard-local "
                            "forward push with escaped-mass certificate"
                        ),
                        digest=query.digest,
                        group_key=query.group_key,
                        estimates=estimates,
                    )
                return QueryPlan(
                    strategy="push",
                    reason=(
                        f"{support} seed(s) reach an estimated "
                        f"{100 * localization:.2g}% of stored entries: "
                        "localized forward push"
                    ),
                    digest=query.digest,
                    group_key=query.group_key,
                    estimates=estimates,
                )
            if not method.supports_push:
                reason = f"method {method.name!r} has no push solver"
            elif support > self.push_max_seeds:
                reason = f"seed support {support} exceeds the push window"
            else:
                reason = (
                    f"estimated frontier reach {100 * localization:.2g}% "
                    "de-localises push"
                )
            return QueryPlan(
                strategy="batch",
                reason=f"{reason}: pooled power iteration",
                digest=query.digest,
                group_key=query.group_key,
                estimates=estimates,
            )

        if shard_state is not None and method.supports_sharding:
            estimates["n_shards"] = float(shard_state.n_shards)
            return QueryPlan(
                strategy="sharded",
                reason=(
                    "uniform teleport (global ranking) with a "
                    "block-partitioned operator: sharded block "
                    "relaxation"
                ),
                digest=query.digest,
                group_key=query.group_key,
                estimates=estimates,
            )
        return QueryPlan(
            strategy="batch",
            reason="uniform teleport (global ranking): pooled power "
            "iteration",
            digest=query.digest,
            group_key=query.group_key,
            estimates=estimates,
        )

    @staticmethod
    def _local_shard(shard_state, query: CanonicalQuery) -> int | None:
        """The single shard a push-eligible query is local to, or ``None``.

        Local means every seed lands in one shard **and** local push can
        be exact about dangling mass: either the request already keeps
        dangling mass in place (``dangling="self"``, which the ghost
        system models directly) or the shard contains no dangling rows at
        all — genuine in-shard dangling under ``"teleport"``/``"uniform"``
        redistributes mass globally, which a shard-local system cannot
        represent.
        """
        if shard_state is None or query.seed_idx is None:
            return None
        shards = shard_state.plan.shards_of(query.seed_idx)
        if np.unique(shards).size != 1:
            return None
        shard = int(shards[0])
        if query.request.dangling == "self":
            return shard
        return shard if shard_state.local_dangle[shard].size == 0 else None
