"""Generator for EXPERIMENTS.md — the paper-vs-measured record.

Runs every table and figure experiment, extracts the paper's headline
claim for each, evaluates the measured counterpart, and writes a markdown
report.  Regenerate after any dataset or algorithm change with::

    python -m repro.experiments.report [scale] [output-path]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.experiments.runner import run_experiment

__all__ = ["generate_report", "CLAIM_CHECKS", "ClaimCheck"]


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim and how to verify it against measured data."""

    experiment_id: str
    paper_claim: str
    measured: str  # template filled by the checker
    holds: bool


def _fmt(value: float) -> str:
    return f"{value:+.3f}"


def _check_table1(data) -> list[ClaimCheck]:
    checks = []
    for name, entry in data.items():
        checks.append(
            ClaimCheck(
                "table1",
                f"{name}: Spearman(PR, degree) = {entry['paper']:.3f}",
                f"measured {entry['measured']:.3f}",
                entry["measured"] > 0.8,
            )
        )
    return checks


def _check_table2(data) -> list[ClaimCheck]:
    entries = sorted(data.values(), key=lambda e: -e["degree"])
    hub, leaf = entries[0], entries[-1]
    return [
        ClaimCheck(
            "table2",
            "highest-degree node: rank 1 at p=-4, pushed far down at p=+4",
            f"degree {hub['degree']:.0f}: rank {hub['rank@p=-4']} at p=-4 "
            f"→ rank {hub['rank@p=4']} at p=+4",
            hub["rank@p=-4"] < hub["rank@p=4"],
        ),
        ClaimCheck(
            "table2",
            "degree-1 nodes: bottom ranks at p=-4, rise sharply at p=+4",
            f"degree {leaf['degree']:.0f}: rank {leaf['rank@p=-4']} at p=-4 "
            f"→ rank {leaf['rank@p=4']} at p=+4",
            leaf["rank@p=-4"] > leaf["rank@p=4"],
        ),
    ]


def _check_table3(data) -> list[ClaimCheck]:
    pairs = [
        ("imdb/actor-actor", "imdb/movie-movie"),
        ("dblp/article-article", "dblp/author-author"),
        ("lastfm/artist-artist", "lastfm/listener-listener"),
    ]
    checks = []
    for denser, sparser in pairs:
        holds = data[denser]["average_degree"] > data[sparser]["average_degree"]
        checks.append(
            ClaimCheck(
                "table3",
                f"{denser} denser than {sparser} "
                f"(paper: {data[denser]['paper_average_degree']:.1f} vs "
                f"{data[sparser]['paper_average_degree']:.1f} avg degree)",
                f"measured {data[denser]['average_degree']:.1f} vs "
                f"{data[sparser]['average_degree']:.1f}",
                holds,
            )
        )
    return checks


def _check_figure1(data) -> list[ClaimCheck]:
    got = data["p=2"]
    holds = (
        abs(got["B"] - 0.18) < 0.01
        and abs(got["C"] - 0.08) < 0.01
        and abs(got["D"] - 0.735) < 0.01
    )
    return [
        ClaimCheck(
            "figure1",
            "transition probabilities from A at p=2: (0.18, 0.08, 0.74)",
            f"measured ({got['B']:.2f}, {got['C']:.2f}, {got['D']:.2f})",
            holds,
        )
    ]


def _peak(entry) -> float:
    return float(entry["peak_p"])


def _check_figure2(data) -> list[ClaimCheck]:
    checks = [
        ClaimCheck(
            "figure2",
            f"{name}: optimal p > 0 (paper: peak at p ≈ 0.5)",
            f"measured peak at p = {_peak(entry):+.1f} "
            f"(corr {max(entry['correlations']):+.3f})",
            _peak(entry) > 0,
        )
        for name, entry in data.items()
    ]
    pp = data["epinions/product-product"]
    checks.append(
        ClaimCheck(
            "figure2",
            "product-product: negative correlation at p = 0 "
            "(the only graph where conventional PR is negatively correlated)",
            f"measured corr@0 = {_fmt(pp['correlation_at_zero'])}",
            pp["correlation_at_zero"] < 0,
        )
    )
    return checks


def _check_figure3(data) -> list[ClaimCheck]:
    return [
        ClaimCheck(
            "figure3",
            f"{name}: peak at p = 0 (conventional PageRank ideal)",
            f"measured peak at p = {_peak(entry):+.1f} "
            f"(corr@0 {_fmt(entry['correlation_at_zero'])})",
            _peak(entry) == 0.0,
        )
        for name, entry in data.items()
    ]


def _check_figure4(data) -> list[ClaimCheck]:
    # The flat-plateau claim is strongest for the two hub-dominated
    # projections; the paper's own Figure 4(b) shows a visible left-side
    # slope for the friendship graph, so it only gets the peak-sign claim.
    flat_plateau_graphs = {"dblp/article-article", "lastfm/artist-artist"}
    checks = []
    for name, entry in data.items():
        corr = dict(zip(entry["ps"], entry["correlations"]))
        plateau = [corr[p] for p in (-4.0, -3.0, -2.0, -1.0)]
        spread = max(plateau) - min(plateau)
        if name in flat_plateau_graphs:
            claim = f"{name}: peak near p ≈ -1 with stable plateau for p < 0"
            holds = _peak(entry) < 0 and spread < 0.07
        else:
            claim = f"{name}: peak at negative p (degree boosting helps)"
            holds = _peak(entry) < 0
        checks.append(
            ClaimCheck(
                "figure4",
                claim,
                f"measured peak at p = {_peak(entry):+.1f}, plateau spread "
                f"{spread:.3f}",
                holds,
            )
        )
    return checks


def _check_figure5(data) -> list[ClaimCheck]:
    checks = []
    for name, entry in data.items():
        coupling = entry["degree_significance"]
        expected_sign = -1 if entry["group"] == "A" else 1
        checks.append(
            ClaimCheck(
                "figure5",
                f"{name} (group {entry['group']}): degree–significance "
                f"correlation {'negative' if expected_sign < 0 else 'positive'}",
                f"measured {_fmt(coupling)}",
                np.sign(coupling) == expected_sign,
            )
        )
    return checks


def _sweep_peaks(entry) -> dict[str, float]:
    return {k: v["peak_p"] for k, v in entry.items() if k != "ps"}


def _check_alpha_figure(fig_id, data, predicate, claim_suffix) -> list[ClaimCheck]:
    checks = []
    for name, entry in data.items():
        peaks = _sweep_peaks(entry)
        holds = all(predicate(p) for p in peaks.values())
        summary = ", ".join(f"{k}→{v:+.1f}" for k, v in peaks.items())
        checks.append(
            ClaimCheck(
                fig_id,
                f"{name}: grouping preserved across alpha ({claim_suffix})",
                f"peaks: {summary}",
                holds,
            )
        )
    return checks


def _check_beta_figure(fig_id, data) -> list[ClaimCheck]:
    checks = []
    for name, entry in data.items():
        strength = np.asarray(entry["beta=1"]["correlations"])
        flat = bool(np.allclose(strength, strength[0], atol=1e-9))
        decoupled_best = max(
            max(entry["beta=0"]["correlations"]),
            max(entry["beta=0.25"]["correlations"]),
        )
        checks.append(
            ClaimCheck(
                fig_id,
                f"{name}: pure connection strength (beta=1) is p-invariant "
                "and not better than de-coupling-heavy settings",
                f"beta=1 flat: {flat}; best(beta≤0.25) "
                f"{decoupled_best:+.3f} vs beta=1 {strength.max():+.3f}",
                flat and decoupled_best >= strength.max() - 0.002,
            )
        )
    return checks


#: experiment id -> checker over the experiment's `.data`
CLAIM_CHECKS = {
    "table1": _check_table1,
    "table2": _check_table2,
    "table3": _check_table3,
    "figure1": _check_figure1,
    "figure2": _check_figure2,
    "figure3": _check_figure3,
    "figure4": _check_figure4,
    "figure5": _check_figure5,
    "figure6": lambda d: _check_alpha_figure(
        "figure6", d, lambda p: p > 0, "p > 0 optimal for every alpha"
    ),
    "figure7": lambda d: _check_alpha_figure(
        "figure7", d, lambda p: -1.0 <= p <= 0.5, "peak stays near p = 0"
    ),
    "figure8": lambda d: _check_alpha_figure(
        "figure8", d, lambda p: p <= 0.5, "boosted regime optimal"
    ),
    "figure9": lambda d: _check_beta_figure("figure9", d),
    "figure10": lambda d: _check_beta_figure("figure10", d),
    "figure11": lambda d: _check_beta_figure("figure11", d),
}

_HEADER = """\
# EXPERIMENTS — paper vs measured

Auto-generated by `python -m repro.experiments.report` (scale = {scale}).
Regenerate after touching datasets or algorithms.

The synthetic data substrate replaces the paper's proprietary datasets
(see DESIGN.md §2), so the reproduction targets are the paper's *shape
claims* — who wins, where peaks and crossovers sit, which curves plateau —
not absolute correlation values.  Every row below is one such claim.

| # | Experiment | Paper claim | Measured | Holds |
|---|------------|-------------|----------|-------|
"""


def generate_report(
    scale: float = 1.0, output: str | Path = "EXPERIMENTS.md"
) -> tuple[int, int]:
    """Run all experiments, check every claim, write the markdown report.

    Returns ``(claims_checked, claims_holding)``.
    """
    rows: list[str] = []
    total = 0
    holding = 0
    for experiment_id, checker in CLAIM_CHECKS.items():
        result = run_experiment(experiment_id, scale=scale)
        for check in checker(result.data):
            total += 1
            if check.holds:
                holding += 1
            verdict = "✅" if check.holds else "❌"
            rows.append(
                f"| {total} | {check.experiment_id} | {check.paper_claim} "
                f"| {check.measured} | {verdict} |"
            )
    footer = (
        f"\n**{holding} / {total} claims reproduced.**\n\n"
        "Full per-experiment reports (tables and ASCII charts) can be "
        "regenerated with `repro-experiments run-all --out results/`.\n"
    )
    text = _HEADER.format(scale=scale) + "\n".join(rows) + "\n" + footer
    Path(output).write_text(text, encoding="utf-8")
    return total, holding


if __name__ == "__main__":  # pragma: no cover
    scale_arg = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    out_arg = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    checked, held = generate_report(scale_arg, out_arg)
    print(f"{held}/{checked} claims hold -> {out_arg}")
