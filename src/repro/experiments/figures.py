"""Reproductions of the paper's Figures 1–11."""

from __future__ import annotations

import numpy as np

from repro.core.d2pr import transition_probabilities
from repro.datasets.reference import GRAPH_NAMES, PAPER_GROUPS
from repro.experiments.results import ExperimentResult, Section, ascii_chart
from repro.experiments.sweep import (
    ALPHA_GRID,
    BETA_GRID,
    P_GRID,
    CorrelationCurve,
    alpha_sweep,
    beta_sweep,
    correlation_curve,
    get_data_graph,
)
from repro.graph.base import Graph
from repro.metrics.correlation import spearman

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "GROUP_GRAPHS",
]

#: Graphs per application group, in the paper's figure order.
GROUP_GRAPHS: dict[str, tuple[str, ...]] = {
    "A": (
        "imdb/actor-actor",
        "epinions/commenter-commenter",
        "epinions/product-product",
    ),
    "B": ("dblp/author-author", "imdb/movie-movie"),
    "C": (
        "dblp/article-article",
        "lastfm/listener-listener",
        "lastfm/artist-artist",
    ),
}


def paper_figure1_graph() -> Graph:
    """The 6-node example graph of the paper's Figure 1.

    Node ``A`` has neighbours ``B`` (degree 2), ``C`` (degree 3) and ``D``
    (degree 1).
    """
    return Graph.from_edges(
        [("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("C", "E"), ("C", "F")]
    )


def figure1(scale: float = 1.0) -> ExperimentResult:
    """Figure 1: transition probabilities from node A for p ∈ {0, 2, −2}.

    The paper's reference values are (0.33, 0.33, 0.33), (0.18, 0.08, 0.74)
    and (0.29, 0.64, 0.07) for destinations (B, C, D).

    ``scale`` is accepted for harness uniformity and ignored (the example
    graph is fixed).
    """
    del scale
    graph = paper_figure1_graph()
    rows = []
    data: dict[str, dict[str, float]] = {}
    paper_values = {
        0.0: {"B": 0.33, "C": 0.33, "D": 0.33},
        2.0: {"B": 0.18, "C": 0.08, "D": 0.74},
        -2.0: {"B": 0.29, "C": 0.64, "D": 0.07},
    }
    for p in (0.0, 2.0, -2.0):
        probs = transition_probabilities(graph, "A", p)
        row = [f"{p:g}"]
        entry = {}
        for dest in ("B", "C", "D"):
            row.append(f"{probs[dest]:.2f} (paper {paper_values[p][dest]:.2f})")
            entry[dest] = probs[dest]
        rows.append(row)
        data[f"p={p:g}"] = entry
    section = Section(
        title="Transition probabilities from A to B (deg 2), C (deg 3), D (deg 1)",
        headers=["p", "A→B", "A→C", "A→D"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="figure1",
        title="Degree de-coupled transition probabilities on the sample graph",
        sections=[section],
        data=data,
        notes=(
            "Matches the paper exactly (their 0.74 for A→D at p=2 rounds "
            "0.7347 up; we print 0.73)."
        ),
    )


def _curve_section(name: str, curve: CorrelationCurve) -> Section:
    ps = np.asarray(curve.ps)
    corr = np.asarray(curve.correlations)
    rows = [
        [f"{p:+.1f}", f"{c:+.4f}"] for p, c in zip(curve.ps, curve.correlations)
    ]
    chart = ascii_chart(ps, {"degree de-coupled": corr})
    return Section(
        title=f"{name}: correlation of D2PR ranks and node significance",
        headers=["p", "spearman"],
        rows=rows,
        chart=chart,
    )


def _group_figure(
    figure_id: str,
    group: str,
    scale: float,
    title: str,
    notes: str,
) -> ExperimentResult:
    sections = []
    data: dict[str, dict[str, object]] = {}
    for name in GROUP_GRAPHS[group]:
        dg = get_data_graph(name, scale)
        curve = correlation_curve(dg)
        sections.append(_curve_section(name, curve))
        data[name] = {
            "ps": list(curve.ps),
            "correlations": list(curve.correlations),
            "peak_p": curve.peak_p,
            "correlation_at_zero": curve.at(0.0),
        }
    return ExperimentResult(
        experiment_id=figure_id,
        title=title,
        sections=sections,
        data=data,
        notes=notes,
    )


def figure2(scale: float = 1.0) -> ExperimentResult:
    """Figure 2 — Application Group A: p > 0 is optimal (penalise degrees)."""
    return _group_figure(
        "figure2",
        "A",
        scale,
        "Group A: degree penalisation helps (unweighted graphs)",
        (
            "Expected shape: peak at moderate positive p; actor-actor and "
            "commenter-commenter deteriorate when over-penalised, "
            "product-product stays stable and is negative at p = 0."
        ),
    )


def figure3(scale: float = 1.0) -> ExperimentResult:
    """Figure 3 — Application Group B: p = 0 (conventional PageRank) optimal."""
    return _group_figure(
        "figure3",
        "B",
        scale,
        "Group B: conventional PageRank is ideal (unweighted graphs)",
        (
            "Expected shape: peak at p = 0, decline on both sides, with "
            "the homogeneous neighbour degrees making p < 0 unprofitable."
        ),
    )


def figure4(scale: float = 1.0) -> ExperimentResult:
    """Figure 4 — Application Group C: p < 0 is optimal (boost degrees)."""
    return _group_figure(
        "figure4",
        "C",
        scale,
        "Group C: degree boosting helps (unweighted graphs)",
        (
            "Expected shape: peak at negative p with a stable plateau for "
            "p < 0 (dominant high-degree neighbours), sharp decline once "
            "degrees are penalised."
        ),
    )


def figure5(scale: float = 1.0) -> ExperimentResult:
    """Figure 5: correlation between node degrees and significances.

    The bar chart that explains the grouping: Group A graphs have negative
    degree–significance correlation, Group B mildly positive, Group C
    strongly positive.
    """
    rows = []
    data: dict[str, dict[str, object]] = {}
    bar_scale = 40
    for name in GRAPH_NAMES:
        dg = get_data_graph(name, scale)
        corr = spearman(dg.graph.degree_vector(), dg.significance_vector())
        bar_len = int(round(abs(corr) * bar_scale))
        bar = ("-" if corr < 0 else "+") * max(bar_len, 1)
        rows.append([name, PAPER_GROUPS[name], f"{corr:+.4f}", bar])
        data[name] = {"group": PAPER_GROUPS[name], "degree_significance": corr}
    section = Section(
        title="Correlation between node degree and application significance",
        headers=["data graph", "group", "spearman", "bar"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="figure5",
        title="Correlations between node degrees and significances",
        sections=[section],
        data=data,
        notes=(
            "Group A bars negative, Group B small positive, Group C "
            "large positive — the paper's explanatory variable for the "
            "optimal p."
        ),
    )


def _sweep_figure(
    figure_id: str,
    group: str,
    scale: float,
    title: str,
    notes: str,
    *,
    mode: str,
) -> ExperimentResult:
    sections = []
    data: dict[str, dict[str, object]] = {}
    ps = np.asarray(P_GRID)
    for name in GROUP_GRAPHS[group]:
        dg = get_data_graph(name, scale)
        if mode == "alpha":
            curves = alpha_sweep(dg)
            label = "alpha"
        else:
            curves = beta_sweep(dg)
            label = "beta"
        headers = ["p"] + [f"{label}={key:g}" for key in curves]
        rows = []
        for i, p in enumerate(P_GRID):
            row = [f"{p:+.1f}"]
            row.extend(f"{curve.correlations[i]:+.4f}" for curve in curves.values())
            rows.append(row)
        chart = ascii_chart(
            ps,
            {
                f"{label}={key:g}": np.asarray(curve.correlations)
                for key, curve in curves.items()
            },
        )
        sections.append(
            Section(
                title=f"{name} ({'weighted' if mode == 'beta' else 'unweighted'})",
                headers=headers,
                rows=rows,
                chart=chart,
            )
        )
        data[name] = {
            f"{label}={key:g}": {
                "correlations": list(curve.correlations),
                "peak_p": curve.peak_p,
            }
            for key, curve in curves.items()
        }
        data[name]["ps"] = list(P_GRID)
    return ExperimentResult(
        experiment_id=figure_id,
        title=title,
        sections=sections,
        data=data,
        notes=notes,
    )


def figure6(scale: float = 1.0) -> ExperimentResult:
    """Figure 6 — Group A under different residual probabilities α."""
    return _sweep_figure(
        "figure6",
        "A",
        scale,
        "Relationship between p and alpha, application group A",
        (
            "The paper: grouping is preserved across alpha; lower alpha "
            "gives the best correlations near the optimal p for "
            "actor-actor and commenter-commenter, while product-product "
            "prefers longer walks (larger alpha)."
        ),
        mode="alpha",
    )


def figure7(scale: float = 1.0) -> ExperimentResult:
    """Figure 7 — Group B under different residual probabilities α."""
    return _sweep_figure(
        "figure7",
        "B",
        scale,
        "Relationship between p and alpha, application group B",
        (
            "The paper: larger alpha helps near p = 0; for |p| >> 0 the "
            "ordering inverts and smaller alpha is safer."
        ),
        mode="alpha",
    )


def figure8(scale: float = 1.0) -> ExperimentResult:
    """Figure 8 — Group C under different residual probabilities α."""
    return _sweep_figure(
        "figure8",
        "C",
        scale,
        "Relationship between p and alpha, application group C",
        (
            "The paper: larger alpha gives the highest correlations for "
            "p < 0; past p ≈ 0.5 the benefit inverts."
        ),
        mode="alpha",
    )


def figure9(scale: float = 1.0) -> ExperimentResult:
    """Figure 9 — Group A on weighted graphs, β sweep."""
    return _sweep_figure(
        "figure9",
        "A",
        scale,
        "Relationship between p and beta (weighted graphs), group A",
        (
            "The paper: degree de-coupling (beta < 1) beats pure "
            "connection strength (beta = 1); the more weight connection "
            "strength gets, the larger the optimal p."
        ),
        mode="beta",
    )


def figure10(scale: float = 1.0) -> ExperimentResult:
    """Figure 10 — Group B on weighted graphs, β sweep."""
    return _sweep_figure(
        "figure10",
        "B",
        scale,
        "Relationship between p and beta (weighted graphs), group B",
        (
            "The paper: beta ≈ 0 with p ≈ 0 performs well; movie-movie "
            "peaks with mild penalisation at high beta."
        ),
        mode="beta",
    )


def figure11(scale: float = 1.0) -> ExperimentResult:
    """Figure 11 — Group C on weighted graphs, β sweep."""
    return _sweep_figure(
        "figure11",
        "C",
        scale,
        "Relationship between p and beta (weighted graphs), group C",
        (
            "The paper: connection strength is good but not optimal; the "
            "best overall correlations use beta ∈ {0, 0.25} with degree "
            "boosting."
        ),
        mode="beta",
    )
