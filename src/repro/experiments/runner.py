"""Experiment registry and runner.

Maps experiment ids (``table1`` … ``table3``, ``figure1`` … ``figure11``)
to the functions reproducing them, runs them at a chosen scale, and writes
text reports.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.extensions import (
    ext_centrality,
    ext_covertime,
    ext_directed,
    ext_robustness,
    ext_spam,
)
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.tables import table1, table2, table3

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "experiment_ids"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    # extension experiments (beyond the paper's evaluation; DESIGN.md §4)
    "ext-centrality": ext_centrality,
    "ext-covertime": ext_covertime,
    "ext-spam": ext_spam,
    "ext-robustness": ext_robustness,
    "ext-directed": ext_directed,
}


def experiment_ids() -> list[str]:
    """All known experiment ids, tables first."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, *, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id.

    Raises
    ------
    ExperimentError
        If the id is unknown.
    """
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return fn(scale)


def run_all(
    *,
    scale: float = 1.0,
    out_dir: str | Path | None = None,
    ids: list[str] | None = None,
) -> dict[str, ExperimentResult]:
    """Run several (default: all) experiments, optionally writing reports.

    Returns ``{experiment_id: result}``; when ``out_dir`` is given, each
    result is also written to ``<out_dir>/<id>.txt``.
    """
    results: dict[str, ExperimentResult] = {}
    selected = ids if ids is not None else experiment_ids()
    for experiment_id in selected:
        results[experiment_id] = run_experiment(experiment_id, scale=scale)
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        for experiment_id, result in results.items():
            (out_path / f"{experiment_id}.txt").write_text(
                result.to_text(), encoding="utf-8"
            )
    return results
