"""Extension experiments beyond the paper's evaluation.

Four studies the paper motivates but does not run:

* ``ext-centrality`` — how do classical significance measures (degree,
  betweenness, closeness, clustering/cohesion, HITS) compare against tuned
  D2PR on the paper's applications?  (§1 of the paper lists them as the
  alternatives.)
* ``ext-covertime`` — related work [11] uses degree-biased walks to cover
  graphs quickly; measures cover time as a function of ``p``.
* ``ext-spam`` — related work §2.2 discusses rank manipulation; measures
  how much a link farm boosts a target under different ``p``.
* ``ext-robustness`` — how stable are the correlation curve and its peak
  when edges are dropped/rewired and significances re-measured with noise?
"""

from __future__ import annotations

import numpy as np

from repro.core.d2pr import d2pr
from repro.core.hits import hits
from repro.core.manipulation import rank_boost_from_farm
from repro.core.walkers import estimate_cover_time
from repro.datasets.perturb import perturbed_copy
from repro.datasets.trust_network import build_trust_network
from repro.experiments.results import ExperimentResult, Section
from repro.experiments.sweep import correlation_curve, get_data_graph
from repro.graph.centrality import (
    betweenness_centrality,
    closeness_centrality,
    clustering_coefficient,
)
from repro.graph.generators import barabasi_albert
from repro.metrics.correlation import spearman
from repro.recsys.recommender import D2PRRecommender, RecommenderConfig

__all__ = [
    "ext_centrality",
    "ext_covertime",
    "ext_spam",
    "ext_robustness",
    "ext_directed",
]

#: One representative graph per application group.
_REPRESENTATIVES = (
    "imdb/actor-actor",
    "dblp/author-author",
    "lastfm/listener-listener",
)


def ext_centrality(scale: float = 0.5) -> ExperimentResult:
    """Classical centralities vs tuned D2PR on one graph per group."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for name in _REPRESENTATIVES:
        dg = get_data_graph(name, scale)
        graph = dg.graph
        sig = dg.significance_vector()
        measures = {
            "degree": graph.degree_vector(),
            "betweenness": betweenness_centrality(graph),
            "closeness": closeness_centrality(graph),
            "clustering": clustering_coefficient(graph),
            "eigen (HITS)": hits(graph).authorities.values,
        }
        correlations = {
            label: spearman(values, sig) for label, values in measures.items()
        }
        rec = D2PRRecommender(config=RecommenderConfig()).fit(graph)
        best_p, curve = rec.tune_p(sig)
        correlations[f"D2PR (p={best_p:+.1f})"] = max(curve.values())

        entry = dict(correlations)
        data[name] = entry
        for label, corr in correlations.items():
            rows.append([name, dg.group, label, f"{corr:+.4f}"])

    section = Section(
        title="Spearman correlation with application significance",
        headers=["data graph", "group", "measure", "correlation"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ext-centrality",
        title="Classical centrality measures vs tuned D2PR",
        sections=[section],
        data=data,
        notes=(
            "Tuned D2PR is the only measure that stays strongly positive "
            "on every application group: each fixed measure fails at least "
            "one group (degree/HITS/closeness are *negatively* correlated "
            "on Group A).  Individual geometric measures can win on a "
            "single graph, but none adapts across groups — the paper's "
            "argument for making the degree contribution a parameter."
        ),
    )


def ext_covertime(scale: float = 0.5) -> ExperimentResult:
    """Cover time of the pure D2PR walk as a function of p.

    Related work [11] uses degree-*boosted* walks (p = −1) to locate
    high-degree vertices quickly.  For *covering the whole graph* the
    trade-off inverts: boosted walks keep revisiting hubs and reach leaves
    slowly, while moderate penalisation flattens the visit distribution
    and covers fastest (a Metropolis-like effect).
    """
    n = max(int(120 * scale), 40)
    graph = barabasi_albert(n, 3, seed=160315)
    ps = (-2.0, -1.0, 0.0, 1.0, 2.0)
    rows = []
    data: dict[str, float] = {}
    for p in ps:
        cover = estimate_cover_time(
            graph, p, trials=5, max_steps=400_000, seed=7
        )
        rows.append([f"{p:+.1f}", f"{cover:,.0f}"])
        data[f"p={p:g}"] = cover
    section = Section(
        title=f"Mean cover time on a {n}-node Barabási–Albert graph",
        headers=["p", "mean steps to visit all nodes"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ext-covertime",
        title="Cover time of the degree de-coupled walk",
        sections=[section],
        data=data,
        notes=(
            "Degree boosting (p < 0) slows full coverage dramatically — "
            "the walk keeps revisiting hubs — while moderate penalisation "
            "flattens the visit distribution and covers fastest.  Related "
            "work [11] uses the boosted regime for the *opposite* goal: "
            "finding high-degree vertices quickly."
        ),
    )


def ext_spam(scale: float = 0.5) -> ExperimentResult:
    """Link-farm rank boost as a function of p (related work §2.2)."""
    dg = get_data_graph("imdb/movie-movie", scale)
    graph = dg.graph.largest_connected_component()
    # attack a mid-ranked node
    baseline = d2pr(graph, 0.0)
    target = baseline.ranking()[len(graph) // 2]
    farm_size = max(len(graph) // 20, 5)

    ps = (-1.0, 0.0, 0.5, 1.0, 2.0)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for p in ps:
        attack = rank_boost_from_farm(graph, target, farm_size, p=p)
        rows.append(
            [
                f"{p:+.1f}",
                str(attack.rank_before),
                str(attack.rank_after),
                f"{attack.boost:+d}",
            ]
        )
        data[f"p={p:g}"] = {
            "rank_before": attack.rank_before,
            "rank_after": attack.rank_after,
            "boost": attack.boost,
        }
    section = Section(
        title=(
            f"Link farm of {farm_size} nodes attacking a mid-ranked node "
            f"({len(graph)}-node graph)"
        ),
        headers=["p", "rank before", "rank after", "boost"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ext-spam",
        title="Spam resistance: link-farm boost under degree de-coupling",
        sections=[section],
        data=data,
        notes=(
            "Under p > 0 every farm edge raises the target's degree and "
            "therefore *lowers* the weight of transitions into it — the "
            "attack is self-defeating, unlike at p <= 0."
        ),
    )


def ext_robustness(scale: float = 0.5) -> ExperimentResult:
    """Stability of the correlation curve under data perturbations."""
    ps = tuple(np.arange(-2.0, 2.01, 0.5))
    scenarios = {
        "clean": {},
        "drop 10% edges": {"drop_fraction": 0.10},
        "rewire 10% edges": {"rewire_fraction": 0.10},
        "significance noise 0.2": {"significance_sigma": 0.2},
    }
    sections = []
    data: dict[str, dict[str, object]] = {}
    for name in _REPRESENTATIVES:
        base = get_data_graph(name, scale)
        rows = []
        entry: dict[str, object] = {}
        for label, kwargs in scenarios.items():
            dg = perturbed_copy(base, seed=11, **kwargs) if kwargs else base
            curve = correlation_curve(dg, ps=ps)
            rows.append(
                [
                    label,
                    f"{curve.peak_p:+.1f}",
                    f"{curve.peak_correlation:+.4f}",
                    f"{curve.at(0.0):+.4f}",
                ]
            )
            entry[label] = {
                "peak_p": curve.peak_p,
                "peak_correlation": curve.peak_correlation,
            }
        sections.append(
            Section(
                title=f"{name} (group {base.group})",
                headers=["scenario", "peak p", "peak corr", "corr @ p=0"],
                rows=rows,
            )
        )
        data[name] = entry
    return ExperimentResult(
        experiment_id="ext-robustness",
        title="Robustness of the optimal de-coupling weight",
        sections=sections,
        data=data,
        notes=(
            "The optimal p's *sign* — the paper's application grouping — "
            "survives 10% structural noise and multiplicative significance "
            "noise on every representative graph."
        ),
    )


def ext_directed(scale: float = 0.5) -> ExperimentResult:
    """Directed D2PR on a synthetic trust network (paper §3.2.2).

    Out-degree anti-correlates with trustworthiness (non-discerning users
    spray trust statements), so penalising high out-degree destinations
    improves the ranking — the directed analogue of Group A.
    """
    n_users = max(int(500 * scale), 100)
    graph = build_trust_network(n_users)
    sig = graph.node_attr_array("significance")
    ps = tuple(np.arange(-4.0, 4.01, 0.5))
    correlations = []
    for p in ps:
        scores = d2pr(graph, float(p), tol=1e-9)
        correlations.append(spearman(scores.values, sig))

    out_corr = spearman(graph.out_degree_vector(), sig)
    in_corr = spearman(graph.in_degree_vector(), sig)
    peak_idx = int(np.argmax(correlations))
    rows = [
        [f"{p:+.1f}", f"{c:+.4f}"] for p, c in zip(ps, correlations)
    ]
    sections = [
        Section(
            title=(
                f"Directed trust network, {n_users} users: correlation of "
                "D2PR ranks with audited trustworthiness"
            ),
            headers=["p", "spearman"],
            rows=rows,
        ),
        Section(
            title="Degree couplings",
            headers=["signal", "spearman with significance"],
            rows=[
                ["out-degree (trusts issued)", f"{out_corr:+.4f}"],
                ["in-degree (trusts received)", f"{in_corr:+.4f}"],
            ],
        ),
    ]
    return ExperimentResult(
        experiment_id="ext-directed",
        title="Directed degree de-coupling on a trust network",
        sections=sections,
        data={
            "ps": list(ps),
            "correlations": correlations,
            "peak_p": float(ps[peak_idx]),
            "correlation_at_zero": correlations[ps.index(0.0)],
            "out_degree_coupling": out_corr,
            "in_degree_coupling": in_corr,
        },
        notes=(
            "Out-degree is a negative signal (§3.2.2's non-discerning "
            "connection makers), so the directed walk peaks at p > 0 — "
            "Group A semantics transfer to the directed formulation."
        ),
    )
