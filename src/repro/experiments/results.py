"""Result containers and text rendering for the experiment harness.

Every experiment (table or figure of the paper) produces an
:class:`ExperimentResult`: machine-readable data for tests and benchmarks
plus pre-formatted sections that :func:`ExperimentResult.to_text` renders as
aligned ASCII tables and, for the figure experiments, simple line charts —
the repository's stand-in for the paper's Excel charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ParameterError

__all__ = ["Section", "ExperimentResult", "render_table", "ascii_chart"]


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned, pipe-separated text table."""
    if any(len(row) != len(headers) for row in rows):
        raise ParameterError("all rows must match the header length")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


#: Symbols used to distinguish chart series.
_SERIES_MARKS = "ox*+#@%&"


def ascii_chart(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    *,
    height: int = 12,
    x_label: str = "p",
    y_label: str = "corr",
) -> str:
    """Render one or more series as a fixed-height ASCII line chart.

    Each series gets a distinct mark; the legend maps marks to labels.
    Values are scaled to the common min/max across all series so the
    relative geometry (peaks, crossovers) matches the paper's figures.
    """
    if height < 3:
        raise ParameterError(f"height must be >= 3, got {height}")
    if not series:
        raise ParameterError("at least one series is required")
    x = np.asarray(x, dtype=float)
    arrays = {}
    for label, values in series.items():
        values = np.asarray(values, dtype=float)
        if values.shape != x.shape:
            raise ParameterError(
                f"series {label!r} length {values.shape} != x {x.shape}"
            )
        arrays[label] = values

    all_values = np.concatenate(list(arrays.values()))
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * x.shape[0] for _ in range(height)]
    for series_idx, (label, values) in enumerate(arrays.items()):
        mark = _SERIES_MARKS[series_idx % len(_SERIES_MARKS)]
        for col, value in enumerate(values):
            row = int(round((hi - value) / (hi - lo) * (height - 1)))
            grid[row][col] = mark

    lines = []
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = f"{hi:+.2f} "
        elif row_idx == height - 1:
            prefix = f"{lo:+.2f} "
        else:
            prefix = " " * 6
        lines.append(prefix + "|" + " ".join(row))
    axis_ticks = "  ".join(f"{v:+.1f}" for v in x[:: max(len(x) // 6, 1)])
    lines.append(" " * 6 + "+" + "-" * (2 * x.shape[0] - 1) + f"  ({x_label})")
    lines.append(" " * 7 + axis_ticks)
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} = {label}"
        for i, label in enumerate(arrays)
    )
    lines.append(f"      legend ({y_label}): {legend}")
    return "\n".join(lines)


@dataclass
class Section:
    """One titled block of an experiment's output."""

    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[str]] = field(default_factory=list)
    chart: str = ""

    def to_text(self) -> str:
        """Render the section (table first, chart underneath)."""
        parts = [f"## {self.title}"]
        if self.headers:
            parts.append(render_table(self.headers, self.rows))
        if self.chart:
            parts.append(self.chart)
        return "\n\n".join(parts)


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    Attributes
    ----------
    experiment_id:
        Canonical id, e.g. ``"table1"`` or ``"figure2"``.
    title:
        Human title, mirroring the paper's caption.
    sections:
        Rendered blocks (tables and charts).
    data:
        Machine-readable results — what the tests and benchmarks assert on.
    notes:
        Free-text commentary (e.g. paper-vs-measured caveats).
    """

    experiment_id: str
    title: str
    sections: list[Section]
    data: dict[str, Any]
    notes: str = ""

    def to_text(self) -> str:
        """Render the full experiment as a text report."""
        parts = [f"# {self.experiment_id}: {self.title}"]
        parts.extend(section.to_text() for section in self.sections)
        if self.notes:
            parts.append(f"Notes: {self.notes}")
        return "\n\n".join(parts) + "\n"
