"""Parameter sweeps shared by the figure experiments.

The paper's evaluation protocol (§4.1): sweep the de-coupling weight
``p ∈ [−4, 4]`` in steps of 0.5; vary the residual probability
``α ∈ {0.5, 0.7, 0.75, 0.9}`` (default 0.85); vary the weighted-graph blend
``β ∈ {0, 0.25, 0.5, 0.75, 1}`` (default 0).  Every sweep point computes
D2PR scores and their Spearman correlation with the application
significance.

Every sweep is many stationary solves over one graph, so all of them run
through the batched engine (:func:`repro.core.engine.solve_many`): points
sharing a transition matrix (same ``p``/``β``) are advanced together as one
``n × K`` block — e.g. :func:`alpha_sweep` solves all four α values per
``p`` in a single sparse·dense pass — and consecutive ``p`` grid points
warm-start from each other.  ``tools/bench_perf.py`` (``sweep`` scenario)
tracks the measured speedup over the per-point loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.engine import RankQuery, solve_many
from repro.datasets.base import DataGraph
from repro.datasets.registry import load
from repro.metrics.correlation import spearman

__all__ = [
    "P_GRID",
    "ALPHA_GRID",
    "BETA_GRID",
    "DEFAULT_ALPHA",
    "CorrelationCurve",
    "correlation_curve",
    "alpha_sweep",
    "beta_sweep",
    "get_data_graph",
]

#: The paper's p grid (§4.1): −4 to 4 in steps of 0.5.
P_GRID: tuple[float, ...] = tuple(np.arange(-4.0, 4.01, 0.5))

#: Residual probabilities studied in Figures 6–8.
ALPHA_GRID: tuple[float, ...] = (0.5, 0.7, 0.75, 0.9)

#: Connection-strength blends studied in Figures 9–11.
BETA_GRID: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The paper's default residual probability.
DEFAULT_ALPHA: float = 0.85

#: Solver tolerance for experiment runs: loose enough to be fast, far below
#: the correlation differences the experiments measure.
_TOL = 1e-9


@lru_cache(maxsize=32)
def get_data_graph(name: str, scale: float) -> DataGraph:
    """Memoised dataset loader (datasets are deterministic per scale).

    **Sharing contract**: the returned :class:`DataGraph` — including its
    ``graph`` — is a single cached instance shared by every caller with the
    same ``(name, scale)``.  To keep one caller's mutations from silently
    corrupting everyone else's results, the graph is **frozen** before it
    is handed out: any structural mutation (``add_edge``,
    ``set_node_attr``, ...) raises
    :class:`~repro.errors.FrozenGraphError`.  Callers that need to modify
    the graph must take a private copy first (``dg.graph.copy()`` returns
    an unfrozen deep copy;
    :func:`repro.datasets.perturb.perturbed_copy` wraps a whole
    ``DataGraph``), or load a fresh instance via
    :func:`repro.datasets.registry.load`.
    """
    data_graph = load(name, scale=scale)
    data_graph.graph.freeze()
    return data_graph


@dataclass(frozen=True)
class CorrelationCurve:
    """Spearman correlation of D2PR ranks vs significance along a p grid."""

    ps: tuple[float, ...]
    correlations: tuple[float, ...]

    @property
    def peak_p(self) -> float:
        """The p with the highest correlation."""
        return self.ps[int(np.argmax(self.correlations))]

    @property
    def peak_correlation(self) -> float:
        """The highest correlation along the grid."""
        return float(np.max(self.correlations))

    def at(self, p: float) -> float:
        """Correlation at grid point ``p``.

        Grid points are matched with :func:`math.isclose` (relative
        tolerance 1e-9), so ``curve.at(1.5)`` finds the point even when
        the grid came from ``np.arange`` and carries float noise like
        ``1.5000000000000004``.

        Raises
        ------
        KeyError
            If ``p`` is not on the grid.
        """
        for grid_p, corr in zip(self.ps, self.correlations):
            if math.isclose(grid_p, p, rel_tol=1e-9, abs_tol=1e-12):
                return corr
        raise KeyError(f"p={p} not on the sweep grid")


def _batched_curves(
    data_graph: DataGraph,
    ps: tuple[float, ...],
    alphas: tuple[float, ...],
    betas: tuple[float, ...],
    weighted: bool,
) -> dict[tuple[float, float], CorrelationCurve]:
    """Solve the full ``(p × α × β)`` grid batched; key curves by (α, β).

    All queries go to :func:`solve_many` in one call: every distinct
    ``(p, β)`` pair is one transition matrix, all α values against that
    matrix form one batched column block, and consecutive matrices along
    the sorted grid warm-start from each other.
    """
    significance = data_graph.significance_vector()
    queries = []
    layout = []  # (alpha, beta, p) per query, aligned with results
    for beta in betas:
        for p in ps:
            for alpha in alphas:
                queries.append(
                    RankQuery(
                        p=float(p),
                        alpha=float(alpha),
                        beta=float(beta) if weighted else 0.0,
                        weighted=weighted,
                    )
                )
                layout.append((float(alpha), float(beta), float(p)))
    results = solve_many(data_graph.graph, queries, tol=_TOL)
    correlations = {
        key: spearman(scores.values, significance)
        for key, scores in zip(layout, results)
    }
    curves: dict[tuple[float, float], CorrelationCurve] = {}
    for beta in betas:
        for alpha in alphas:
            curves[(float(alpha), float(beta))] = CorrelationCurve(
                ps=tuple(ps),
                correlations=tuple(
                    correlations[(float(alpha), float(beta), float(p))]
                    for p in ps
                ),
            )
    return curves


def correlation_curve(
    data_graph: DataGraph,
    *,
    ps: tuple[float, ...] = P_GRID,
    alpha: float = DEFAULT_ALPHA,
    beta: float = 0.0,
    weighted: bool = False,
) -> CorrelationCurve:
    """Sweep ``p`` and correlate D2PR scores with node significance.

    The whole grid runs as one batched, warm-started
    :func:`~repro.core.engine.solve_many` call.
    """
    curves = _batched_curves(
        data_graph, tuple(ps), (float(alpha),), (float(beta),), weighted
    )
    return curves[(float(alpha), float(beta))]


def alpha_sweep(
    data_graph: DataGraph,
    *,
    ps: tuple[float, ...] = P_GRID,
    alphas: tuple[float, ...] = ALPHA_GRID,
    weighted: bool = False,
    beta: float = 0.0,
) -> dict[float, CorrelationCurve]:
    """Correlation curves for several residual probabilities (Figs 6–8).

    All α values share each ``p``'s transition matrix, so every grid point
    of the α dimension is one extra *column* in the batched solve, not one
    extra solve.
    """
    curves = _batched_curves(
        data_graph,
        tuple(ps),
        tuple(float(a) for a in alphas),
        (float(beta),),
        weighted,
    )
    return {
        float(alpha): curves[(float(alpha), float(beta))] for alpha in alphas
    }


def beta_sweep(
    data_graph: DataGraph,
    *,
    ps: tuple[float, ...] = P_GRID,
    betas: tuple[float, ...] = BETA_GRID,
    alpha: float = DEFAULT_ALPHA,
) -> dict[float, CorrelationCurve]:
    """Correlation curves for several blends on weighted graphs (Figs 9–11).

    Each ``(p, β)`` pair is its own transition matrix, but the whole grid
    still goes through one :func:`~repro.core.engine.solve_many` call so
    consecutive matrices warm-start from each other.
    """
    curves = _batched_curves(
        data_graph,
        tuple(ps),
        (float(alpha),),
        tuple(float(b) for b in betas),
        True,
    )
    return {float(beta): curves[(float(alpha), float(beta))] for beta in betas}
