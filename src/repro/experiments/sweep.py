"""Parameter sweeps shared by the figure experiments.

The paper's evaluation protocol (§4.1): sweep the de-coupling weight
``p ∈ [−4, 4]`` in steps of 0.5; vary the residual probability
``α ∈ {0.5, 0.7, 0.75, 0.9}`` (default 0.85); vary the weighted-graph blend
``β ∈ {0, 0.25, 0.5, 0.75, 1}`` (default 0).  Every sweep point computes
D2PR scores and their Spearman correlation with the application
significance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.d2pr import d2pr
from repro.datasets.base import DataGraph
from repro.datasets.registry import load
from repro.metrics.correlation import spearman

__all__ = [
    "P_GRID",
    "ALPHA_GRID",
    "BETA_GRID",
    "DEFAULT_ALPHA",
    "CorrelationCurve",
    "correlation_curve",
    "alpha_sweep",
    "beta_sweep",
    "get_data_graph",
]

#: The paper's p grid (§4.1): −4 to 4 in steps of 0.5.
P_GRID: tuple[float, ...] = tuple(np.arange(-4.0, 4.01, 0.5))

#: Residual probabilities studied in Figures 6–8.
ALPHA_GRID: tuple[float, ...] = (0.5, 0.7, 0.75, 0.9)

#: Connection-strength blends studied in Figures 9–11.
BETA_GRID: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The paper's default residual probability.
DEFAULT_ALPHA: float = 0.85

#: Solver tolerance for experiment runs: loose enough to be fast, far below
#: the correlation differences the experiments measure.
_TOL = 1e-9


@lru_cache(maxsize=32)
def get_data_graph(name: str, scale: float) -> DataGraph:
    """Memoised dataset loader (datasets are deterministic per scale)."""
    return load(name, scale=scale)


@dataclass(frozen=True)
class CorrelationCurve:
    """Spearman correlation of D2PR ranks vs significance along a p grid."""

    ps: tuple[float, ...]
    correlations: tuple[float, ...]

    @property
    def peak_p(self) -> float:
        """The p with the highest correlation."""
        return self.ps[int(np.argmax(self.correlations))]

    @property
    def peak_correlation(self) -> float:
        """The highest correlation along the grid."""
        return float(np.max(self.correlations))

    def at(self, p: float) -> float:
        """Correlation at grid point ``p``.

        Raises
        ------
        KeyError
            If ``p`` is not on the grid.
        """
        for grid_p, corr in zip(self.ps, self.correlations):
            if grid_p == p:
                return corr
        raise KeyError(f"p={p} not on the sweep grid")


def correlation_curve(
    data_graph: DataGraph,
    *,
    ps: tuple[float, ...] = P_GRID,
    alpha: float = DEFAULT_ALPHA,
    beta: float = 0.0,
    weighted: bool = False,
) -> CorrelationCurve:
    """Sweep ``p`` and correlate D2PR scores with node significance."""
    significance = data_graph.significance_vector()
    correlations = []
    for p in ps:
        scores = d2pr(
            data_graph.graph,
            float(p),
            alpha=alpha,
            beta=beta if weighted else 0.0,
            weighted=weighted,
            tol=_TOL,
        )
        correlations.append(spearman(scores.values, significance))
    return CorrelationCurve(ps=tuple(ps), correlations=tuple(correlations))


def alpha_sweep(
    data_graph: DataGraph,
    *,
    ps: tuple[float, ...] = P_GRID,
    alphas: tuple[float, ...] = ALPHA_GRID,
    weighted: bool = False,
    beta: float = 0.0,
) -> dict[float, CorrelationCurve]:
    """Correlation curves for several residual probabilities (Figs 6–8)."""
    return {
        alpha: correlation_curve(
            data_graph, ps=ps, alpha=alpha, beta=beta, weighted=weighted
        )
        for alpha in alphas
    }


def beta_sweep(
    data_graph: DataGraph,
    *,
    ps: tuple[float, ...] = P_GRID,
    betas: tuple[float, ...] = BETA_GRID,
    alpha: float = DEFAULT_ALPHA,
) -> dict[float, CorrelationCurve]:
    """Correlation curves for several blends on weighted graphs (Figs 9–11)."""
    return {
        beta: correlation_curve(
            data_graph, ps=ps, alpha=alpha, beta=beta, weighted=True
        )
        for beta in betas
    }
