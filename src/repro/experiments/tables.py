"""Reproductions of the paper's Tables 1–3."""

from __future__ import annotations

import numpy as np

from repro.core.d2pr import d2pr
from repro.core.pagerank import pagerank
from repro.datasets.reference import GRAPH_NAMES, PAPER_TABLE1, PAPER_TABLE3
from repro.experiments.results import ExperimentResult, Section
from repro.experiments.sweep import DEFAULT_ALPHA, get_data_graph
from repro.metrics.correlation import spearman

__all__ = ["table1", "table2", "table3"]

#: p values shown in the paper's Table 2.
_TABLE2_PS = (-4.0, -2.0, 0.0, 2.0, 4.0)


def table1(scale: float = 1.0) -> ExperimentResult:
    """Table 1: Spearman correlation between PageRank ranks and degrees.

    The paper reports 0.988 / 0.997 / 0.848 for the listener, article and
    movie graphs — evidence of the tight coupling that motivates D2PR.
    """
    rows = []
    data: dict[str, dict[str, float]] = {}
    for name in PAPER_TABLE1:
        dg = get_data_graph(name, scale)
        scores = pagerank(dg.graph, alpha=DEFAULT_ALPHA, tol=1e-9)
        degrees = dg.graph.degree_vector()
        measured = spearman(scores.values, degrees)
        paper = PAPER_TABLE1[name]
        rows.append([name, f"{paper:.3f}", f"{measured:.3f}"])
        data[name] = {"paper": paper, "measured": measured}
    section = Section(
        title="Spearman correlation between PageRank score ranks and degree ranks",
        headers=["data graph", "paper", "measured"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="table1",
        title=(
            "Correlation between node degree ranks and PageRank score ranks"
        ),
        sections=[section],
        data=data,
        notes=(
            "High positive correlations confirm the paper's premise: "
            "conventional PageRank on undirected graphs is nearly a degree "
            "ranking."
        ),
    )


def table2(scale: float = 1.0, graph_name: str = "lastfm/artist-artist") -> ExperimentResult:
    """Table 2: node ranks across de-coupling weights.

    Reproduces the paper's phenomenon on a hub-dominated sample graph: the
    highest-degree nodes rank first when ``p < 0`` and fall to the bottom
    when ``p > 0``; degree-1 nodes do the opposite.
    """
    dg = get_data_graph(graph_name, scale)
    graph = dg.graph
    degrees = graph.degree_vector()
    n = graph.number_of_nodes
    nodes = graph.nodes()

    # Two highest-degree and two lowest-degree *connected* nodes, as in the
    # paper (its sample rows are degree-883/739 hubs and degree-1 leaves;
    # isolated nodes carry no walk signal and are skipped).
    by_degree = np.argsort(-degrees, kind="stable")
    connected = [int(i) for i in by_degree if degrees[i] > 0]
    picks = [connected[0], connected[1], connected[-2], connected[-1]]

    ranks_per_p: dict[float, np.ndarray] = {}
    for p in _TABLE2_PS:
        scores = d2pr(graph, p, alpha=DEFAULT_ALPHA, tol=1e-9)
        order = np.argsort(-scores.values, kind="stable")
        ranks = np.empty(n, dtype=int)
        ranks[order] = np.arange(1, n + 1)
        ranks_per_p[p] = ranks

    rows = []
    data: dict[str, dict[str, float]] = {}
    for idx in picks:
        row = [str(nodes[idx]), str(int(degrees[idx]))]
        entry: dict[str, float] = {"degree": float(degrees[idx])}
        for p in _TABLE2_PS:
            rank = int(ranks_per_p[p][idx])
            row.append(str(rank))
            entry[f"rank@p={p:g}"] = rank
        rows.append(row)
        data[str(nodes[idx])] = entry

    section = Section(
        title=f"Ranks of extreme-degree nodes on {graph_name} (n={n})",
        headers=["node", "degree"] + [f"rank@p={p:g}" for p in _TABLE2_PS],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Ranks of graph nodes of different degrees for different p",
        sections=[section],
        data=data,
        notes=(
            "p > 0 pushes high-degree nodes down the ranking; p < 0 pulls "
            "them up — the paper's Table 2 pattern."
        ),
    )


def table3(scale: float = 1.0) -> ExperimentResult:
    """Table 3: data-set statistics, measured vs paper.

    Absolute sizes are scaled to laptop scale; the experiment reports both
    so the preserved *orderings* (which graph is densest, which has the
    most heterogeneous neighbourhoods) can be verified at a glance.
    """
    headers = [
        "data graph",
        "nodes",
        "edges",
        "avg degree",
        "degree std",
        "median nbr-degree std",
        "paper avg degree",
        "paper median nbr-degree std",
    ]
    rows = []
    data: dict[str, dict[str, float]] = {}
    for name in GRAPH_NAMES:
        dg = get_data_graph(name, scale)
        stats = dg.statistics()
        paper = PAPER_TABLE3[name]
        rows.append(
            [
                name,
                f"{stats.nodes:,}",
                f"{stats.edges:,}",
                f"{stats.average_degree:.2f}",
                f"{stats.degree_std:.2f}",
                f"{stats.median_neighbor_degree_std:.2f}",
                f"{paper.average_degree:.2f}",
                f"{paper.median_neighbor_degree_std:.2f}",
            ]
        )
        data[name] = {
            "nodes": stats.nodes,
            "edges": stats.edges,
            "average_degree": stats.average_degree,
            "degree_std": stats.degree_std,
            "median_neighbor_degree_std": stats.median_neighbor_degree_std,
            "paper_average_degree": paper.average_degree,
            "paper_median_neighbor_degree_std": paper.median_neighbor_degree_std,
        }
    section = Section(
        title="Data sets and data graphs (measured vs paper)",
        headers=headers,
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Data sets and data graphs",
        sections=[section],
        data=data,
        notes=(
            "Synthetic graphs are laptop-scale; the paper's column "
            "orderings (e.g. Group C graphs having the largest median "
            "neighbour-degree spread within their projection family) are "
            "the reproduction target, not absolute counts."
        ),
    )
