"""Command-line interface for regenerating the paper's tables and figures.

Examples
--------
List the available experiments::

    repro-experiments list

Run one experiment and print its report::

    repro-experiments run figure2

Run everything at reduced scale into a results directory::

    repro-experiments run-all --scale 0.5 --out results/
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ExperimentError
from repro.experiments.runner import experiment_ids, run_all, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the D2PR paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run = sub.add_parser("run", help="run one experiment and print it")
    run.add_argument("experiment", help="experiment id, e.g. figure2")
    run.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0)",
    )

    run_all_p = sub.add_parser("run-all", help="run all experiments")
    run_all_p.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale multiplier"
    )
    run_all_p.add_argument(
        "--out", default=None, help="directory for per-experiment .txt reports"
    )
    run_all_p.add_argument(
        "--ids",
        nargs="*",
        default=None,
        help="subset of experiment ids (default: all)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    try:
        if args.command == "run":
            start = time.perf_counter()
            result = run_experiment(args.experiment, scale=args.scale)
            print(result.to_text())
            print(f"[{time.perf_counter() - start:.1f}s]", file=sys.stderr)
            return 0
        if args.command == "run-all":
            start = time.perf_counter()
            results = run_all(scale=args.scale, out_dir=args.out, ids=args.ids)
            for experiment_id, result in results.items():
                if args.out is None:
                    print(result.to_text())
                else:
                    print(f"wrote {experiment_id} ({len(result.sections)} sections)")
            print(f"[{time.perf_counter() - start:.1f}s]", file=sys.stderr)
            return 0
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
