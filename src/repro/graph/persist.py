"""Snapshot + delta-log persistence for graphs.

Two complementary durability primitives (see ``docs/storage.md``):

* **Snapshots** — :func:`save_snapshot` writes a graph's canonical
  columnar arrays and node table to a directory in one binary pass
  (``np.save`` per array + a small ``meta.json``; node objects and
  attributes are pickled only when present — integer-indexed graphs,
  the bulk-ingestion norm, serialise without touching Python objects).
  :func:`load_snapshot` reconstructs the graph; with ``backend="mmap"``
  the edge arrays are *attached* by mapping the snapshot files directly
  (three ``mmap(2)`` calls, no body read), which is what makes a warm
  restart of a 100M-edge service cheap.
* **Delta logs** — :class:`DeltaLog` is an append-only record stream of
  :class:`~repro.graph.delta.GraphDelta` batches.  ``apply_delta(...,
  log=...)`` tees each successfully committed delta; replaying
  ``snapshot + log`` reproduces the live graph exactly (the roundtrip
  property the test suite checks against random mutation histories).

The snapshot layout is a directory::

    meta.json            format/version, directedness, counts, flags
    edges-rows.npy       canonical int64 source indices (key-sorted)
    edges-cols.npy       canonical int64 target indices
    edges-weights.npy    float64 weights
    nodes.pkl            node objects (absent for integer-range nodes)
    attrs.pkl            {name: {index: value}} (absent when empty)

Log records are length-prefixed, CRC-checked frames so a torn final
write (crash mid-append) is detected and — by default — tolerated by
:meth:`DeltaLog.replay` as "the last delta never committed".
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.graph.base import BaseGraph, DiGraph, Graph
from repro.graph.delta import GraphDelta

__all__ = [
    "DeltaLog",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "save_snapshot",
]

SNAPSHOT_FORMAT = "repro-graph-snapshot"
SNAPSHOT_VERSION = 1

_EDGE_FILES = ("edges-rows.npy", "edges-cols.npy", "edges-weights.npy")


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def save_snapshot(graph: BaseGraph, path: str | Path) -> Path:
    """Write ``graph`` to the snapshot directory ``path`` (created/overwritten).

    The canonical columnar edge arrays are written key-sorted, so a
    loaded snapshot satisfies the sorted-store invariant the streaming
    delta merge relies on.  Frozen state is recorded and restored by
    :func:`load_snapshot`.  Returns the snapshot directory.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    n = graph.number_of_nodes
    rows, cols, data = graph._canonical_edges()
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    cols = np.ascontiguousarray(cols, dtype=np.int64)
    data = np.ascontiguousarray(data, dtype=np.float64)
    keys = rows * np.int64(max(n, 1)) + cols
    if keys.size and (keys[:-1] > keys[1:]).any():
        order = np.argsort(keys, kind="stable")
        rows, cols, data = rows[order], cols[order], data[order]
    for name, arr in zip(_EDGE_FILES, (rows, cols, data)):
        np.save(path / name, arr)

    nodes = graph.nodes()
    integer_nodes = nodes == list(range(n))
    if not integer_nodes:
        with open(path / "nodes.pkl", "wb") as handle:
            pickle.dump(nodes, handle, protocol=pickle.HIGHEST_PROTOCOL)
    attrs = {
        name: dict(col) for name, col in graph._node_attrs.items() if col
    }
    if attrs:
        with open(path / "attrs.pkl", "wb") as handle:
            pickle.dump(attrs, handle, protocol=pickle.HIGHEST_PROTOCOL)

    meta = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "directed": graph.directed,
        "nodes": n,
        "edges": int(rows.shape[0]),
        "integer_nodes": integer_nodes,
        "frozen": graph.frozen,
        "has_attrs": bool(attrs),
    }
    (path / "meta.json").write_text(json.dumps(meta, indent=1))
    return path


def load_snapshot(
    path: str | Path,
    *,
    backend=None,
    restore_frozen: bool = True,
) -> Graph | DiGraph:
    """Reconstruct the graph stored by :func:`save_snapshot` at ``path``.

    ``backend`` selects the storage backend of the loaded graph (name,
    instance or class — see :mod:`repro.graph.backends`).  With the
    ``"mmap"`` backend the snapshot's edge files are attached zero-copy:
    the arrays stay on disk and page in on demand, so load time is
    independent of edge count.  ``restore_frozen=False`` returns an
    unfrozen graph even when the snapshot recorded a frozen one.
    """
    path = Path(path)
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise GraphError(f"no snapshot at {path} (missing meta.json)")
    meta = json.loads(meta_path.read_text())
    if meta.get("format") != SNAPSHOT_FORMAT:
        raise GraphError(
            f"{path} is not a graph snapshot (format={meta.get('format')!r})"
        )
    if int(meta.get("version", -1)) > SNAPSHOT_VERSION:
        raise GraphError(
            f"snapshot {path} has version {meta['version']}, newer than "
            f"this library supports ({SNAPSHOT_VERSION})"
        )

    cls = DiGraph if meta["directed"] else Graph
    graph = cls(backend=backend)
    store = graph._store
    n = int(meta["nodes"])

    if meta["integer_nodes"]:
        if n:
            graph._add_integer_nodes(n)
    else:
        with open(path / "nodes.pkl", "rb") as handle:
            nodes = pickle.load(handle)
        if len(nodes) != n:
            raise GraphError(
                f"snapshot {path} is inconsistent: meta says {n} nodes, "
                f"node table has {len(nodes)}"
            )
        graph._nodes = list(nodes)
        graph._index = {node: i for i, node in enumerate(graph._nodes)}
        store.reset_slots(n)
    if meta.get("has_attrs"):
        with open(path / "attrs.pkl", "rb") as handle:
            attrs = pickle.load(handle)
        for name, col in attrs.items():
            store.node_attrs[name] = {int(i): v for i, v in col.items()}

    num_edges = int(meta["edges"])
    if num_edges:
        mmap_mode = "r" if store.name == "mmap" else None
        arrays = tuple(
            np.load(path / name, mmap_mode=mmap_mode, allow_pickle=False)
            for name in _EDGE_FILES
        )
        if any(a.shape != (num_edges,) for a in arrays):
            raise GraphError(
                f"snapshot {path} is inconsistent: edge arrays do not "
                f"match meta edge count {num_edges}"
            )
        if mmap_mode is not None:
            # Zero-copy: the snapshot files *are* the columnar store.
            store.attach(*arrays)
        else:
            store.set_columnar(*arrays)
        graph._num_edges = num_edges
        graph._invalidate()
    if meta.get("frozen") and restore_frozen:
        graph.freeze()
    return graph


# ----------------------------------------------------------------------
# delta log
# ----------------------------------------------------------------------
_LOG_MAGIC = b"RPRDLOG1"
_REC_MAGIC = b"DREC"
_REC_HEADER = struct.Struct("<4sIQ")  # magic, crc32(payload), payload len

_ARRAY_FIELDS = (
    "insert_rows",
    "insert_cols",
    "insert_weights",
    "delete_rows",
    "delete_cols",
    "reweight_rows",
    "reweight_cols",
    "reweight_weights",
    "node_deletes",
)


def _encode_delta(delta: GraphDelta) -> bytes:
    record = {name: getattr(delta, name) for name in _ARRAY_FIELDS}
    record["node_inserts"] = delta.node_inserts
    return pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_delta(payload: bytes) -> GraphDelta:
    record = pickle.loads(payload)
    return GraphDelta(**record)


class DeltaLog:
    """Append-only, replayable log of :class:`GraphDelta` batches.

    Records are ``DREC | crc32 | length | payload`` frames after an
    8-byte file magic; :meth:`append` flushes each frame (pass
    ``durable=True`` to also ``fsync``, trading latency for
    power-failure durability).  Iteration yields the recorded deltas in
    order; :meth:`replay` applies them to a graph.  A truncated trailing
    frame — a crash mid-append — is treated as "never committed" by
    default; a corrupt CRC always raises.
    """

    def __init__(
        self, path: str | Path, *, durable: bool = False
    ) -> None:
        self.path = Path(path)
        self.durable = bool(durable)
        self._handle = None
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb") as handle:
                handle.write(_LOG_MAGIC)
        else:
            with open(self.path, "rb") as handle:
                if handle.read(len(_LOG_MAGIC)) != _LOG_MAGIC:
                    raise GraphError(
                        f"{self.path} is not a delta log (bad magic)"
                    )

    # -- writing -------------------------------------------------------
    def append(self, delta: GraphDelta) -> int:
        """Append one delta; returns the frame size in bytes."""
        if not isinstance(delta, GraphDelta):
            raise ParameterError(
                f"DeltaLog.append expects a GraphDelta, "
                f"got {type(delta).__name__}"
            )
        payload = _encode_delta(delta)
        frame = (
            _REC_HEADER.pack(_REC_MAGIC, zlib.crc32(payload), len(payload))
            + payload
        )
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(frame)
        self._handle.flush()
        if self.durable:
            import os

            os.fsync(self._handle.fileno())
        return len(frame)

    @property
    def size(self) -> int:
        """Record payload bytes on disk (0 right after :meth:`truncate`).

        ``append`` flushes every frame, so the on-disk size is current
        without closing the handle; the serving layer's log-compaction
        policy compares this against the snapshot's byte size.
        """
        try:
            return max(0, self.path.stat().st_size - len(_LOG_MAGIC))
        except FileNotFoundError:
            return 0

    def truncate(self) -> None:
        """Reset the log to empty (a checkpoint superseded its records)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.write(_LOG_MAGIC)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def records(self, *, strict: bool = False) -> list[GraphDelta]:
        """All recorded deltas, in append order.

        ``strict=True`` raises on a truncated trailing frame instead of
        treating it as an uncommitted append.
        """
        out: list[GraphDelta] = []
        with open(self.path, "rb") as handle:
            if handle.read(len(_LOG_MAGIC)) != _LOG_MAGIC:
                raise GraphError(f"{self.path} is not a delta log (bad magic)")
            while True:
                header = handle.read(_REC_HEADER.size)
                if not header:
                    break
                if len(header) < _REC_HEADER.size:
                    if strict:
                        raise GraphError(
                            f"{self.path}: truncated record header at "
                            f"offset {handle.tell() - len(header)}"
                        )
                    break
                magic, crc, length = _REC_HEADER.unpack(header)
                if magic != _REC_MAGIC:
                    raise GraphError(
                        f"{self.path}: bad record magic at offset "
                        f"{handle.tell() - _REC_HEADER.size}"
                    )
                payload = handle.read(length)
                if len(payload) < length:
                    if strict:
                        raise GraphError(
                            f"{self.path}: truncated record payload "
                            f"(wanted {length}, got {len(payload)})"
                        )
                    break
                if zlib.crc32(payload) != crc:
                    raise GraphError(
                        f"{self.path}: record CRC mismatch at offset "
                        f"{handle.tell() - length}"
                    )
                out.append(_decode_delta(payload))
        return out

    def __iter__(self):
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())

    def replay(self, graph: BaseGraph, *, strict: bool = False) -> dict:
        """Apply every recorded delta to ``graph``; returns op totals."""
        totals = {
            "records": 0,
            "inserted": 0,
            "deleted": 0,
            "reweighted": 0,
            "nodes_inserted": 0,
            "nodes_deleted": 0,
        }
        for delta in self.records(strict=strict):
            stats = graph.apply_delta(delta)
            totals["records"] += 1
            for key in (
                "inserted",
                "deleted",
                "reweighted",
                "nodes_inserted",
                "nodes_deleted",
            ):
                totals[key] += stats[key]
        return totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DeltaLog path={str(self.path)!r}>"
