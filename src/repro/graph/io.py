"""Reading and writing graphs.

Supports the two formats used throughout the repository:

* **Edge lists** (``.tsv`` / ``.txt``): one edge per line, whitespace
  separated, optional third column with the weight, ``#`` comments.  This is
  the format of the public SNAP / hetrec dumps the paper used, so users with
  access to the original data can load it directly.
* **JSON graphs**: a self-describing format that round-trips node
  attributes, weights and directedness; used to cache generated datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import GraphError
from repro.graph.base import BaseGraph, DiGraph, Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
]


def _parse_edge_line(line: str, lineno: int) -> tuple[str, str, float] | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) == 2:
        return parts[0], parts[1], 1.0
    if len(parts) == 3:
        try:
            weight = float(parts[2])
        except ValueError:
            raise GraphError(
                f"line {lineno}: third column is not a number: {parts[2]!r}"
            ) from None
        return parts[0], parts[1], weight
    raise GraphError(
        f"line {lineno}: expected 2 or 3 columns, got {len(parts)}"
    )


def read_edge_list(
    path: str | Path | TextIO,
    *,
    directed: bool = False,
) -> Graph | DiGraph:
    """Read a whitespace-separated edge list.

    Lines are ``u v`` or ``u v weight``; ``#``-prefixed lines and blank
    lines are skipped.  Node names are kept as strings.
    """
    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    rows: list[int] = []
    cols: list[int] = []
    weights: list[float] = []

    def _consume(handle: TextIO) -> None:
        # add_node is idempotent and returns the index, so it doubles as
        # the name→index mapping while preserving first-appearance order;
        # the edges themselves are ingested in one bulk call below.
        for lineno, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, lineno)
            if parsed is None:
                continue
            u, v, w = parsed
            rows.append(graph.add_node(u))
            cols.append(graph.add_node(v))
            weights.append(w)

    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            _consume(handle)
    else:
        _consume(path)
    graph.add_edges_arrays(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )
    return graph


def write_edge_list(graph: BaseGraph, path: str | Path) -> None:
    """Write ``graph`` as ``u v weight`` lines (one per edge)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.number_of_nodes} edges={graph.number_of_edges}\n")
        handle.write(f"# directed={graph.directed}\n")
        for u, v, w in graph.edges():  # type: ignore[attr-defined]
            handle.write(f"{u}\t{v}\t{w:g}\n")


def write_json_graph(graph: BaseGraph, path: str | Path) -> None:
    """Serialise ``graph`` (structure + node attributes) to JSON."""
    nodes = graph.nodes()
    payload = {
        "directed": graph.directed,
        "nodes": [
            {
                "id": node,
                "attrs": {
                    name: graph.node_attr(node, name)
                    for name in graph.attribute_names()
                    if graph.node_attr(node, name) is not None
                },
            }
            for node in nodes
        ],
        "edges": [
            {"source": u, "target": v, "weight": w}
            for u, v, w in graph.edges()  # type: ignore[attr-defined]
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def read_json_graph(path: str | Path) -> Graph | DiGraph:
    """Load a graph written by :func:`write_json_graph`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        directed = bool(payload["directed"])
        node_records = payload["nodes"]
        edge_records = payload["edges"]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed JSON graph file {path}: {exc}") from exc

    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    for record in node_records:
        graph.add_node(record["id"], **record.get("attrs", {}))
    rows = np.fromiter(
        (graph.add_node(r["source"]) for r in edge_records),
        dtype=np.int64,
        count=len(edge_records),
    )
    cols = np.fromiter(
        (graph.add_node(r["target"]) for r in edge_records),
        dtype=np.int64,
        count=len(edge_records),
    )
    weights = np.fromiter(
        (r.get("weight", 1.0) for r in edge_records),
        dtype=np.float64,
        count=len(edge_records),
    )
    graph.add_edges_arrays(rows, cols, weights)
    return graph
