"""Reading and writing graphs.

Supports the two formats used throughout the repository:

* **Edge lists** (``.tsv`` / ``.txt``): one edge per line, whitespace
  separated, optional third column with the weight, ``#`` comments.  This is
  the format of the public SNAP / hetrec dumps the paper used, so users with
  access to the original data can load it directly.
* **JSON graphs**: a self-describing format that round-trips node
  attributes, weights and directedness; used to cache generated datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import GraphError
from repro.graph.base import BaseGraph, DiGraph, Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
]


def _parse_edge_line(line: str, lineno: int) -> tuple[str, str, float] | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) == 2:
        return parts[0], parts[1], 1.0
    if len(parts) == 3:
        try:
            weight = float(parts[2])
        except ValueError:
            raise GraphError(
                f"line {lineno}: third column is not a number: {parts[2]!r}"
            ) from None
        return parts[0], parts[1], weight
    raise GraphError(
        f"line {lineno}: expected 2 or 3 columns, got {len(parts)}"
    )


def read_edge_list(
    path: str | Path | TextIO,
    *,
    directed: bool = False,
) -> Graph | DiGraph:
    """Read a whitespace-separated edge list.

    Lines are ``u v`` or ``u v weight``; ``#``-prefixed lines and blank
    lines are skipped.  Node names are kept as strings.
    """
    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    rows: list[int] = []
    cols: list[int] = []
    weights: list[float] = []

    def _consume(handle: TextIO) -> None:
        # add_node is idempotent and returns the index, so it doubles as
        # the name→index mapping while preserving first-appearance order;
        # the edges themselves are ingested in one bulk call below.
        for lineno, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, lineno)
            if parsed is None:
                continue
            u, v, w = parsed
            rows.append(graph.add_node(u))
            cols.append(graph.add_node(v))
            weights.append(w)

    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            _consume(handle)
    else:
        _consume(path)
    graph.add_edges_arrays(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )
    return graph


_WRITE_CHUNK = 65_536


def write_edge_list(graph: BaseGraph, path: str | Path) -> None:
    """Write ``graph`` as ``u v weight`` lines (one per edge).

    Streams the canonical columnar arrays in chunks — no dict
    materialisation, no per-edge ``write`` call — so dumping a
    bulk-ingested graph never pulls the whole edge list through Python
    objects at once.
    """
    path = Path(path)
    rows, cols, data = graph._canonical_edges()
    nodes = graph.nodes()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# nodes={graph.number_of_nodes} edges={graph.number_of_edges}\n"
        )
        handle.write(f"# directed={graph.directed}\n")
        for start in range(0, rows.shape[0], _WRITE_CHUNK):
            stop = start + _WRITE_CHUNK
            handle.write(
                "".join(
                    f"{nodes[i]}\t{nodes[j]}\t{w:g}\n"
                    for i, j, w in zip(
                        rows[start:stop].tolist(),
                        cols[start:stop].tolist(),
                        data[start:stop].tolist(),
                    )
                )
            )


def write_json_graph(graph: BaseGraph, path: str | Path) -> None:
    """Serialise ``graph`` (structure + node attributes) to JSON.

    Edges are read straight from the canonical columnar arrays (one
    ``tolist`` per column) and attributes from the per-name columns, so
    serialisation does no dict materialisation and no per-node
    ``node_attr`` lookups; JSON stays the small-graph interchange
    format, :func:`repro.graph.persist.save_snapshot` the bulk one.
    """
    nodes = graph.nodes()
    attr_rows: list[dict] = [{} for _ in nodes]
    for name in graph.attribute_names():
        for idx, value in graph._node_attrs[name].items():
            if value is not None:
                attr_rows[idx][name] = value
    rows, cols, data = graph._canonical_edges()
    payload = {
        "directed": graph.directed,
        "nodes": [
            {"id": node, "attrs": attrs}
            for node, attrs in zip(nodes, attr_rows)
        ],
        "edges": [
            {"source": nodes[i], "target": nodes[j], "weight": w}
            for i, j, w in zip(rows.tolist(), cols.tolist(), data.tolist())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def read_json_graph(path: str | Path) -> Graph | DiGraph:
    """Load a graph written by :func:`write_json_graph`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        directed = bool(payload["directed"])
        node_records = payload["nodes"]
        edge_records = payload["edges"]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed JSON graph file {path}: {exc}") from exc

    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    for record in node_records:
        graph.add_node(record["id"], **record.get("attrs", {}))
    # One pass over the records, resolving endpoints through the live
    # index dict (add_node only for names the node table missed) instead
    # of three generator sweeps of per-edge add_node calls.
    index = graph._index
    m = len(edge_records)
    rows = np.empty(m, dtype=np.int64)
    cols = np.empty(m, dtype=np.int64)
    weights = np.empty(m, dtype=np.float64)
    add_node = graph.add_node
    for k, record in enumerate(edge_records):
        source, target = record["source"], record["target"]
        i = index.get(source)
        rows[k] = add_node(source) if i is None else i
        j = index.get(target)
        cols[k] = add_node(target) if j is None else j
        weights[k] = record.get("weight", 1.0)
    graph.add_edges_arrays(rows, cols, weights)
    return graph
