"""Core graph data structures used across the library.

The library deliberately ships its own small graph substrate instead of
depending on :mod:`networkx`: the algorithms in :mod:`repro.core` only need
adjacency with weights, stable integer indexing and fast export to
``scipy.sparse`` matrices, and owning the data structure keeps the transition
matrix construction (the heart of the paper) self-contained and auditable.

Two classes are provided:

* :class:`Graph` — undirected, optionally weighted.
* :class:`DiGraph` — directed, optionally weighted.

Both map arbitrary hashable node objects to dense integer indices
(``0 .. n-1`` in insertion order).  All numeric kernels operate on those
indices; the mapping is exposed through :meth:`BaseGraph.index_of` and
:meth:`BaseGraph.node_at`.

Design notes
------------
Adjacency is a ``list[dict[int, float]]`` keyed by integer index.  Dicts give
O(1) edge lookup and weight updates while staying cheap to iterate for CSR
export.  Node attributes live in per-name arrays (``dict[str, list]``) so
that attribute vectors align with node indices and can be handed directly to
numpy.

Two layers sit on top of the dict adjacency to make the graph→matrix→solver
pipeline array-native:

* **Bulk ingestion** — :meth:`Graph.add_edges_arrays` /
  :meth:`Graph.from_arrays` (and the :class:`DiGraph` equivalents) accept
  numpy index/weight arrays, validate and de-duplicate them vectorised, and
  fold them into the adjacency with C-level ``dict.update`` calls instead of
  one Python call per edge.  All heavy producers (generators, IO, dataset
  builders) route through this path.
* **Invalidation-aware caching** — every structural mutation bumps a
  monotonic counter (:attr:`BaseGraph.mutation_count`) and clears a per-graph
  cache that memoises COO/CSR exports and the transition matrices derived
  from them (see :meth:`BaseGraph.cached`).  Repeated solves and parameter
  sweeps on an unmutated graph therefore never rebuild identical matrices.
  Cached arrays/matrices are shared, so callers must treat them as
  read-only; :meth:`BaseGraph.invalidate_caches` is the manual escape hatch.

See ``docs/performance.md`` for the full cache-keying and bulk-ingestion
contract.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable, Iterable, Iterator, Mapping
from itertools import chain
from typing import Any

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.errors import (
    EdgeError,
    EmptyGraphError,
    FrozenGraphError,
    NodeNotFoundError,
    ParameterError,
)

Node = Hashable

__all__ = ["Graph", "DiGraph", "Node"]


class PendingRefresh:
    """A deferred delta-aware cache patch (see :mod:`repro.graph.delta`).

    :meth:`BaseGraph.apply_delta` stores these in place of evicting cache
    entries; :meth:`BaseGraph.cached` resolves them transparently on
    first access, so the patch cost is paid only for entries a caller
    actually touches after the delta — an entry that is never read again
    costs nothing beyond holding the (aliased, immutable) plan arrays.
    """

    __slots__ = ("_build",)

    def __init__(self, build: Callable[[], Any]) -> None:
        self._build = build

    def resolve(self) -> Any:
        return self._build()


def row_segments(
    sources: np.ndarray, n_rows: int
) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
    """Group entry positions by source row for segment-wise bulk updates.

    Returns the stable sort order of ``sources`` plus ``(row, start, stop)``
    triples delimiting each occupied row's slice of the order-sorted arrays.
    Shared by the graph and bipartite bulk-ingestion paths.
    """
    order = np.argsort(sources, kind="stable")
    counts = np.bincount(sources, minlength=n_rows)
    occupied = np.flatnonzero(counts)
    stops = np.cumsum(counts[occupied])
    starts = stops - counts[occupied]
    return order, list(
        zip(occupied.tolist(), starts.tolist(), stops.tolist())
    )


class BaseGraph:
    """Shared machinery for :class:`Graph` and :class:`DiGraph`.

    Not part of the public API; use the concrete subclasses.
    """

    #: Whether edges are directed.  Set by subclasses.
    directed: bool = False

    def __init__(self, *, backend=None) -> None:
        from repro.graph.backends import resolve_backend

        self._index: dict[Node, int] = {}
        self._nodes: list[Node] = []
        # Storage engine: owns the dict adjacency (_succ/_pred views), the
        # node-attribute columns and the canonical columnar edge store.
        # ``backend`` accepts a registry name ("memory", "mmap"), an
        # instance or a class; see repro.graph.backends.
        self._store = resolve_backend(backend).bind(directed=self.directed)
        self._num_edges = 0
        # Structural version counter + derived-object cache (COO arrays,
        # CSR matrices, transition matrices).  Any mutation bumps the
        # version and clears the cache.
        self._version = 0
        self._cache: dict[tuple, Any] = {}
        # Serialises derived-object cache access so concurrent readers
        # (the serving layer's worker threads) can share one graph.
        # Crucial for PendingRefresh resolution: a deferred delta patch
        # may mutate a retained object in place exactly once — two
        # threads racing into the same first access must not both apply
        # it.  Reentrant because builders may consult the cache.
        self._cache_lock = threading.RLock()
        self._cache_hits = 0
        self._cache_misses = 0
        # Shared-instance guard: freeze() flips this and every mutator
        # raises FrozenGraphError from then on (see BaseGraph.freeze).
        self._frozen = False

    # ------------------------------------------------------------------
    # storage delegation
    # ------------------------------------------------------------------
    @property
    def backend(self):
        """The :class:`~repro.graph.backends.GraphBackend` storing this graph."""
        return self._store

    @property
    def _succ(self) -> list[dict[int, float]]:
        # _succ[i][j] = weight of edge i -> j.  For undirected graphs the
        # structure is symmetric (both directions stored).
        return self._store.succ

    @property
    def _node_attrs(self) -> dict[str, dict[int, Any]]:
        return self._store.node_attrs

    @property
    def _lazy(self) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        # Canonical columnar edge store for bulk-ingested graphs: while
        # set, the dict adjacency is empty and all edges live in these
        # de-duplicated arrays (one entry per edge; ``(lo, hi, w)`` with
        # lo < hi for undirected graphs, ``(rows, cols, w)`` for
        # directed).  Dict-style accessors call _materialize() to fold
        # them in lazily, so array-only pipelines (build -> to_csr ->
        # solve) never pay for dict construction at all.
        return self._store.columnar

    @_lazy.setter
    def _lazy(
        self, value: tuple[np.ndarray, np.ndarray, np.ndarray] | None
    ) -> None:
        if value is None:
            self._store.clear_columnar()
        else:
            self._store.set_columnar(*value)

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped on every structural mutation.

        Derived objects (CSR exports, transition matrices) are cached per
        graph and keyed implicitly by this counter: any mutation clears
        the cache, so a cached object is always consistent with the
        current structure.
        """
        return self._version

    def cached(self, key: tuple, builder: Callable[[], Any]) -> Any:
        """Return ``builder()`` memoised under ``key`` until the next mutation.

        The cache is invalidated wholesale whenever the graph structure
        changes through the classic mutators (node added, edge
        added/re-weighted, bulk ingestion), so ``key`` only needs to
        encode the *parameters* of the derived object — e.g.
        ``("d2pr", p, beta, weighted, clamp_min)`` — not the graph state.
        The streaming path (:meth:`apply_delta`) instead *refreshes*
        known entries: it stores deferred patch thunks that this method
        resolves transparently on first access, so a refreshed entry is
        always consistent with the current structure.  Cached values are
        shared between callers and must be treated as read-only.
        """
        with self._cache_lock:
            try:
                value = self._cache[key]
            except KeyError:
                self._cache_misses += 1
                value = builder()
                self._cache[key] = value
                return value
            if type(value) is PendingRefresh:
                # A delta-aware patch queued by apply_delta: materialise
                # it now (still far cheaper than builder() from scratch)
                # and keep the result for everyone else.
                value = value.resolve()
                self._cache[key] = value
            self._cache_hits += 1
            return value

    def operator_bundle(
        self, key: tuple, transition_builder: Callable[[], Any]
    ) -> Any:
        """Memoised solver-operator views of a transition built from this graph.

        Wraps the matrix returned by ``transition_builder()`` in a
        :class:`~repro.linalg.operator.LinearOperatorBundle` — the cached
        CSR-transpose / CSC views and dangling masks/targets every
        single-query solver needs — and memoises it on this graph's
        mutation-aware cache under ``("operator", *key)``.  The bundle
        therefore invalidates on exactly the same mutation-counter bumps as
        the transition caches, and mutation of a frozen graph raises
        :class:`~repro.errors.FrozenGraphError` before it could ever
        desynchronise a handed-out bundle.  ``key`` must encode the same
        parameters as the transition it wraps.
        """
        from repro.linalg.operator import LinearOperatorBundle

        return self.cached(
            ("operator", *key),
            lambda: LinearOperatorBundle.of(transition_builder()),
        )

    def shard_plan(self, n_shards: int, *, method: str = "auto"):
        """Memoised block partition of this graph's nodes into shards.

        Returns the :class:`~repro.shard.plan.ShardPlan` produced by
        :func:`~repro.shard.plan.plan_shards` over the unweighted CSR
        export, memoised on this graph's mutation-aware cache under
        ``("shard_plan", n_shards, method)``.  The plan's node relabeling
        depends only on structure, so it is shared by every sharded
        operator built at the same shard count; it is an *unrecognised*
        key for :meth:`apply_delta` and is therefore dropped (not
        refreshed) on streaming mutation — a shard layout tuned for the
        pre-delta community structure must not silently survive.
        """
        from repro.shard.plan import plan_shards

        return self.cached(
            ("shard_plan", int(n_shards), str(method)),
            lambda: plan_shards(
                self.to_csr(weighted=False), n_shards, method=method
            ),
        )

    def invalidate_caches(self) -> None:
        """Drop all cached derived objects and bump the mutation counter.

        Escape hatch for callers that mutate internals directly (nothing in
        the library does); normal mutations invalidate automatically.
        """
        self._invalidate()

    def apply_delta(self, delta, *, log=None) -> dict:
        """Apply a batched :class:`~repro.graph.delta.GraphDelta`.

        The streaming mutation path: edge inserts (upserts), deletes and
        re-weights are validated and folded into the columnar edge store
        in one vectorised pass, and — unlike the classic mutators, which
        evict the whole derived-object cache — the known cached matrices
        (COO/CSR exports, transition matrices, operator bundles) are
        **refreshed** with surgically patched replacements: only rows the
        delta actually touches are recomputed, untouched rows are
        block-copied.  ``mutation_count`` still bumps once, cached objects
        are never mutated (holders of pre-delta matrices stay consistent),
        and unrecognised cache entries are dropped.  Node-level ops
        (insert/delete) change the index space and therefore evict the
        derived-object cache wholesale instead of refreshing it.

        When ``log`` (a :class:`~repro.graph.persist.DeltaLog`) is given,
        the delta is appended to it *after* a successful apply, so the
        log replays to exactly the committed state.

        Returns a stats dict with op counts and the refreshed/dropped
        cache keys.  Raises :class:`~repro.errors.FrozenGraphError` on
        frozen (shared) graphs, :class:`~repro.errors.EdgeError` for
        deletes/re-weights of missing edges, and the usual validation
        errors for bad indices or weights.  See
        ``docs/performance.md`` ("Streaming updates") and
        ``docs/storage.md`` (delta log) for the contract.
        """
        from repro.graph.delta import apply_graph_delta

        return apply_graph_delta(self, delta, log=log)

    def _canonical_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical ``(rows, cols, weights)`` with each edge stored once.

        Unlike :meth:`edge_arrays` this may alias the internal columnar
        store — callers must not mutate the result.
        """
        if self._lazy is not None:
            return self._lazy
        rows, cols, data = self._coo_from_dicts()
        if not self.directed:
            once = rows < cols
            return rows[once], cols[once], data[once]
        return rows, cols, data

    def _canonical_pairs(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Orientation-canonical form of delta index pairs."""
        if not self.directed:
            return np.minimum(rows, cols), np.maximum(rows, cols)
        return rows, cols

    def _delta_touched(self, delta) -> tuple[np.ndarray, ...]:
        """Index arrays of rows whose adjacency/theta a delta changes."""
        if not self.directed:
            return (
                delta.insert_rows, delta.insert_cols,
                delta.delete_rows, delta.delete_cols,
                delta.reweight_rows, delta.reweight_cols,
            )
        return (delta.insert_rows, delta.delete_rows, delta.reweight_rows)

    def _set_edge_store(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        """Replace the edge store with canonical columnar arrays."""
        if self._lazy is None:
            # Dicts were materialised and now hold stale edges; reset
            # them (columnar mode keeps them empty by invariant).
            self._store.reset_slots(self.number_of_nodes)
        self._lazy = (rows, cols, data)
        self._num_edges = rows.shape[0]

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current cache size (for tests/diagnostics)."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "entries": len(self._cache),
            "version": self._version,
        }

    def _invalidate(self) -> None:
        with self._cache_lock:
            self._version += 1
            if self._cache:
                self._cache.clear()

    # ------------------------------------------------------------------
    # freezing (shared-instance protection)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether the graph rejects structural mutation (see :meth:`freeze`)."""
        return self._frozen

    def freeze(self) -> "BaseGraph":
        """Permanently reject all further mutation of this instance.

        Cached, shared graphs (e.g. the memoised dataset loader
        :func:`repro.experiments.sweep.get_data_graph`) are frozen before
        being handed out, so one caller's ``add_edge`` cannot silently
        corrupt every other caller's results.  After freezing, any
        structural mutation — node or edge insertion, re-weighting, bulk
        ingestion — and any node-attribute write raises
        :class:`~repro.errors.FrozenGraphError`.  Read access (including
        lazy materialisation of the dict adjacency) is unaffected, and
        :meth:`copy` / :meth:`subgraph` return ordinary *unfrozen* graphs
        to mutate freely.

        Freezing is idempotent and returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenGraphError(
                "graph is frozen (a shared cached instance); "
                "mutate a private graph.copy() instead"
            )

    # ------------------------------------------------------------------
    # node handling
    # ------------------------------------------------------------------
    def add_node(self, node: Node, **attrs: Any) -> int:
        """Add ``node`` (a hashable) and return its integer index.

        Adding an existing node is a no-op apart from merging ``attrs``.
        """
        self._check_mutable()
        idx = self._index.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._index[node] = idx
            self._nodes.append(node)
            self._grow_adjacency()
            self._invalidate()
        for name, value in attrs.items():
            self._node_attrs.setdefault(name, {})[idx] = value
        return idx

    def _grow_adjacency(self) -> None:
        """Append adjacency slots for one newly added node."""
        self._store.grow_slot()

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def _add_integer_nodes(self, n: int) -> None:
        """Fast path: populate an *empty* graph with nodes ``0 .. n-1``."""
        self._check_mutable()
        if self._nodes:
            raise ParameterError(
                "_add_integer_nodes requires an empty graph"
            )
        ids = range(n)
        self._nodes = list(ids)
        self._index = {i: i for i in ids}
        self._store.reset_slots(n)
        self._invalidate()

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when ``node`` is part of the graph."""
        return node in self._index

    def index_of(self, node: Node) -> int:
        """Return the dense integer index of ``node``.

        Raises
        ------
        NodeNotFoundError
            If the node has never been added.
        """
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_at(self, index: int) -> Node:
        """Return the node object stored at integer ``index``."""
        try:
            return self._nodes[index]
        except IndexError:
            raise NodeNotFoundError(index) from None

    def nodes(self) -> list[Node]:
        """Return all node objects in index order (a fresh list)."""
        return list(self._nodes)

    @property
    def number_of_nodes(self) -> int:
        """Number of nodes currently in the graph."""
        return len(self._nodes)

    @property
    def number_of_edges(self) -> int:
        """Number of edges (each undirected edge counted once)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    # ------------------------------------------------------------------
    # node attributes
    # ------------------------------------------------------------------
    def set_node_attr(self, node: Node, name: str, value: Any) -> None:
        """Attach attribute ``name=value`` to ``node``."""
        self._check_mutable()
        idx = self.index_of(node)
        self._node_attrs.setdefault(name, {})[idx] = value

    def node_attr(self, node: Node, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` of ``node`` (or ``default``)."""
        idx = self.index_of(node)
        return self._node_attrs.get(name, {}).get(idx, default)

    def node_attrs(self, node: Node) -> dict[str, Any]:
        """Return every attribute set on ``node`` as a fresh dict."""
        idx = self.index_of(node)
        return self._attrs_at(idx)

    def _attrs_at(self, idx: int) -> dict[str, Any]:
        return {
            name: values[idx]
            for name, values in self._node_attrs.items()
            if idx in values
        }

    def node_attr_array(self, name: str, default: float = np.nan) -> np.ndarray:
        """Return attribute ``name`` for every node as a float array.

        Missing values are filled with ``default``.  The array is aligned
        with node indices, which makes it directly comparable with score
        vectors returned by :mod:`repro.core`.
        """
        values = self._node_attrs.get(name, {})
        out = np.full(self.number_of_nodes, default, dtype=float)
        for idx, value in values.items():
            out[idx] = value
        return out

    def attribute_names(self) -> list[str]:
        """Names of all node attributes ever set on this graph."""
        return sorted(self._node_attrs)

    # ------------------------------------------------------------------
    # edge handling
    # ------------------------------------------------------------------
    def _require_weight(self, weight: float) -> float:
        weight = float(weight)
        if not np.isfinite(weight):
            raise EdgeError(f"edge weight must be finite, got {weight!r}")
        if weight <= 0.0:
            raise EdgeError(f"edge weight must be positive, got {weight!r}")
        return weight

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` when the edge ``u -> v`` (or ``u -- v``) exists."""
        if u not in self._index or v not in self._index:
            return False
        self._materialize()
        return self._index[v] in self._succ[self._index[u]]

    def edge_weight(self, u: Node, v: Node) -> float:
        """Return the weight of edge ``u -> v``.

        Raises
        ------
        EdgeError
            If the edge does not exist.
        """
        ui, vi = self.index_of(u), self.index_of(v)
        self._materialize()
        try:
            return self._succ[ui][vi]
        except KeyError:
            raise EdgeError(f"no edge {u!r} -> {v!r}") from None

    def neighbors(self, node: Node) -> list[Node]:
        """Return the (out-)neighbours of ``node`` as node objects."""
        idx = self.index_of(node)
        self._materialize()
        return [self._nodes[j] for j in self._succ[idx]]

    def neighbor_indices(self, index: int) -> list[int]:
        """Return (out-)neighbour integer indices of node ``index``."""
        if not 0 <= index < len(self._succ):
            raise NodeNotFoundError(index)
        self._materialize()
        return list(self._succ[index])

    # ------------------------------------------------------------------
    # bulk ingestion
    # ------------------------------------------------------------------
    def _validate_edge_arrays(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised validation shared by the bulk ingestion paths.

        Checks shapes, integer dtypes, index bounds, self-loops and weight
        positivity/finiteness in whole-array operations, mirroring the
        per-edge checks of :meth:`add_edge`.
        """
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
            raise ParameterError(
                "rows and cols must be 1-D arrays of equal length, "
                f"got shapes {rows.shape} and {cols.shape}"
            )
        if rows.size and not (
            np.issubdtype(rows.dtype, np.integer)
            and np.issubdtype(cols.dtype, np.integer)
        ):
            raise ParameterError(
                "rows and cols must be integer node indices "
                f"(got dtypes {rows.dtype}, {cols.dtype}); add nodes first "
                "and map them with index_of, or use from_arrays"
            )
        rows = rows.astype(np.int64, copy=False)
        cols = cols.astype(np.int64, copy=False)
        n = self.number_of_nodes
        if rows.size:
            low = min(int(rows.min()), int(cols.min()))
            high = max(int(rows.max()), int(cols.max()))
            if low < 0 or high >= n:
                bad = low if low < 0 else high
                raise NodeNotFoundError(bad)
            loops = rows == cols
            if loops.any():
                offender = self._nodes[int(rows[np.argmax(loops)])]
                raise EdgeError(f"self-loop on {offender!r} is not allowed")
        if weights is None:
            data = np.ones(rows.shape[0], dtype=np.float64)
        else:
            data = np.asarray(weights, dtype=np.float64)
            if data.shape != rows.shape:
                raise ParameterError(
                    f"weights must have shape {rows.shape}, got {data.shape}"
                )
            if data.size:
                if not np.isfinite(data).all():
                    raise EdgeError("edge weights must be finite")
                if (data <= 0.0).any():
                    raise EdgeError("edge weights must be positive")
        return rows, cols, data

    @staticmethod
    def _dedup_last_wins(
        keys: np.ndarray,
    ) -> np.ndarray:
        """Indices of the *last* occurrence of each unique key (key-sorted)."""
        _, first_in_reversed = np.unique(keys[::-1], return_index=True)
        return keys.shape[0] - 1 - first_in_reversed

    def _bulk_update_succ(
        self,
        adjacency: list[dict[int, float]],
        sources: np.ndarray,
        targets: np.ndarray,
        data: np.ndarray,
    ) -> None:
        """Fold ``source -> target = weight`` triples into dict adjacency.

        One ``dict.update(zip(...))`` per distinct source row: the per-entry
        work happens at C speed instead of one Python ``add_edge`` per edge.
        """
        order, segments = row_segments(sources, len(adjacency))
        targets_l = targets[order].tolist()
        data_l = data[order].tolist()
        for i, s, e in segments:
            adjacency[i].update(zip(targets_l[s:e], data_l[s:e]))

    def _entry_total(self) -> int:
        return sum(map(len, self._succ))

    def _materialize(self) -> None:
        """Fold lazily stored bulk edges into the dict adjacency.

        No-op unless the graph is in columnar mode.  Called by every
        accessor that needs dict lookups (``has_edge``, ``neighbors``,
        incremental mutation, ...); array-based exports never trigger it.
        """
        if self._lazy is None:
            return
        arrays = self._lazy
        self._lazy = None
        self._fold_arrays(*arrays)

    def _fold_arrays(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        raise NotImplementedError  # pragma: no cover - subclass hook

    @classmethod
    def from_arrays(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        nodes: Iterable[Node] | None = None,
        num_nodes: int | None = None,
        backend=None,
    ):
        """Build a graph directly from COO-style numpy arrays.

        ``nodes`` supplies node objects (indices refer to positions in the
        iterable); ``num_nodes`` creates integer nodes ``0 .. num_nodes-1``;
        with neither, integer nodes up to the largest index are created.
        ``backend`` selects the storage backend (name, instance or class;
        default in-memory — see :mod:`repro.graph.backends`).
        """
        g = cls(backend=backend)
        if nodes is not None:
            g.add_nodes_from(nodes)
        else:
            if num_nodes is None:
                rows_a = np.asarray(rows)
                cols_a = np.asarray(cols)
                num_nodes = (
                    int(max(rows_a.max(), cols_a.max())) + 1
                    if rows_a.size
                    else 0
                )
            g._add_integer_nodes(num_nodes)
        g.add_edges_arrays(rows, cols, weights)
        return g

    # ------------------------------------------------------------------
    # numpy / scipy export
    # ------------------------------------------------------------------
    def _coo_from_dicts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract (rows, cols, weights) from the dict adjacency, vectorised.

        Uses preallocated ``np.fromiter`` buffers over chained dict views
        instead of per-edge list appends.
        """
        n = self.number_of_nodes
        lengths = np.fromiter(map(len, self._succ), dtype=np.int64, count=n)
        nnz = int(lengths.sum())
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        cols = np.fromiter(
            chain.from_iterable(self._succ), dtype=np.int64, count=nnz
        )
        data = np.fromiter(
            chain.from_iterable(map(dict.values, self._succ)),
            dtype=np.float64,
            count=nnz,
        )
        return rows, cols, data

    def _coo_current(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triple of the current structure, whichever store holds it."""
        if self._lazy is not None:
            return self._coo_from_lazy(*self._lazy)
        return self._coo_from_dicts()

    def _coo_from_lazy(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError  # pragma: no cover - subclass hook

    @staticmethod
    def _freeze(*arrays: np.ndarray) -> tuple[np.ndarray, ...]:
        for arr in arrays:
            arr.setflags(write=False)
        return arrays

    def to_coo_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, weights)`` arrays of the adjacency.

        For undirected graphs both orientations of every edge are present,
        mirroring the symmetric adjacency matrix.  The arrays are cached
        until the next mutation and marked read-only; copy before writing.
        """
        return self.cached(
            ("coo",), lambda: self._freeze(*self._coo_current())
        )

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical ``(rows, cols, weights)`` with each edge listed once.

        For undirected graphs each edge appears with ``row < col``; for
        directed graphs this is identical to :meth:`to_coo_arrays`.  The
        returned arrays are fresh copies, safe to mutate.
        """
        rows, cols, data = self.to_coo_arrays()
        if not self.directed:
            once = rows < cols
            return rows[once].copy(), cols[once].copy(), data[once].copy()
        return rows.copy(), cols.copy(), data.copy()

    def to_csr(self, *, weighted: bool = True) -> sparse.csr_matrix:
        """Return the adjacency matrix as ``scipy.sparse.csr_matrix``.

        Row ``i`` holds the out-edges of node ``i`` (for undirected graphs
        the matrix is symmetric).  With ``weighted=False`` all stored
        weights are replaced by ``1.0``.  The matrix is cached until the
        next mutation and shared between callers: treat it as read-only
        (every consumer in :mod:`repro.linalg` copies before mutating).
        """
        def build() -> sparse.csr_matrix:
            n = self.number_of_nodes
            rows, cols, data = self.to_coo_arrays()
            if not weighted:
                data = np.ones_like(data)
            mat = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
            mat.sort_indices()
            return mat

        return self.cached(("csr", bool(weighted)), build)

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    def out_degree_vector(self, *, weighted: bool = False) -> np.ndarray:
        """Out-degree (or total out-weight) per node index.

        For undirected graphs this equals the ordinary degree vector.
        """
        n = self.number_of_nodes
        rows, _, data = self.to_coo_arrays()
        return np.bincount(
            rows, weights=data if weighted else None, minlength=n
        ).astype(float)

    def degree(self, node: Node) -> int:
        """Number of (out-)edges incident on ``node``."""
        self._materialize()
        return len(self._succ[self.index_of(node)])

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def require_nonempty(self) -> None:
        """Raise :class:`EmptyGraphError` when the graph has no nodes."""
        if self.number_of_nodes == 0:
            raise EmptyGraphError("operation requires a non-empty graph")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "DiGraph" if self.directed else "Graph"
        return (
            f"<{kind} nodes={self.number_of_nodes} "
            f"edges={self.number_of_edges}>"
        )


class Graph(BaseGraph):
    """An undirected, optionally weighted graph.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge("a", "b", weight=2.0)
    >>> g.degree("a")
    1
    >>> g.edge_weight("b", "a")
    2.0
    """

    directed = False

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or re-weight) the undirected edge ``u -- v``.

        Self-loops are rejected: none of the graphs studied by the paper
        contain them and they would silently distort degree statistics.
        """
        self._check_mutable()
        if u == v:
            raise EdgeError(f"self-loop on {u!r} is not allowed")
        weight = self._require_weight(weight)
        self._materialize()
        ui = self.add_node(u)
        vi = self.add_node(v)
        is_new = vi not in self._succ[ui]
        self._succ[ui][vi] = weight
        self._succ[vi][ui] = weight
        if is_new:
            self._num_edges += 1
        self._invalidate()

    def increment_edge(self, u: Node, v: Node, delta: float = 1.0) -> None:
        """Add ``delta`` to the weight of ``u -- v``, creating it if absent.

        This is the operation used by bipartite projections, where the edge
        weight counts shared affiliations.
        """
        self._check_mutable()
        if u == v:
            raise EdgeError(f"self-loop on {u!r} is not allowed")
        self._materialize()
        ui = self.add_node(u)
        vi = self.add_node(v)
        current = self._succ[ui].get(vi)
        if current is None:
            self._num_edges += 1
            current = 0.0
        new_weight = self._require_weight(current + delta)
        self._succ[ui][vi] = new_weight
        self._succ[vi][ui] = new_weight
        self._invalidate()

    def add_edges_from(
        self, edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]]
    ) -> None:
        """Add edges from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, weight=w)

    def add_edges_arrays(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Bulk-add undirected edges from integer index arrays.

        ``rows[k] -- cols[k]`` gets weight ``weights[k]`` (default 1.0).
        Indices must refer to already-added nodes (use :meth:`add_node` /
        :meth:`add_nodes_from` first, or :meth:`from_arrays`).  Duplicate
        pairs — in either orientation — keep the last weight, matching a
        sequential :meth:`add_edge` loop.  Validation, de-duplication and
        symmetrisation are vectorised; no per-edge Python calls are made.
        """
        self._check_mutable()
        rows, cols, data = self._validate_edge_arrays(rows, cols, weights)
        if rows.size == 0:
            return
        n = self.number_of_nodes
        lo = np.minimum(rows, cols)
        hi = np.maximum(rows, cols)
        if self._num_edges == 0 or self._lazy is not None:
            # Columnar fast path: merge with any previous lazy batch and
            # stay array-native — the dict adjacency is filled on demand.
            if self._lazy is not None:
                prev_lo, prev_hi, prev_w = self._lazy
                lo = np.concatenate([prev_lo, lo])
                hi = np.concatenate([prev_hi, hi])
                data = np.concatenate([prev_w, data])
            sel = self._dedup_last_wins(lo * np.int64(n) + hi)
            lo, hi, data = lo[sel], hi[sel], data[sel]
            self._lazy = (lo, hi, data)
            self._num_edges = lo.shape[0]
            self._invalidate()
        else:
            sel = self._dedup_last_wins(lo * np.int64(n) + hi)
            lo, hi, data = lo[sel], hi[sel], data[sel]
            self._fold_arrays(lo, hi, data)
            self._num_edges = self._entry_total() // 2
            self._invalidate()

    def _fold_arrays(
        self, lo: np.ndarray, hi: np.ndarray, data: np.ndarray
    ) -> None:
        self._bulk_update_succ(
            self._succ,
            np.concatenate([lo, hi]),
            np.concatenate([hi, lo]),
            np.concatenate([data, data]),
        )

    def _coo_from_lazy(
        self, lo: np.ndarray, hi: np.ndarray, data: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.concatenate([lo, hi]),
            np.concatenate([hi, lo]),
            np.concatenate([data, data]),
        )

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over edges once each as ``(u, v, weight)`` with u-index < v-index."""
        self._materialize()
        for i, nbrs in enumerate(self._succ):
            for j, w in nbrs.items():
                if i < j:
                    yield self._nodes[i], self._nodes[j], w

    def degree_vector(self, *, weighted: bool = False) -> np.ndarray:
        """Degree (or strength when ``weighted``) of every node, by index."""
        return self.out_degree_vector(weighted=weighted)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> list[list[Node]]:
        """Return connected components as lists of node objects.

        Components are sorted by decreasing size (ties broken by smallest
        member index) so ``components[0]`` is the giant component.  The
        labelling runs on the cached CSR via ``scipy.sparse.csgraph``.
        """
        n = self.number_of_nodes
        if n == 0:
            return []
        n_comp, labels = csgraph.connected_components(
            self.to_csr(weighted=False), directed=False
        )
        sizes = np.bincount(labels, minlength=n_comp)
        # Stable argsort groups members by label while keeping indices
        # ascending within each component.
        by_label = np.argsort(labels, kind="stable")
        groups = np.split(by_label, np.cumsum(sizes)[:-1])
        order = sorted(
            range(n_comp), key=lambda c: (-int(sizes[c]), int(groups[c][0]))
        )
        return [[self._nodes[i] for i in groups[c].tolist()] for c in order]

    def largest_connected_component(self) -> "Graph":
        """Return the subgraph induced by the largest connected component."""
        self.require_nonempty()
        return self.subgraph(self.connected_components()[0])

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` (attributes preserved)."""
        keep = {self.index_of(node) for node in nodes}
        kept = sorted(keep)
        sub = Graph()
        for i in kept:
            sub.add_node(self._nodes[i], **self._attrs_at(i))
        rows, cols, data = self.to_coo_arrays()
        if rows.size:
            remap = np.full(self.number_of_nodes, -1, dtype=np.int64)
            remap[kept] = np.arange(len(kept), dtype=np.int64)
            new_rows = remap[rows]
            new_cols = remap[cols]
            mask = (new_rows >= 0) & (new_cols >= 0) & (rows < cols)
            sub.add_edges_arrays(new_rows[mask], new_cols[mask], data[mask])
        return sub

    def copy(self) -> "Graph":
        """Return a deep structural copy of the graph."""
        return self.subgraph(self._nodes)

    def to_directed(self) -> "DiGraph":
        """Return a :class:`DiGraph` with both orientations of every edge."""
        d = DiGraph()
        for i, node in enumerate(self._nodes):
            d.add_node(node, **self._attrs_at(i))
        rows, cols, data = self.to_coo_arrays()
        d.add_edges_arrays(rows, cols, data)
        return d

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]],
        *,
        nodes: Iterable[Node] | None = None,
    ) -> "Graph":
        """Build a graph from an edge iterable (and optional isolated nodes)."""
        g = cls()
        if nodes is not None:
            g.add_nodes_from(nodes)
        g.add_edges_from(edges)
        return g


class DiGraph(BaseGraph):
    """A directed, optionally weighted graph.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge("a", "b")
    >>> g.out_degree("a"), g.in_degree("b")
    (1, 1)
    """

    directed = True

    @property
    def _pred(self) -> list[dict[int, float]]:
        # Reverse adjacency: _pred[j][i] = weight of edge i -> j.  The
        # backend maintains it in lock-step with _succ (grow_slot /
        # reset_slots) because the graph declared itself directed.
        return self._store.pred

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or re-weight) the directed edge ``u -> v``.

        Self-loops are rejected (see :class:`Graph`).
        """
        self._check_mutable()
        if u == v:
            raise EdgeError(f"self-loop on {u!r} is not allowed")
        weight = self._require_weight(weight)
        self._materialize()
        ui = self.add_node(u)
        vi = self.add_node(v)
        is_new = vi not in self._succ[ui]
        self._succ[ui][vi] = weight
        self._pred[vi][ui] = weight
        if is_new:
            self._num_edges += 1
        self._invalidate()

    def add_edges_from(
        self, edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]]
    ) -> None:
        """Add directed edges from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, weight=w)

    def add_edges_arrays(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Bulk-add directed edges ``rows[k] -> cols[k]`` from index arrays.

        Same contract as :meth:`Graph.add_edges_arrays`: indices must refer
        to existing nodes, duplicates keep the last weight, and all
        validation/de-duplication is vectorised.
        """
        self._check_mutable()
        rows, cols, data = self._validate_edge_arrays(rows, cols, weights)
        if rows.size == 0:
            return
        n = self.number_of_nodes
        if self._num_edges == 0 or self._lazy is not None:
            # Columnar fast path — see Graph.add_edges_arrays.
            if self._lazy is not None:
                prev_r, prev_c, prev_w = self._lazy
                rows = np.concatenate([prev_r, rows])
                cols = np.concatenate([prev_c, cols])
                data = np.concatenate([prev_w, data])
            sel = self._dedup_last_wins(rows * np.int64(n) + cols)
            rows, cols, data = rows[sel], cols[sel], data[sel]
            self._lazy = (rows, cols, data)
            self._num_edges = rows.shape[0]
            self._invalidate()
        else:
            sel = self._dedup_last_wins(rows * np.int64(n) + cols)
            rows, cols, data = rows[sel], cols[sel], data[sel]
            self._fold_arrays(rows, cols, data)
            self._num_edges = self._entry_total()
            self._invalidate()

    def _fold_arrays(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        self._bulk_update_succ(self._succ, rows, cols, data)
        self._bulk_update_succ(self._pred, cols, rows, data)

    def _coo_from_lazy(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not rows.flags.writeable:
            # Already-immutable views (mmap backend): alias them, the
            # read-only COO contract holds without a copy.
            return rows, cols, data
        return rows.copy(), cols.copy(), data.copy()

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over directed edges as ``(u, v, weight)``."""
        self._materialize()
        for i, nbrs in enumerate(self._succ):
            for j, w in nbrs.items():
                yield self._nodes[i], self._nodes[j], w

    def out_degree(self, node: Node) -> int:
        """Number of edges leaving ``node``."""
        self._materialize()
        return len(self._succ[self.index_of(node)])

    def in_degree(self, node: Node) -> int:
        """Number of edges entering ``node``."""
        self._materialize()
        return len(self._pred[self.index_of(node)])

    def in_degree_vector(self, *, weighted: bool = False) -> np.ndarray:
        """In-degree (or total in-weight) per node index."""
        n = self.number_of_nodes
        _, cols, data = self.to_coo_arrays()
        return np.bincount(
            cols, weights=data if weighted else None, minlength=n
        ).astype(float)

    def predecessors(self, node: Node) -> list[Node]:
        """Return nodes with an edge into ``node``."""
        idx = self.index_of(node)
        self._materialize()
        return [self._nodes[j] for j in self._pred[idx]]

    def dangling_mask(self) -> np.ndarray:
        """Boolean array marking nodes without outgoing edges."""
        return self.out_degree_vector() == 0.0

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes`` (attributes preserved)."""
        keep = {self.index_of(node) for node in nodes}
        kept = sorted(keep)
        sub = DiGraph()
        for i in kept:
            sub.add_node(self._nodes[i], **self._attrs_at(i))
        rows, cols, data = self.to_coo_arrays()
        if rows.size:
            remap = np.full(self.number_of_nodes, -1, dtype=np.int64)
            remap[kept] = np.arange(len(kept), dtype=np.int64)
            new_rows = remap[rows]
            new_cols = remap[cols]
            mask = (new_rows >= 0) & (new_cols >= 0)
            sub.add_edges_arrays(new_rows[mask], new_cols[mask], data[mask])
        return sub

    def copy(self) -> "DiGraph":
        """Return a deep structural copy of the graph."""
        return self.subgraph(self._nodes)

    def to_undirected(self) -> Graph:
        """Collapse directions; anti-parallel edge weights are summed."""
        g = Graph()
        for i, node in enumerate(self._nodes):
            g.add_node(node, **self._attrs_at(i))
        rows, cols, data = self.to_coo_arrays()
        if rows.size:
            lo = np.minimum(rows, cols)
            hi = np.maximum(rows, cols)
            keys = lo * np.int64(self.number_of_nodes) + hi
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=data)
            g.add_edges_arrays(
                (uniq // self.number_of_nodes).astype(np.int64),
                (uniq % self.number_of_nodes).astype(np.int64),
                sums,
            )
        return g

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]],
        *,
        nodes: Iterable[Node] | None = None,
    ) -> "DiGraph":
        """Build a digraph from an edge iterable (plus optional nodes)."""
        g = cls()
        if nodes is not None:
            g.add_nodes_from(nodes)
        g.add_edges_from(edges)
        return g


def as_mapping(graph: BaseGraph) -> Mapping[Node, list[Node]]:
    """Return a read-only ``{node: neighbours}`` view (debugging helper)."""
    return {node: graph.neighbors(node) for node in graph.nodes()}
