"""Core graph data structures used across the library.

The library deliberately ships its own small graph substrate instead of
depending on :mod:`networkx`: the algorithms in :mod:`repro.core` only need
adjacency with weights, stable integer indexing and fast export to
``scipy.sparse`` matrices, and owning the data structure keeps the transition
matrix construction (the heart of the paper) self-contained and auditable.

Two classes are provided:

* :class:`Graph` — undirected, optionally weighted.
* :class:`DiGraph` — directed, optionally weighted.

Both map arbitrary hashable node objects to dense integer indices
(``0 .. n-1`` in insertion order).  All numeric kernels operate on those
indices; the mapping is exposed through :meth:`BaseGraph.index_of` and
:meth:`BaseGraph.node_at`.

Design notes
------------
Adjacency is a ``list[dict[int, float]]`` keyed by integer index.  Dicts give
O(1) edge lookup and weight updates while staying cheap to iterate for CSR
export.  Node attributes live in per-name arrays (``dict[str, list]``) so
that attribute vectors align with node indices and can be handed directly to
numpy.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

import numpy as np
from scipy import sparse

from repro.errors import EdgeError, EmptyGraphError, NodeNotFoundError

Node = Hashable

__all__ = ["Graph", "DiGraph", "Node"]


class BaseGraph:
    """Shared machinery for :class:`Graph` and :class:`DiGraph`.

    Not part of the public API; use the concrete subclasses.
    """

    #: Whether edges are directed.  Set by subclasses.
    directed: bool = False

    def __init__(self) -> None:
        self._index: dict[Node, int] = {}
        self._nodes: list[Node] = []
        # _succ[i][j] = weight of edge i -> j.  For undirected graphs the
        # structure is symmetric (both directions stored).
        self._succ: list[dict[int, float]] = []
        self._node_attrs: dict[str, dict[int, Any]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # node handling
    # ------------------------------------------------------------------
    def add_node(self, node: Node, **attrs: Any) -> int:
        """Add ``node`` (a hashable) and return its integer index.

        Adding an existing node is a no-op apart from merging ``attrs``.
        """
        idx = self._index.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._index[node] = idx
            self._nodes.append(node)
            self._succ.append({})
        for name, value in attrs.items():
            self._node_attrs.setdefault(name, {})[idx] = value
        return idx

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when ``node`` is part of the graph."""
        return node in self._index

    def index_of(self, node: Node) -> int:
        """Return the dense integer index of ``node``.

        Raises
        ------
        NodeNotFoundError
            If the node has never been added.
        """
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_at(self, index: int) -> Node:
        """Return the node object stored at integer ``index``."""
        try:
            return self._nodes[index]
        except IndexError:
            raise NodeNotFoundError(index) from None

    def nodes(self) -> list[Node]:
        """Return all node objects in index order (a fresh list)."""
        return list(self._nodes)

    @property
    def number_of_nodes(self) -> int:
        """Number of nodes currently in the graph."""
        return len(self._nodes)

    @property
    def number_of_edges(self) -> int:
        """Number of edges (each undirected edge counted once)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    # ------------------------------------------------------------------
    # node attributes
    # ------------------------------------------------------------------
    def set_node_attr(self, node: Node, name: str, value: Any) -> None:
        """Attach attribute ``name=value`` to ``node``."""
        idx = self.index_of(node)
        self._node_attrs.setdefault(name, {})[idx] = value

    def node_attr(self, node: Node, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` of ``node`` (or ``default``)."""
        idx = self.index_of(node)
        return self._node_attrs.get(name, {}).get(idx, default)

    def node_attr_array(self, name: str, default: float = np.nan) -> np.ndarray:
        """Return attribute ``name`` for every node as a float array.

        Missing values are filled with ``default``.  The array is aligned
        with node indices, which makes it directly comparable with score
        vectors returned by :mod:`repro.core`.
        """
        values = self._node_attrs.get(name, {})
        out = np.full(self.number_of_nodes, default, dtype=float)
        for idx, value in values.items():
            out[idx] = value
        return out

    def attribute_names(self) -> list[str]:
        """Names of all node attributes ever set on this graph."""
        return sorted(self._node_attrs)

    # ------------------------------------------------------------------
    # edge handling
    # ------------------------------------------------------------------
    def _require_weight(self, weight: float) -> float:
        weight = float(weight)
        if not np.isfinite(weight):
            raise EdgeError(f"edge weight must be finite, got {weight!r}")
        if weight <= 0.0:
            raise EdgeError(f"edge weight must be positive, got {weight!r}")
        return weight

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` when the edge ``u -> v`` (or ``u -- v``) exists."""
        if u not in self._index or v not in self._index:
            return False
        return self._index[v] in self._succ[self._index[u]]

    def edge_weight(self, u: Node, v: Node) -> float:
        """Return the weight of edge ``u -> v``.

        Raises
        ------
        EdgeError
            If the edge does not exist.
        """
        ui, vi = self.index_of(u), self.index_of(v)
        try:
            return self._succ[ui][vi]
        except KeyError:
            raise EdgeError(f"no edge {u!r} -> {v!r}") from None

    def neighbors(self, node: Node) -> list[Node]:
        """Return the (out-)neighbours of ``node`` as node objects."""
        idx = self.index_of(node)
        return [self._nodes[j] for j in self._succ[idx]]

    def neighbor_indices(self, index: int) -> list[int]:
        """Return (out-)neighbour integer indices of node ``index``."""
        if not 0 <= index < len(self._succ):
            raise NodeNotFoundError(index)
        return list(self._succ[index])

    # ------------------------------------------------------------------
    # numpy / scipy export
    # ------------------------------------------------------------------
    def to_coo_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, weights)`` arrays of the adjacency.

        For undirected graphs both orientations of every edge are present,
        mirroring the symmetric adjacency matrix.
        """
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for i, nbrs in enumerate(self._succ):
            for j, w in nbrs.items():
                rows.append(i)
                cols.append(j)
                data.append(w)
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(data, dtype=np.float64),
        )

    def to_csr(self, *, weighted: bool = True) -> sparse.csr_matrix:
        """Return the adjacency matrix as ``scipy.sparse.csr_matrix``.

        Row ``i`` holds the out-edges of node ``i`` (for undirected graphs
        the matrix is symmetric).  With ``weighted=False`` all stored
        weights are replaced by ``1.0``.
        """
        n = self.number_of_nodes
        rows, cols, data = self.to_coo_arrays()
        if not weighted:
            data = np.ones_like(data)
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    def out_degree_vector(self, *, weighted: bool = False) -> np.ndarray:
        """Out-degree (or total out-weight) per node index.

        For undirected graphs this equals the ordinary degree vector.
        """
        n = self.number_of_nodes
        out = np.zeros(n, dtype=float)
        for i, nbrs in enumerate(self._succ):
            out[i] = sum(nbrs.values()) if weighted else len(nbrs)
        return out

    def degree(self, node: Node) -> int:
        """Number of (out-)edges incident on ``node``."""
        return len(self._succ[self.index_of(node)])

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def require_nonempty(self) -> None:
        """Raise :class:`EmptyGraphError` when the graph has no nodes."""
        if self.number_of_nodes == 0:
            raise EmptyGraphError("operation requires a non-empty graph")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "DiGraph" if self.directed else "Graph"
        return (
            f"<{kind} nodes={self.number_of_nodes} "
            f"edges={self.number_of_edges}>"
        )


class Graph(BaseGraph):
    """An undirected, optionally weighted graph.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge("a", "b", weight=2.0)
    >>> g.degree("a")
    1
    >>> g.edge_weight("b", "a")
    2.0
    """

    directed = False

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or re-weight) the undirected edge ``u -- v``.

        Self-loops are rejected: none of the graphs studied by the paper
        contain them and they would silently distort degree statistics.
        """
        if u == v:
            raise EdgeError(f"self-loop on {u!r} is not allowed")
        weight = self._require_weight(weight)
        ui = self.add_node(u)
        vi = self.add_node(v)
        is_new = vi not in self._succ[ui]
        self._succ[ui][vi] = weight
        self._succ[vi][ui] = weight
        if is_new:
            self._num_edges += 1

    def increment_edge(self, u: Node, v: Node, delta: float = 1.0) -> None:
        """Add ``delta`` to the weight of ``u -- v``, creating it if absent.

        This is the operation used by bipartite projections, where the edge
        weight counts shared affiliations.
        """
        if u == v:
            raise EdgeError(f"self-loop on {u!r} is not allowed")
        ui = self.add_node(u)
        vi = self.add_node(v)
        current = self._succ[ui].get(vi)
        if current is None:
            self._num_edges += 1
            current = 0.0
        new_weight = self._require_weight(current + delta)
        self._succ[ui][vi] = new_weight
        self._succ[vi][ui] = new_weight

    def add_edges_from(
        self, edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]]
    ) -> None:
        """Add edges from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, weight=w)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over edges once each as ``(u, v, weight)`` with u-index < v-index."""
        for i, nbrs in enumerate(self._succ):
            for j, w in nbrs.items():
                if i < j:
                    yield self._nodes[i], self._nodes[j], w

    def degree_vector(self, *, weighted: bool = False) -> np.ndarray:
        """Degree (or strength when ``weighted``) of every node, by index."""
        return self.out_degree_vector(weighted=weighted)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> list[list[Node]]:
        """Return connected components as lists of node objects.

        Components are sorted by decreasing size (ties broken by smallest
        member index) so ``components[0]`` is the giant component.
        """
        n = self.number_of_nodes
        seen = np.zeros(n, dtype=bool)
        components: list[list[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            members = []
            while stack:
                i = stack.pop()
                members.append(i)
                for j in self._succ[i]:
                    if not seen[j]:
                        seen[j] = True
                        stack.append(j)
            components.append(members)
        components.sort(key=lambda m: (-len(m), m[0]))
        return [[self._nodes[i] for i in sorted(m)] for m in components]

    def largest_connected_component(self) -> "Graph":
        """Return the subgraph induced by the largest connected component."""
        self.require_nonempty()
        return self.subgraph(self.connected_components()[0])

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` (attributes preserved)."""
        keep = {self.index_of(node) for node in nodes}
        sub = Graph()
        for i in sorted(keep):
            attrs = {
                name: values[i]
                for name, values in self._node_attrs.items()
                if i in values
            }
            sub.add_node(self._nodes[i], **attrs)
        for i in sorted(keep):
            for j, w in self._succ[i].items():
                if j in keep and i < j:
                    sub.add_edge(self._nodes[i], self._nodes[j], weight=w)
        return sub

    def copy(self) -> "Graph":
        """Return a deep structural copy of the graph."""
        return self.subgraph(self._nodes)

    def to_directed(self) -> "DiGraph":
        """Return a :class:`DiGraph` with both orientations of every edge."""
        d = DiGraph()
        for i, node in enumerate(self._nodes):
            attrs = {
                name: values[i]
                for name, values in self._node_attrs.items()
                if i in values
            }
            d.add_node(node, **attrs)
        for u, v, w in self.edges():
            d.add_edge(u, v, weight=w)
            d.add_edge(v, u, weight=w)
        return d

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]],
        *,
        nodes: Iterable[Node] | None = None,
    ) -> "Graph":
        """Build a graph from an edge iterable (and optional isolated nodes)."""
        g = cls()
        if nodes is not None:
            g.add_nodes_from(nodes)
        g.add_edges_from(edges)
        return g


class DiGraph(BaseGraph):
    """A directed, optionally weighted graph.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge("a", "b")
    >>> g.out_degree("a"), g.in_degree("b")
    (1, 1)
    """

    directed = True

    def __init__(self) -> None:
        super().__init__()
        self._pred: list[dict[int, float]] = []

    def add_node(self, node: Node, **attrs: Any) -> int:
        idx = super().add_node(node, **attrs)
        while len(self._pred) < len(self._nodes):
            self._pred.append({})
        return idx

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or re-weight) the directed edge ``u -> v``.

        Self-loops are rejected (see :class:`Graph`).
        """
        if u == v:
            raise EdgeError(f"self-loop on {u!r} is not allowed")
        weight = self._require_weight(weight)
        ui = self.add_node(u)
        vi = self.add_node(v)
        is_new = vi not in self._succ[ui]
        self._succ[ui][vi] = weight
        self._pred[vi][ui] = weight
        if is_new:
            self._num_edges += 1

    def add_edges_from(
        self, edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]]
    ) -> None:
        """Add directed edges from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, weight=w)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over directed edges as ``(u, v, weight)``."""
        for i, nbrs in enumerate(self._succ):
            for j, w in nbrs.items():
                yield self._nodes[i], self._nodes[j], w

    def out_degree(self, node: Node) -> int:
        """Number of edges leaving ``node``."""
        return len(self._succ[self.index_of(node)])

    def in_degree(self, node: Node) -> int:
        """Number of edges entering ``node``."""
        return len(self._pred[self.index_of(node)])

    def in_degree_vector(self, *, weighted: bool = False) -> np.ndarray:
        """In-degree (or total in-weight) per node index."""
        n = self.number_of_nodes
        out = np.zeros(n, dtype=float)
        for i, preds in enumerate(self._pred):
            out[i] = sum(preds.values()) if weighted else len(preds)
        return out

    def predecessors(self, node: Node) -> list[Node]:
        """Return nodes with an edge into ``node``."""
        idx = self.index_of(node)
        return [self._nodes[j] for j in self._pred[idx]]

    def dangling_mask(self) -> np.ndarray:
        """Boolean array marking nodes without outgoing edges."""
        return np.array([len(nbrs) == 0 for nbrs in self._succ], dtype=bool)

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes`` (attributes preserved)."""
        keep = {self.index_of(node) for node in nodes}
        sub = DiGraph()
        for i in sorted(keep):
            attrs = {
                name: values[i]
                for name, values in self._node_attrs.items()
                if i in values
            }
            sub.add_node(self._nodes[i], **attrs)
        for i in sorted(keep):
            for j, w in self._succ[i].items():
                if j in keep:
                    sub.add_edge(self._nodes[i], self._nodes[j], weight=w)
        return sub

    def copy(self) -> "DiGraph":
        """Return a deep structural copy of the graph."""
        return self.subgraph(self._nodes)

    def to_undirected(self) -> Graph:
        """Collapse directions; anti-parallel edge weights are summed."""
        g = Graph()
        for i, node in enumerate(self._nodes):
            attrs = {
                name: values[i]
                for name, values in self._node_attrs.items()
                if i in values
            }
            g.add_node(node, **attrs)
        for u, v, w in self.edges():
            g.increment_edge(u, v, delta=w)
        return g

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node] | tuple[Node, Node, float]],
        *,
        nodes: Iterable[Node] | None = None,
    ) -> "DiGraph":
        """Build a digraph from an edge iterable (plus optional nodes)."""
        g = cls()
        if nodes is not None:
            g.add_nodes_from(nodes)
        g.add_edges_from(edges)
        return g


def as_mapping(graph: BaseGraph) -> Mapping[Node, list[Node]]:
    """Return a read-only ``{node: neighbours}`` view (debugging helper)."""
    return {node: graph.neighbors(node) for node in graph.nodes()}
