"""Random graph generators.

These provide the structural substrates used by the synthetic datasets in
:mod:`repro.datasets` and by the test-suite.  Every generator takes an
explicit ``rng`` (``numpy.random.Generator``) or integer ``seed`` so that all
experiments are reproducible bit-for-bit.

Implemented models
------------------
* :func:`erdos_renyi` — classic G(n, p) (used for homogeneous-degree graphs,
  the paper's "Group B" regime where neighbour degrees are comparable).
* :func:`barabasi_albert` — preferential attachment (hub-dominated graphs,
  the paper's "Group C" regime where each node tends to have one dominant
  high-degree neighbour).
* :func:`configuration_model` — draws a simple graph whose degree sequence
  approximates a caller-supplied sequence (used to hit the Table 3 degree
  statistics directly).
* :func:`powerlaw_degree_sequence` — helper producing heavy-tailed degree
  sequences with a controlled exponent.
* :func:`random_regular` — near-regular graph via edge switching on a stub
  pairing (homogeneous degrees for ablations).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graph.base import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "configuration_model",
    "powerlaw_degree_sequence",
    "random_regular",
    "as_rng",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _node_names(n: int, prefix: str) -> list[str]:
    width = len(str(max(n - 1, 0)))
    return [f"{prefix}{i:0{width}d}" for i in range(n)]


def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: int | np.random.Generator | None = None,
    prefix: str = "n",
) -> Graph:
    """Sample a G(n, p) graph.

    Parameters
    ----------
    n:
        Number of nodes.
    p:
        Independent probability of each of the ``n(n-1)/2`` edges.
    seed:
        RNG seed or generator.
    prefix:
        Node-name prefix; nodes are ``f"{prefix}{i}"`` zero-padded.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    rng = as_rng(seed)
    names = _node_names(n, prefix)
    g = Graph()
    g.add_nodes_from(names)
    if n < 2 or p == 0.0:
        return g
    # Vectorised sampling: draw the upper triangle in one shot and ingest
    # the surviving pairs through the bulk array path.
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    g.add_edges_arrays(iu[mask], ju[mask])
    return g


def barabasi_albert(
    n: int,
    m: int,
    *,
    seed: int | np.random.Generator | None = None,
    prefix: str = "n",
) -> Graph:
    """Sample a Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` nodes, then attaches each new node to
    ``m`` distinct existing nodes chosen proportionally to their current
    degree (implemented with the standard repeated-nodes urn).
    """
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    if n <= m:
        raise ParameterError(f"n must be > m, got n={n}, m={m}")
    rng = as_rng(seed)
    names = _node_names(n, prefix)
    g = Graph()
    g.add_nodes_from(names)

    # Urn of node indices where each index appears once per incident edge.
    # The attachment loop is inherently sequential (the urn grows with each
    # edge) so it stays in Python, but the edges are collected into index
    # lists and ingested in one bulk call at the end.
    urn: list[int] = []
    src: list[int] = []
    dst: list[int] = []
    for i in range(1, m + 1):
        src.append(0)
        dst.append(i)
        urn.extend((0, i))

    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = urn[rng.integers(0, len(urn))]
            targets.add(pick)
        for t in targets:
            src.append(new)
            dst.append(t)
            urn.extend((new, t))
    g.add_edges_arrays(
        np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    )
    return g


def powerlaw_degree_sequence(
    n: int,
    exponent: float,
    *,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``n`` integer degrees from a discrete power law.

    ``P(k) ∝ k^(-exponent)`` for ``k in [min_degree, max_degree]``.  The sum
    of the sequence is forced even (required by stub pairing) by bumping a
    random entry when necessary.
    """
    if n <= 0:
        raise ParameterError(f"n must be > 0, got {n}")
    if exponent <= 1.0:
        raise ParameterError(f"exponent must be > 1, got {exponent}")
    if min_degree < 1:
        raise ParameterError(f"min_degree must be >= 1, got {min_degree}")
    rng = as_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n) * 4))
    if max_degree < min_degree:
        raise ParameterError(
            f"max_degree {max_degree} < min_degree {min_degree}"
        )
    ks = np.arange(min_degree, max_degree + 1, dtype=float)
    pmf = ks ** (-exponent)
    pmf /= pmf.sum()
    degrees = rng.choice(ks.astype(int), size=n, p=pmf)
    if degrees.sum() % 2 == 1:
        bump = rng.integers(0, n)
        degrees[bump] += 1 if degrees[bump] < max_degree else -1
    return degrees


def configuration_model(
    degrees: np.ndarray,
    *,
    seed: int | np.random.Generator | None = None,
    prefix: str = "n",
    max_tries: int = 10,
) -> Graph:
    """Sample a *simple* graph approximating a degree sequence.

    Uses stub pairing and silently drops self-loops and parallel edges, the
    standard "erased configuration model".  For heavy-tailed sequences the
    realised degrees are therefore slightly below the requested ones, which
    matches how the paper's real graphs deviate from idealised power laws.

    Parameters
    ----------
    degrees:
        Non-negative integer degree sequence; its sum must be even.
    max_tries:
        Number of reshuffles attempted to reduce dropped edges.
    """
    degrees = np.asarray(degrees, dtype=int)
    if (degrees < 0).any():
        raise ParameterError("degrees must be non-negative")
    if degrees.sum() % 2 != 0:
        raise ParameterError("sum of degrees must be even")
    rng = as_rng(seed)
    n = degrees.shape[0]
    names = _node_names(n, prefix)

    stubs = np.repeat(np.arange(n), degrees)
    # Vectorised stub pairing: normalise each stub pair to (min, max),
    # encode as a scalar key and unique-ify — self-loops and parallel
    # edges drop out without a Python-level inner loop.
    best_keys = np.empty(0, dtype=np.int64)
    for _ in range(max_tries):
        rng.shuffle(stubs)
        a, b = stubs[0::2], stubs[1::2]
        simple = a != b
        lo = np.minimum(a, b)[simple]
        hi = np.maximum(a, b)[simple]
        keys = np.unique(lo * np.int64(n) + hi)
        if keys.shape[0] > best_keys.shape[0]:
            best_keys = keys
        if best_keys.shape[0] * 2 == stubs.shape[0]:
            break

    g = Graph()
    g.add_nodes_from(names)
    g.add_edges_arrays(best_keys // n, best_keys % n)
    return g


def random_regular(
    n: int,
    d: int,
    *,
    seed: int | np.random.Generator | None = None,
    prefix: str = "n",
) -> Graph:
    """Sample a (near-)d-regular simple graph via the erased stub pairing.

    For small ``d`` relative to ``n`` the result is d-regular for almost all
    nodes; a handful may fall short when their stubs collide.
    """
    if d < 0 or d >= n:
        raise ParameterError(f"need 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ParameterError("n * d must be even")
    return configuration_model(
        np.full(n, d, dtype=int), seed=seed, prefix=prefix
    )
