"""Shortest-path utilities and path-length relatedness.

The paper's related work (§2.1) contrasts random-walk relatedness with
*path-length based* definitions ([4] HyperANF, [24] ANF): two nodes are
related if a short path connects them, regardless of how many paths there
are.  This module provides the exact (BFS-based) counterparts of those
approximate tools at laptop scale:

* :func:`bfs_distances` / :func:`all_pairs_distances` — exact hop counts;
* :func:`neighborhood_function` — ``N(h)`` = number of ordered pairs within
  distance ``h`` (the function ANF/HyperANF approximate);
* :func:`effective_diameter` — the 90th-percentile distance, the summary
  statistic those papers report;
* :func:`path_length_relatedness` — ``1 / (1 + d(u, v))``, the baseline
  relatedness measure to contrast with personalised D2PR scores;
* :func:`eccentricities` / :func:`diameter`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ParameterError
from repro.graph.base import BaseGraph, Node

__all__ = [
    "bfs_distances",
    "all_pairs_distances",
    "neighborhood_function",
    "effective_diameter",
    "path_length_relatedness",
    "eccentricities",
    "diameter",
]


def bfs_distances(graph: BaseGraph, source: Node) -> dict[Node, int]:
    """Hop distances from ``source`` to every reachable node."""
    start = graph.index_of(source)
    n = graph.number_of_nodes
    dist = np.full(n, -1, dtype=np.int64)
    dist[start] = 0
    queue: deque[int] = deque([start])
    while queue:
        v = queue.popleft()
        for w in graph.neighbor_indices(v):
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                queue.append(w)
    nodes = graph.nodes()
    return {nodes[i]: int(d) for i, d in enumerate(dist) if d >= 0}


def all_pairs_distances(graph: BaseGraph) -> np.ndarray:
    """Dense matrix of hop distances (−1 where unreachable).

    O(V·E) via repeated BFS; intended for the library's laptop-scale
    graphs.
    """
    graph.require_nonempty()
    n = graph.number_of_nodes
    out = np.full((n, n), -1, dtype=np.int64)
    for source in range(n):
        out[source, source] = 0
        queue: deque[int] = deque([source])
        while queue:
            v = queue.popleft()
            for w in graph.neighbor_indices(v):
                if out[source, w] < 0:
                    out[source, w] = out[source, v] + 1
                    queue.append(w)
    return out


def neighborhood_function(graph: BaseGraph) -> dict[int, int]:
    """Exact ``N(h)``: ordered reachable pairs within ``h`` hops.

    ``N(0) = n``; the function is non-decreasing and saturates at the
    number of ordered reachable pairs.  This is the quantity ANF [24] and
    HyperANF [4] estimate with sketches on massive graphs.
    """
    distances = all_pairs_distances(graph)
    reachable = distances >= 0
    max_h = int(distances.max()) if reachable.any() else 0
    out: dict[int, int] = {}
    for h in range(max_h + 1):
        out[h] = int(((distances >= 0) & (distances <= h)).sum())
    return out


def effective_diameter(graph: BaseGraph, quantile: float = 0.9) -> float:
    """Distance within which ``quantile`` of reachable ordered pairs fall.

    Interpolated between integer hop counts, following the ANF convention.
    """
    if not 0.0 < quantile <= 1.0:
        raise ParameterError(f"quantile must be in (0, 1], got {quantile}")
    distances = all_pairs_distances(graph)
    values = distances[(distances > 0)]
    if values.size == 0:
        return 0.0
    return float(np.quantile(values, quantile))


def path_length_relatedness(graph: BaseGraph, u: Node, v: Node) -> float:
    """Relatedness ``1 / (1 + d(u, v))``; 0.0 when unreachable.

    The pure path-length definition from the related work: it sees how
    *short* the connection is but, unlike random-walk measures, not how
    *many* connections exist.
    """
    dist = bfs_distances(graph, u)
    if v not in dist:
        graph.index_of(v)  # raise NodeNotFoundError for unknown nodes
        return 0.0
    return 1.0 / (1.0 + dist[v])


def eccentricities(graph: BaseGraph) -> dict[Node, int]:
    """Eccentricity (max finite distance) per node; −1 for isolated ones."""
    distances = all_pairs_distances(graph)
    nodes = graph.nodes()
    out: dict[Node, int] = {}
    for i, node in enumerate(nodes):
        finite = distances[i][distances[i] >= 0]
        out[node] = int(finite.max()) if finite.size > 1 else 0
    return out


def diameter(graph: BaseGraph) -> int:
    """Largest finite hop distance in the graph (0 for edgeless graphs)."""
    distances = all_pairs_distances(graph)
    return int(distances.max()) if (distances >= 0).any() else 0
