"""Classical centrality measures.

The paper's introduction (§1) situates PageRank among other topology-based
significance measures: *betweenness* [27] quantifies whether deleting a
node would disrupt the graph, *centrality/cohesion* [5] quantifies how
close a node's neighbourhood is to a clique, and eigen/random-walk methods
measure reachability.  These are implemented here both as baselines for
the extension experiments (how well does each track application
significance compared to tuned D2PR?) and as general-purpose graph tools.

* :func:`betweenness_centrality` — Brandes' exact algorithm, O(V·E) for
  unweighted graphs.
* :func:`closeness_centrality` — Wasserman-Faust normalised closeness via
  per-node BFS.
* :func:`clustering_coefficient` — local clustering (the cohesion measure:
  1.0 means the neighbourhood is a clique).
* :func:`harmonic_centrality` — the disconnected-robust variant of
  closeness.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.base import BaseGraph, Graph

__all__ = [
    "betweenness_centrality",
    "closeness_centrality",
    "harmonic_centrality",
    "clustering_coefficient",
]


def _neighbors_by_index(graph: BaseGraph) -> list[list[int]]:
    return [graph.neighbor_indices(i) for i in range(graph.number_of_nodes)]


def betweenness_centrality(
    graph: Graph, *, normalized: bool = True
) -> np.ndarray:
    """Exact shortest-path betweenness (Brandes 2001), by node index.

    For each node ``v``: the fraction of all-pairs shortest paths passing
    through ``v``.  With ``normalized=True`` values are divided by
    ``(n-1)(n-2)/2`` (undirected convention), putting them in [0, 1].

    Complexity O(V·E); intended for the laptop-scale graphs this library
    targets.
    """
    graph.require_nonempty()
    n = graph.number_of_nodes
    adjacency = _neighbors_by_index(graph)
    centrality = np.zeros(n, dtype=float)

    for source in range(n):
        # single-source shortest paths (BFS, unweighted)
        stack: list[int] = []
        predecessors: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n)  # number of shortest paths
        sigma[source] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in adjacency[v]:
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        # accumulation (back-propagation of dependencies)
        delta = np.zeros(n)
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]

    centrality /= 2.0  # undirected: each pair counted twice
    if normalized and n > 2:
        centrality /= (n - 1) * (n - 2) / 2.0
    return centrality


def _bfs_distances(adjacency: list[list[int]], source: int, n: int) -> np.ndarray:
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        v = queue.popleft()
        for w in adjacency[v]:
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def closeness_centrality(graph: Graph) -> np.ndarray:
    """Wasserman–Faust closeness, by node index.

    ``C(v) = ((r-1)/(n-1)) · ((r-1) / Σ_u d(v, u))`` where ``r`` is the
    size of ``v``'s connected component — the standard correction that
    keeps disconnected graphs comparable.  Isolated nodes get 0.
    """
    graph.require_nonempty()
    n = graph.number_of_nodes
    adjacency = _neighbors_by_index(graph)
    out = np.zeros(n, dtype=float)
    for v in range(n):
        dist = _bfs_distances(adjacency, v, n)
        reachable = dist >= 0
        r = int(reachable.sum())
        if r <= 1:
            continue
        total = float(dist[reachable].sum())
        if total > 0:
            out[v] = ((r - 1) / (n - 1)) * ((r - 1) / total)
    return out


def harmonic_centrality(graph: Graph) -> np.ndarray:
    """Harmonic centrality ``Σ_u 1/d(v, u)`` (robust to disconnection)."""
    graph.require_nonempty()
    n = graph.number_of_nodes
    adjacency = _neighbors_by_index(graph)
    out = np.zeros(n, dtype=float)
    for v in range(n):
        dist = _bfs_distances(adjacency, v, n)
        positive = dist > 0
        if positive.any():
            out[v] = float((1.0 / dist[positive]).sum())
    return out


def clustering_coefficient(graph: Graph) -> np.ndarray:
    """Local clustering coefficient (the paper's cohesion notion).

    ``C(v) = 2·T(v) / (k_v (k_v - 1))`` where ``T(v)`` counts edges among
    ``v``'s neighbours.  Nodes with degree < 2 get 0.
    """
    graph.require_nonempty()
    n = graph.number_of_nodes
    adjacency = [set(graph.neighbor_indices(i)) for i in range(n)]
    out = np.zeros(n, dtype=float)
    for v in range(n):
        nbrs = sorted(adjacency[v])
        k = len(nbrs)
        if k < 2:
            continue
        triangles = 0
        for idx, a in enumerate(nbrs):
            triangles += sum(1 for b in nbrs[idx + 1 :] if b in adjacency[a])
        out[v] = 2.0 * triangles / (k * (k - 1))
    return out
