"""Pluggable storage backends for the graph substrate.

``Graph(backend=...)`` / ``DiGraph(backend=...)`` accept a registry name
(``"memory"``, ``"mmap"``), a backend *instance*, or a backend class;
:func:`resolve_backend` is the single normalisation point.  See
``docs/storage.md`` for the contract and trade-offs.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.graph.backends.base import GraphBackend
from repro.graph.backends.memory import InMemoryBackend
from repro.graph.backends.mmapped import MMAP_DIR_PREFIX, MmapBackend

__all__ = [
    "BACKENDS",
    "GraphBackend",
    "InMemoryBackend",
    "MMAP_DIR_PREFIX",
    "MmapBackend",
    "resolve_backend",
]

#: Registry of named backends.
BACKENDS: dict[str, type[GraphBackend]] = {
    InMemoryBackend.name: InMemoryBackend,
    MmapBackend.name: MmapBackend,
}


def resolve_backend(
    spec: str | GraphBackend | type[GraphBackend] | None,
) -> GraphBackend:
    """Turn a backend spec into an unbound :class:`GraphBackend` instance."""
    if spec is None:
        return InMemoryBackend()
    if isinstance(spec, GraphBackend):
        return spec
    if isinstance(spec, type) and issubclass(spec, GraphBackend):
        return spec()
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise ParameterError(
                f"unknown graph backend {spec!r}; "
                f"expected one of {sorted(BACKENDS)}"
            ) from None
    raise ParameterError(
        f"backend must be a name, GraphBackend instance or class, "
        f"got {type(spec).__name__}"
    )
