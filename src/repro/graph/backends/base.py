"""Storage backend contract behind :class:`~repro.graph.base.BaseGraph`.

A graph instance owns its *identity* — the node objects, their dense
integer indexing and the frozen/mutation-counter bookkeeping — and
delegates *storage* to a :class:`GraphBackend`:

* the **canonical columnar edge store**: de-duplicated ``(rows, cols,
  weights)`` arrays holding one entry per edge (``lo < hi`` for
  undirected graphs) while the graph is in columnar mode;
* the **dict adjacency** (``succ``/``pred`` lists of ``{index: weight}``
  dicts) that columnar edges fold into lazily when a dict-style accessor
  is first used;
* the **node-attribute columns** (``{name: {index: value}}``).

Two implementations ship:

* :class:`~repro.graph.backends.memory.InMemoryBackend` — plain numpy
  arrays in RAM; the default and the behaviour every pre-backend release
  had.
* :class:`~repro.graph.backends.mmapped.MmapBackend` — the columnar
  arrays live in ``.npy`` files opened through ``np.load(mmap_mode=...)``
  so graphs larger than RAM page from disk, snapshots can be attached
  zero-copy, and other processes can map the same files without
  fork-inherited ``shared_memory``.

The dict adjacency and attribute columns are Python-object structures
and therefore always RAM-resident regardless of backend: materialising
them is an explicitly RAM-bound operation (array-native pipelines —
``from_arrays`` → ``to_csr`` → solve — never trigger it).  See
``docs/storage.md`` for the full contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.errors import ParameterError

__all__ = ["GraphBackend"]

#: Canonical columnar triple: (rows, cols, weights).
Columnar = tuple[np.ndarray, np.ndarray, np.ndarray]


class GraphBackend(ABC):
    """Abstract storage engine for one graph instance.

    A backend instance is single-owner: :meth:`bind` is called exactly
    once by the graph constructor (binding a backend to a second graph
    raises).  All mutation ordering, validation, freezing and cache
    invalidation stay in :class:`~repro.graph.base.BaseGraph`; the
    backend only stores what it is told.
    """

    #: Registry name of the backend ("memory", "mmap").
    name: str = "abstract"

    def __init__(self) -> None:
        # succ[i][j] = weight of edge i -> j; pred is the reverse map and
        # exists only for directed graphs (created by bind()).
        self.succ: list[dict[int, float]] = []
        self.pred: list[dict[int, float]] | None = None
        self.node_attrs: dict[str, dict[int, Any]] = {}
        self._bound = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, *, directed: bool) -> "GraphBackend":
        """Attach this backend to one graph instance (called by ``__init__``)."""
        if self._bound:
            raise ParameterError(
                "backend instance is already bound to a graph; "
                "construct a fresh backend per graph"
            )
        self._bound = True
        if directed:
            self.pred = []
        return self

    def close(self) -> None:
        """Release backend resources (files, mappings).  Idempotent."""

    # ------------------------------------------------------------------
    # adjacency slots (always RAM dicts; see module docstring)
    # ------------------------------------------------------------------
    def grow_slot(self) -> None:
        """Append adjacency slots for one newly added node."""
        self.succ.append({})
        if self.pred is not None:
            self.pred.append({})

    def reset_slots(self, n: int) -> None:
        """Replace the adjacency with ``n`` empty slots."""
        self.succ = [{} for _ in range(n)]
        if self.pred is not None:
            self.pred = [{} for _ in range(n)]

    # ------------------------------------------------------------------
    # canonical columnar edge store
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def columnar(self) -> Columnar | None:
        """The canonical edge triple, or ``None`` while in dict mode."""

    @abstractmethod
    def set_columnar(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        """Replace the columnar store with canonical arrays.

        ``rows``/``cols`` are int64, ``data`` float64, all equal-length
        1-D, de-duplicated, one entry per edge.  The backend may retain
        the arrays by reference or persist copies; callers must treat
        previously returned triples as stale after this call.
        """

    @abstractmethod
    def clear_columnar(self) -> None:
        """Leave columnar mode (edges now live in the dict adjacency)."""

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Backend identity and residency facts (for ``stats()``/logs)."""
        return {"backend": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} bound={self._bound}>"


def _as_columnar(
    rows: np.ndarray, cols: np.ndarray, data: np.ndarray
) -> Columnar:
    """Normalise a columnar triple to contiguous canonical dtypes."""
    return (
        np.ascontiguousarray(rows, dtype=np.int64),
        np.ascontiguousarray(cols, dtype=np.int64),
        np.ascontiguousarray(data, dtype=np.float64),
    )
