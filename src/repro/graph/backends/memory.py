"""The default in-RAM storage backend (pre-backend behaviour, extracted)."""

from __future__ import annotations

import numpy as np

from repro.graph.backends.base import Columnar, GraphBackend, _as_columnar

__all__ = ["InMemoryBackend"]


class InMemoryBackend(GraphBackend):
    """Columnar edge store held as plain numpy arrays in RAM.

    A pure extraction of the storage that used to live inline in
    ``BaseGraph``: :meth:`set_columnar` retains the (canonicalised)
    arrays by reference, so the zero-copy aliasing contracts of
    ``BaseGraph._canonical_edges`` and ``apply_delta`` are exactly what
    they were before the backend split.
    """

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._columnar: Columnar | None = None

    @property
    def columnar(self) -> Columnar | None:
        return self._columnar

    def set_columnar(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        self._columnar = _as_columnar(rows, cols, data)

    def clear_columnar(self) -> None:
        self._columnar = None

    def describe(self) -> dict:
        info = {"backend": self.name, "resident": "ram"}
        if self._columnar is not None:
            info["columnar_bytes"] = int(
                sum(arr.nbytes for arr in self._columnar)
            )
        return info
