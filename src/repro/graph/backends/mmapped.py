"""Memory-mapped columnar storage: edge arrays live in ``.npy`` files.

The graph's canonical ``(rows, cols, weights)`` triple is persisted to
``np.save`` files and mapped back with ``np.load(mmap_mode="r")``, so

* graphs larger than RAM page from disk on demand (the OS page cache
  keeps the hot range resident),
* a snapshot directory can be *attached* zero-copy — loading a 100M-edge
  snapshot costs three ``mmap(2)`` calls, not a read of the file bodies,
* other processes can map the same files (MAP_SHARED file mappings need
  no fork-inherited ``shared_memory`` handles, which is what lets the
  shard worker pools run under exec-spawn — see ``repro.shard.pool``).

Every mutation that rewrites the columnar store writes a fresh file
generation and unlinks the previous one; open views keep the unlinked
inodes alive (POSIX), so pre-mutation arrays handed to callers stay
valid.  Files live in a ``repro_mmap_*`` temp directory unless the
caller supplies one; ``tools/ci.sh`` fails on leaked directories.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from pathlib import Path

import numpy as np

from repro.graph.backends.base import Columnar, GraphBackend, _as_columnar

__all__ = ["MMAP_DIR_PREFIX", "MmapBackend"]

#: Temp-directory prefix; mirrored by the leak check in tools/ci.sh.
MMAP_DIR_PREFIX = "repro_mmap_"

_STEMS = ("rows", "cols", "weights")


def _cleanup(state: dict) -> None:
    """Best-effort removal of generation files (and an owned tempdir)."""
    for name in state["files"]:
        try:
            os.unlink(name)
        except OSError:
            pass
    state["files"].clear()
    owned = state.get("dir")
    if owned:
        shutil.rmtree(owned, ignore_errors=True)


class MmapBackend(GraphBackend):
    """Columnar edge store resident in memory-mapped ``.npy`` files.

    Parameters
    ----------
    directory:
        Where generation files are written.  ``None`` (default) creates a
        private ``repro_mmap_*`` temp directory that is removed when the
        backend is closed or garbage-collected; an explicit directory is
        created if missing and left in place on close (only the
        generation files themselves are deleted).
    """

    name = "mmap"

    def __init__(self, directory: str | Path | None = None) -> None:
        super().__init__()
        if directory is None:
            self.directory = Path(tempfile.mkdtemp(prefix=MMAP_DIR_PREFIX))
            owns_dir = True
        else:
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
            owns_dir = False
        self._generation = 0
        self._views: Columnar | None = None
        # Shared with the GC finalizer (which must not retain self).
        self._state: dict = {
            "files": [],
            "dir": str(self.directory) if owns_dir else None,
        }
        self._finalizer = weakref.finalize(self, _cleanup, self._state)

    # ------------------------------------------------------------------
    # columnar store
    # ------------------------------------------------------------------
    @property
    def columnar(self) -> Columnar | None:
        return self._views

    def set_columnar(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        arrays = _as_columnar(rows, cols, data)
        if arrays[0].size == 0:
            # A zero-length mmap is not portable; an empty store needs no
            # file at all.
            self._adopt(arrays, ())
            return
        self._generation += 1
        paths: list[Path] = []
        views: list[np.ndarray] = []
        for stem, arr in zip(_STEMS, arrays):
            path = self.directory / (
                f"edges-{self._generation:08d}-{stem}.npy"
            )
            np.save(path, arr)
            views.append(np.load(path, mmap_mode="r"))
            paths.append(path)
        self._adopt(tuple(views), tuple(paths))

    def attach(
        self, rows: np.ndarray, cols: np.ndarray, data: np.ndarray
    ) -> None:
        """Adopt already-mapped arrays (e.g. snapshot files) zero-copy.

        The arrays are used as the columnar store without rewriting them;
        the backend does **not** own the underlying files, so a later
        mutation writes its own generation here and leaves the attached
        files untouched.  Used by
        :func:`repro.graph.persist.load_snapshot`.
        """
        self._adopt((rows, cols, data), ())

    def _adopt(
        self, views: Columnar, paths: tuple[Path, ...]
    ) -> None:
        stale = list(self._state["files"])
        self._state["files"][:] = [str(p) for p in paths]
        self._views = views
        for name in stale:
            try:
                os.unlink(name)
            except OSError:
                pass

    def clear_columnar(self) -> None:
        stale = list(self._state["files"])
        self._state["files"].clear()
        self._views = None
        for name in stale:
            try:
                os.unlink(name)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # lifecycle / diagnostics
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._views = None
        self._finalizer()

    def describe(self) -> dict:
        info = {
            "backend": self.name,
            "resident": "disk",
            "directory": str(self.directory),
            "files": list(self._state["files"]),
        }
        if self._views is not None:
            info["columnar_bytes"] = int(
                sum(arr.nbytes for arr in self._views)
            )
        return info
