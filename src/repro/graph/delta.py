"""Batched streaming edge mutations and delta-aware cache refresh.

Every mutator on :class:`~repro.graph.base.BaseGraph` historically bumped
the mutation counter and evicted the *entire* derived-object cache — COO
arrays, CSR adjacency, transition matrices, operator bundles.  For a
streaming workload ("heavy traffic over graphs that change continuously",
the ROADMAP north star) that is catastrophic: one re-weighted edge forces
the next query to re-export 20M edges, re-run the log-space softmax over
every stored entry and re-derive the solver views, even though the delta
touched a handful of rows.

This module provides the streaming path:

* :class:`GraphDelta` — a batched, array-native description of edge
  inserts, deletes and re-weights (the first deletion support in the
  library; the classic mutators only ever add).
* :func:`apply_graph_delta` — the implementation behind
  :meth:`BaseGraph.apply_delta`: validates the delta, merges it into the
  canonical columnar edge store (compress + ``np.insert`` against the
  key-sorted arrays — no global re-sort), and **refreshes** the known
  derived caches instead of evicting them.

Refreshing is surgical and runs at C speed: for each cached matrix the
rows whose content can change are recomputed (they all share the
adjacency's sparsity, so one changed-row scan serves every entry), packed
into a sparse correction ``D`` holding ``new_row − old_row``, and the
replacement is assembled as ``M + D`` — one scipy merge pass over the
stored entries plus an ``eliminate_zeros`` sweep, instead of a from-
scratch export → sort → normalise rebuild.  Unrecognised cache entries
(and the raw COO triple, whose on-demand rebuild from the columnar store
costs the same as any eager patch) are dropped — classic eviction
semantics — so the refresh can never serve a stale object.

Refresh semantics
-----------------
The shared-object contract of the matrix cache is preserved exactly:
cached matrices are never mutated — a refresh *replaces* the cache entry
with a freshly assembled object, so callers still holding the old matrix
(or an operator bundle wrapping it) keep computing consistent answers
against the pre-delta snapshot, just as they would across a classic
mutation.  ``mutation_count`` still bumps once per applied delta.

Which rows change:

* the adjacency rows of every edge endpoint that gains/loses/re-weights
  an out-edge (both endpoints for undirected graphs, sources for
  directed ones) — these also cover every ``theta`` change, since
  ``theta`` is the out-degree / total out-weight;
* for degree de-coupled transitions, additionally every row with a
  ``theta``-changed node as *destination* (Equation 1 weights rows by
  destination theta), i.e. the in-neighbourhood of the touched nodes.

One superset (touched ∪ their in-neighbourhood) is used for every
matrix: rows recomputed without an actual change reproduce their old
values and cancel out of ``D`` (exactly, or to float round-off for
theta-dependent weights — far below solver tolerance either way).

A weighted D2PR transition cached under the scale-safe default
``clamp_min=None`` resolves its clamp from the global minimum positive
theta; a delta can move that minimum, which would silently re-weight
*every* row, so those entries are dropped instead of refreshed (they
rebuild on next use).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.errors import EdgeError, ParameterError

__all__ = ["GraphDelta", "apply_graph_delta"]


def _as_ops(
    rows: np.ndarray | None,
    cols: np.ndarray | None,
    weights: np.ndarray | None,
    *,
    with_weights: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Canonicalise one op group into int64/float64 arrays."""
    if rows is None or cols is None:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    rows = np.atleast_1d(np.asarray(rows))
    cols = np.atleast_1d(np.asarray(cols))
    if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
        raise ParameterError(
            "delta rows and cols must be 1-D arrays of equal length, "
            f"got shapes {rows.shape} and {cols.shape}"
        )
    if rows.size and not (
        np.issubdtype(rows.dtype, np.integer)
        and np.issubdtype(cols.dtype, np.integer)
    ):
        raise ParameterError(
            "delta rows and cols must be integer node indices, "
            f"got dtypes {rows.dtype}, {cols.dtype}"
        )
    rows = rows.astype(np.int64, copy=False)
    cols = cols.astype(np.int64, copy=False)
    if not with_weights:
        if weights is not None:
            raise ParameterError("this delta operation takes no weights")
        return rows, cols, None
    if weights is None:
        data = np.ones(rows.shape[0], dtype=np.float64)
    else:
        data = np.atleast_1d(np.asarray(weights, dtype=np.float64))
        if data.shape != rows.shape:
            raise ParameterError(
                f"delta weights must have shape {rows.shape}, "
                f"got {data.shape}"
            )
    return rows, cols, data


def _empty_i() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def _empty_f() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


@dataclass(frozen=True, eq=False)
class GraphDelta:
    """A batched set of edge mutations against one graph snapshot.

    Build instances through the classmethods and combine them with ``|``:

    >>> import numpy as np
    >>> delta = (
    ...     GraphDelta.insert(np.array([0, 1]), np.array([2, 3]))
    ...     | GraphDelta.delete(np.array([4]), np.array([5]))
    ... )
    >>> delta.size
    3

    Semantics (applied by :meth:`repro.graph.base.BaseGraph.apply_delta`):

    * **deletes** apply first and must name existing edges;
    * **inserts** apply next and *upsert* — an insert of an existing pair
      re-weights it, duplicates within the batch keep the last weight
      (the :meth:`add_edges_arrays` contract);
    * **reweights** apply last and must name an edge that exists after
      the deletes/inserts — the "this edge must already be there" safety
      contract that a bare upsert cannot express.

    For undirected graphs each pair is canonicalised (order-insensitive),
    exactly like :meth:`Graph.add_edge`.

    **Node-level ops** (so the delta log can express every mutation the
    classic API allows):

    * **node inserts** apply before everything else and append new node
      objects (with optional attributes) at the next free indices — edge
      ops in the same delta may therefore reference them;
    * **node deletes** apply last; indices refer to the *post-insert*
      numbering, incident edges are dropped and the surviving nodes are
      compacted (indices above a deleted node shift down, preserving
      relative order).

    Node ops change the index space, so applying a delta that carries
    them evicts the graph's derived-object cache wholesale instead of
    refreshing it.
    """

    insert_rows: np.ndarray = field(default_factory=_empty_i)
    insert_cols: np.ndarray = field(default_factory=_empty_i)
    insert_weights: np.ndarray = field(default_factory=_empty_f)
    delete_rows: np.ndarray = field(default_factory=_empty_i)
    delete_cols: np.ndarray = field(default_factory=_empty_i)
    reweight_rows: np.ndarray = field(default_factory=_empty_i)
    reweight_cols: np.ndarray = field(default_factory=_empty_i)
    reweight_weights: np.ndarray = field(default_factory=_empty_f)
    #: ``((node, attrs_dict), ...)`` appended in order at the next free
    #: indices (before any other op in the delta is applied).
    node_inserts: tuple = ()
    #: Post-insert node indices to remove (incident edges dropped,
    #: survivors compacted).
    node_deletes: np.ndarray = field(default_factory=_empty_i)

    @classmethod
    def insert(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "GraphDelta":
        """Delta inserting (or upserting) ``rows[k] -> cols[k]`` edges."""
        rows, cols, data = _as_ops(rows, cols, weights, with_weights=True)
        return cls(insert_rows=rows, insert_cols=cols, insert_weights=data)

    @classmethod
    def delete(cls, rows: np.ndarray, cols: np.ndarray) -> "GraphDelta":
        """Delta removing the (existing) edges ``rows[k] -> cols[k]``."""
        rows, cols, _ = _as_ops(rows, cols, None, with_weights=False)
        return cls(delete_rows=rows, delete_cols=cols)

    @classmethod
    def reweight(
        cls, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
    ) -> "GraphDelta":
        """Delta setting the weight of the (existing) edges to ``weights``."""
        rows, cols, data = _as_ops(rows, cols, weights, with_weights=True)
        return cls(
            reweight_rows=rows, reweight_cols=cols, reweight_weights=data
        )

    @classmethod
    def add_nodes(cls, nodes, attrs=None) -> "GraphDelta":
        """Delta appending new ``nodes`` (each with an optional attr dict).

        ``attrs`` is ``None`` or a sequence of ``{name: value}`` dicts
        aligned with ``nodes``.  The nodes must not already exist on the
        target graph; they receive the next free indices in order, so
        edge ops in the same delta may reference them.
        """
        nodes = list(nodes)
        if attrs is None:
            attrs = [{}] * len(nodes)
        else:
            attrs = [dict(a) if a else {} for a in attrs]
            if len(attrs) != len(nodes):
                raise ParameterError(
                    f"attrs must align with nodes: got {len(attrs)} attr "
                    f"dicts for {len(nodes)} nodes"
                )
        for node in nodes:
            try:
                hash(node)  # unhashable objects fail here, not at apply
            except TypeError:
                raise ParameterError(
                    f"node names must be hashable, got {type(node).__name__}"
                ) from None
        return cls(
            node_inserts=tuple(zip(nodes, attrs)),
        )

    @classmethod
    def remove_nodes(cls, indices) -> "GraphDelta":
        """Delta deleting the nodes at ``indices`` (post-insert numbering).

        Incident edges are dropped and the surviving nodes are compacted.
        """
        indices = np.atleast_1d(np.asarray(indices))
        if indices.ndim != 1:
            raise ParameterError(
                f"node indices must be 1-D, got shape {indices.shape}"
            )
        if indices.size and not np.issubdtype(indices.dtype, np.integer):
            raise ParameterError(
                f"node indices must be integers, got dtype {indices.dtype}"
            )
        return cls(node_deletes=indices.astype(np.int64, copy=False))

    def __or__(self, other: "GraphDelta") -> "GraphDelta":
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return GraphDelta(
            insert_rows=np.concatenate([self.insert_rows, other.insert_rows]),
            insert_cols=np.concatenate([self.insert_cols, other.insert_cols]),
            insert_weights=np.concatenate(
                [self.insert_weights, other.insert_weights]
            ),
            delete_rows=np.concatenate([self.delete_rows, other.delete_rows]),
            delete_cols=np.concatenate([self.delete_cols, other.delete_cols]),
            reweight_rows=np.concatenate(
                [self.reweight_rows, other.reweight_rows]
            ),
            reweight_cols=np.concatenate(
                [self.reweight_cols, other.reweight_cols]
            ),
            reweight_weights=np.concatenate(
                [self.reweight_weights, other.reweight_weights]
            ),
            node_inserts=self.node_inserts + other.node_inserts,
            node_deletes=np.concatenate(
                [self.node_deletes, other.node_deletes]
            ),
        )

    @property
    def size(self) -> int:
        """Total number of operations (edge and node) in the delta."""
        return (
            self.insert_rows.shape[0]
            + self.delete_rows.shape[0]
            + self.reweight_rows.shape[0]
            + len(self.node_inserts)
            + self.node_deletes.shape[0]
        )

    @property
    def has_node_ops(self) -> bool:
        """Whether the delta inserts or deletes nodes (index-space change)."""
        return bool(self.node_inserts) or self.node_deletes.shape[0] > 0

    def endpoints(self) -> np.ndarray:
        """Sorted unique node indices named by any operation."""
        return np.unique(
            np.concatenate(
                [
                    self.insert_rows,
                    self.insert_cols,
                    self.delete_rows,
                    self.delete_cols,
                    self.reweight_rows,
                    self.reweight_cols,
                ]
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GraphDelta insert={self.insert_rows.shape[0]} "
            f"delete={self.delete_rows.shape[0]} "
            f"reweight={self.reweight_rows.shape[0]} "
            f"node_insert={len(self.node_inserts)} "
            f"node_delete={self.node_deletes.shape[0]}>"
        )


# ----------------------------------------------------------------------
# delta application
# ----------------------------------------------------------------------
def _require_positive_weights(data: np.ndarray, what: str) -> None:
    if data.size:
        if not np.isfinite(data).all():
            raise EdgeError(f"{what} weights must be finite")
        if (data <= 0.0).any():
            raise EdgeError(f"{what} weights must be positive")


def _check_indices(
    graph, rows: np.ndarray, cols: np.ndarray, n_total: int, name_of
) -> None:
    from repro.errors import NodeNotFoundError

    if rows.size == 0:
        return
    low = min(int(rows.min()), int(cols.min()))
    high = max(int(rows.max()), int(cols.max()))
    if low < 0 or high >= n_total:
        raise NodeNotFoundError(low if low < 0 else high)
    loops = rows == cols
    if loops.any():
        offender = name_of(int(rows[np.argmax(loops)]))
        raise EdgeError(f"self-loop on {offender!r} is not allowed")


def _positions_of(
    keys_sorted: np.ndarray,
    want: np.ndarray,
    what: str,
    n_total: int,
    name_of,
) -> np.ndarray:
    """Positions of ``want`` keys in ``keys_sorted``, raising on absences."""
    n = np.int64(n_total)
    pos = np.searchsorted(keys_sorted, want)
    pos_c = np.minimum(pos, keys_sorted.size - 1)
    ok = (
        (pos < keys_sorted.size) & (keys_sorted[pos_c] == want)
        if keys_sorted.size
        else np.zeros(want.shape[0], dtype=bool)
    )
    if not ok.all():
        bad = want[int(np.flatnonzero(~ok)[0])]
        u = name_of(int(bad // n))
        v = name_of(int(bad % n))
        raise EdgeError(f"cannot {what} missing edge {u!r} -> {v!r}")
    return pos


def apply_graph_delta(graph, delta: GraphDelta, *, log=None) -> dict:
    """Apply ``delta`` to ``graph`` with delta-aware cache refresh.

    Implementation of :meth:`repro.graph.base.BaseGraph.apply_delta`;
    see :class:`GraphDelta` for the operation semantics and the module
    docstring for the refresh contract.  Returns a small stats dict
    (op counts plus which cache entries were refreshed vs dropped).

    When ``log`` is given (a :class:`~repro.graph.persist.DeltaLog`),
    the delta is appended to it after — and only after — a successful
    commit, so replaying the log reproduces exactly the committed state.
    """
    graph._check_mutable()
    if not isinstance(delta, GraphDelta):
        raise ParameterError(
            f"apply_delta expects a GraphDelta, got {type(delta).__name__}"
        )
    stats = {
        "inserted": 0,
        "deleted": 0,
        "reweighted": 0,
        "nodes_inserted": 0,
        "nodes_deleted": 0,
        "refreshed": [],
        "dropped": [],
    }
    if delta.size == 0:
        return stats
    n = graph.number_of_nodes

    # -- node-op validation (pure: nothing is committed yet) -----------
    ins_nodes = delta.node_inserts
    for entry in ins_nodes:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            raise ParameterError(
                "node_inserts entries must be (node, attrs) pairs; "
                "build them with GraphDelta.add_nodes"
            )
    seen: set = set()
    for node, _attrs in ins_nodes:
        if node in graph._index:
            raise ParameterError(
                f"cannot insert node {node!r}: it already exists"
            )
        if node in seen:
            raise ParameterError(f"duplicate node insert {node!r}")
        seen.add(node)
    # All edge-op indices live in the post-insert space of n_total nodes.
    n_total = n + len(ins_nodes)
    del_idx = delta.node_deletes
    if del_idx.size:
        del_idx = np.unique(del_idx)
        if int(del_idx[0]) < 0 or int(del_idx[-1]) >= n_total:
            from repro.errors import NodeNotFoundError

            bad = int(del_idx[0]) if int(del_idx[0]) < 0 else int(del_idx[-1])
            raise NodeNotFoundError(bad)

    def name_of(idx: int):
        return (
            graph.node_at(idx) if idx < n else ins_nodes[idx - n][0]
        )

    ins_r, ins_c = graph._canonical_pairs(delta.insert_rows, delta.insert_cols)
    del_r, del_c = graph._canonical_pairs(delta.delete_rows, delta.delete_cols)
    rew_r, rew_c = graph._canonical_pairs(
        delta.reweight_rows, delta.reweight_cols
    )
    for r, c in ((ins_r, ins_c), (del_r, del_c), (rew_r, rew_c)):
        _check_indices(graph, r, c, n_total, name_of)
    _require_positive_weights(delta.insert_weights, "insert")
    _require_positive_weights(delta.reweight_weights, "reweight")

    n = n_total
    rows0, cols0, w0 = graph._canonical_edges()
    keys0 = rows0 * np.int64(n) + cols0
    if keys0.size and (keys0[:-1] > keys0[1:]).any():
        # The lazy columnar store is key-sorted by construction; only
        # dict-derived canonical arrays need the sort.
        order0 = np.argsort(keys0, kind="stable")
        keys0, rows0, cols0, w0 = (
            keys0[order0], rows0[order0], cols0[order0], w0[order0]
        )
    # The merge below is pure: the live store is only replaced at the
    # very end, so any validation error leaves the graph untouched.
    # ``w_owned`` tracks whether ``w0`` is a private copy we may write.
    w_owned = False

    # 1. deletes (must exist)
    if del_r.size:
        del_keys = np.unique(del_r * np.int64(n) + del_c)
        pos = _positions_of(keys0, del_keys, "delete", n, name_of)
        keep = np.ones(keys0.shape[0], dtype=bool)
        keep[pos] = False
        keys0, rows0, cols0, w0 = (
            keys0[keep], rows0[keep], cols0[keep], w0[keep]
        )
        w_owned = True
        stats["deleted"] = int(del_keys.shape[0])

    # 2. inserts (upsert, last wins; merged without a global re-sort)
    if ins_r.size:
        ins_keys = ins_r * np.int64(n) + ins_c
        sel = graph._dedup_last_wins(ins_keys)
        ins_keys = ins_keys[sel]
        ins_rs, ins_cs = ins_r[sel], ins_c[sel]
        ins_w = delta.insert_weights[sel]
        pos = np.searchsorted(keys0, ins_keys)
        pos_c = np.minimum(pos, keys0.shape[0] - 1) if keys0.size else pos
        exists = (
            (pos < keys0.shape[0]) & (keys0[pos_c] == ins_keys)
            if keys0.size
            else np.zeros(ins_keys.shape[0], dtype=bool)
        )
        if exists.any():
            if not w_owned:
                w0 = w0.copy()
                w_owned = True
            w0[pos[exists]] = ins_w[exists]
        fresh = ~exists
        if fresh.any():
            at = pos[fresh]
            keys0 = np.insert(keys0, at, ins_keys[fresh])
            rows0 = np.insert(rows0, at, ins_rs[fresh])
            cols0 = np.insert(cols0, at, ins_cs[fresh])
            w0 = np.insert(w0, at, ins_w[fresh])
            w_owned = True
        stats["inserted"] = int(fresh.sum())

    # 3. reweights (must exist after deletes + inserts)
    if rew_r.size:
        rew_keys = rew_r * np.int64(n) + rew_c
        sel = graph._dedup_last_wins(rew_keys)
        rew_keys, rew_w = rew_keys[sel], delta.reweight_weights[sel]
        pos = _positions_of(keys0, rew_keys, "reweight", n, name_of)
        if not w_owned:
            w0 = w0.copy()
            w_owned = True
        w0[pos] = rew_w
        stats["reweighted"] = int(rew_keys.shape[0])

    # Commit the new canonical store (key-sorted, each edge once), and
    # swap the derived-object cache under the graph's cache lock so a
    # concurrent reader resolving a cached entry never observes the
    # half-rewritten table (the serving layer additionally excludes
    # solves during a delta via its own write barrier).
    if delta.has_node_ops:
        _commit_with_node_ops(graph, delta, del_idx, rows0, cols0, w0, stats)
    else:
        touched = np.unique(np.concatenate(graph._delta_touched(delta)))
        with graph._cache_lock:
            graph._set_edge_store(rows0, cols0, w0)
            _refresh_caches(graph, touched, stats)
    if log is not None:
        log.append(delta)
    return stats


def _commit_with_node_ops(
    graph,
    delta: GraphDelta,
    del_idx: np.ndarray,
    rows0: np.ndarray,
    cols0: np.ndarray,
    w0: np.ndarray,
    stats: dict,
) -> None:
    """Commit a node-op delta: grow/compact the node table, swap the store.

    Node ops change the index space, so every cached derived object
    (including score vectors held by callers) is keyed to a dead
    numbering: the cache is evicted wholesale — no surgical refresh.
    The surviving-node remap is monotone, which keeps the merged edge
    arrays key-sorted (and ``lo < hi`` for undirected graphs) after
    re-indexing.
    """
    new_nodes = list(graph._nodes)
    attrs = graph._node_attrs
    for node, node_attrs in delta.node_inserts:
        idx = len(new_nodes)
        new_nodes.append(node)
        for name, value in node_attrs.items():
            attrs.setdefault(name, {})[idx] = value
    stats["nodes_inserted"] = len(delta.node_inserts)

    if del_idx.size:
        n_total = len(new_nodes)
        keep = np.ones(n_total, dtype=bool)
        keep[del_idx] = False
        remap = np.cumsum(keep, dtype=np.int64) - 1
        edge_keep = keep[rows0] & keep[cols0]
        rows0 = remap[rows0[edge_keep]]
        cols0 = remap[cols0[edge_keep]]
        w0 = w0[edge_keep]
        kept_idx = np.flatnonzero(keep)
        new_nodes = [new_nodes[i] for i in kept_idx.tolist()]
        for name in list(attrs):
            col = attrs[name]
            attrs[name] = {
                int(remap[i]): v for i, v in col.items() if keep[i]
            }
        stats["nodes_deleted"] = int(del_idx.shape[0])

    with graph._cache_lock:
        graph._nodes = new_nodes
        graph._index = {node: i for i, node in enumerate(new_nodes)}
        graph._store.reset_slots(len(new_nodes))
        graph._store.set_columnar(rows0, cols0, w0)
        graph._num_edges = rows0.shape[0]
        stats["dropped"].extend(graph._cache)
        graph._cache.clear()
        graph._version += 1


class _RefreshPlan:
    """Shared, lazily evaluated patch plan for one applied delta.

    Snapshots the *post-delta* canonical store (aliased — the columnar
    arrays are immutable once committed) plus the touched-row set, and
    computes the changed-row scan only when the first pending entry is
    resolved.  All pending entries of one delta share one plan, so the
    scan and the per-``weighted``-flag theta patches are paid at most
    once per delta regardless of how many cached matrices exist — and
    not at all if nothing is read before the next full invalidation.
    """

    def __init__(
        self,
        *,
        directed: bool,
        n: int,
        store: tuple[np.ndarray, np.ndarray, np.ndarray],
        touched: np.ndarray,
    ) -> None:
        self.directed = directed
        self.n = n
        self.store = store
        self.touched = touched
        self._scan: tuple | None = None
        self._thetas: dict[bool, np.ndarray] = {}
        # Correction matrices remembered per transition cache key, so the
        # operator-bundle refresh can patch the cached transpose in place
        # (old.t_csr + D.T) instead of lazily rebuilding it from scratch.
        self._corrections: dict[tuple, sparse.csr_matrix] = {}

    # -- changed-row scan ------------------------------------------------
    def _ensure_scan(self) -> tuple:
        if self._scan is not None:
            return self._scan
        n = self.n
        rows_c, cols_c, w_c = self.store
        # Changed-row superset: touched rows plus every row with a
        # touched node as destination (their theta enters the
        # transition weights).
        is_touched = np.zeros(n, dtype=bool)
        is_touched[self.touched] = True
        if self.directed:
            preds = rows_c[is_touched[cols_c]]
        else:
            preds = np.concatenate(
                [rows_c[is_touched[cols_c]], cols_c[is_touched[rows_c]]]
            )
        changed = np.unique(np.concatenate([self.touched, preds]))

        # Sub-COO of the new adjacency restricted to the changed rows,
        # in row-segment order (cols unsorted within a row — the D
        # assembly canonicalises, the softmax only needs row segments).
        member = np.zeros(n, dtype=bool)
        member[changed] = True
        if self.directed:
            sel = member[rows_c]
            r_sub, c_sub, w_sub = rows_c[sel], cols_c[sel], w_c[sel]
        else:
            sel_lo = member[rows_c]
            sel_hi = member[cols_c]
            r_sub = np.concatenate([rows_c[sel_lo], cols_c[sel_hi]])
            c_sub = np.concatenate([cols_c[sel_lo], rows_c[sel_hi]])
            w_sub = np.concatenate([w_c[sel_lo], w_c[sel_hi]])
        pos_in_changed = np.full(n, -1, dtype=np.int64)
        pos_in_changed[changed] = np.arange(changed.size, dtype=np.int64)
        seg = pos_in_changed[r_sub]
        order = np.argsort(seg, kind="stable")
        seg, c_sub, w_sub = seg[order], c_sub[order], w_sub[order]
        r_sub = changed[seg]
        lengths = np.bincount(seg, minlength=changed.size)
        sums = np.bincount(seg, weights=w_sub, minlength=changed.size)
        sub_indptr = np.empty(changed.size + 1, dtype=np.int64)
        sub_indptr[0] = 0
        np.cumsum(lengths, out=sub_indptr[1:])
        touched_pos = pos_in_changed[self.touched]
        self._scan = (
            changed, r_sub, c_sub, w_sub, sub_indptr,
            lengths, sums, touched_pos,
        )
        return self._scan

    # -- building blocks -------------------------------------------------
    def patched(
        self,
        mat: sparse.csr_matrix,
        new_vals: np.ndarray,
        remember: tuple | None = None,
    ):
        """``mat`` with the changed rows replaced by ``new_vals``.

        Assembled as ``mat + D`` with ``D = new_rows − old_rows`` — one
        scipy C merge over the stored entries; exact cancellations
        (rows recomputed without an actual change, deleted entries) are
        pruned so row emptiness still identifies dangling nodes.
        ``remember`` keeps the correction ``D`` under a cache key so the
        matching operator-bundle refresh can patch its cached transpose
        as ``old.t_csr + D.T`` (see :func:`_refresh_bundle`).
        """
        changed, r_sub, c_sub, _, _, _, _, _ = self._ensure_scan()
        old_sub = mat[changed].tocoo()
        d_rows = np.concatenate([changed[old_sub.row], r_sub])
        d_cols = np.concatenate([old_sub.col.astype(np.int64), c_sub])
        d_data = np.concatenate([-old_sub.data, new_vals])
        correction = sparse.csr_matrix(
            (d_data, (d_rows, d_cols)), shape=mat.shape
        )
        if remember is not None:
            self._corrections[remember] = correction
        out = mat + correction
        out.eliminate_zeros()
        return out

    def correction(self, key: tuple) -> sparse.csr_matrix | None:
        """The remembered correction ``D`` of a refreshed transition."""
        return self._corrections.get(key)

    def theta(self, weighted: bool, old_theta: np.ndarray | None):
        got = self._thetas.get(weighted)
        if got is None:
            n = self.n
            rows_c, cols_c, w_c = self.store
            _, _, _, _, _, lengths, sums, touched_pos = self._ensure_scan()
            if old_theta is not None:
                got = old_theta.copy()
            else:
                if weighted:
                    got = np.bincount(rows_c, weights=w_c, minlength=n)
                    if not self.directed:
                        got += np.bincount(cols_c, weights=w_c, minlength=n)
                else:
                    got = np.bincount(rows_c, minlength=n).astype(np.float64)
                    if not self.directed:
                        got += np.bincount(cols_c, minlength=n)
                got = got.astype(np.float64, copy=False)
            got[self.touched] = (
                sums[touched_pos] if weighted else lengths[touched_pos]
            )
            self._thetas[weighted] = got
        return got

    def adjacency_vals(self, weighted: bool) -> np.ndarray:
        _, _, _, w_sub, _, _, _, _ = self._ensure_scan()
        return w_sub if weighted else np.ones_like(w_sub)

    def transition_vals(self, key: tuple) -> np.ndarray:
        """New changed-row values for a cached transition entry."""
        from repro.linalg.transition import segment_softmax_weights

        _, _, c_sub, w_sub, sub_indptr, lengths, sums, _ = (
            self._ensure_scan()
        )
        len_rep = np.repeat(lengths, lengths).astype(np.float64)
        sum_rep = np.repeat(sums, lengths)
        if key[0] == "pagerank_transition":
            if key[1]:  # weighted: connection strength
                return w_sub / np.where(sum_rep > 0.0, sum_rep, 1.0)
            return 1.0 / np.where(len_rep > 0.0, len_rep, 1.0)
        # ("d2pr_transition", p, beta, weighted, clamp_min)
        _, p, beta, weighted, clamp_min = key
        resolved = 1.0 if clamp_min is None else float(clamp_min)
        theta = self.theta(bool(weighted), None)
        log_theta = np.log(np.maximum(theta, resolved))
        decoupled = segment_softmax_weights(
            log_theta[c_sub], sub_indptr, float(p)
        )
        if weighted and beta != 0.0:
            strength = w_sub / np.where(sum_rep > 0.0, sum_rep, 1.0)
            if beta == 1.0:
                return strength
            return beta * strength + (1.0 - beta) * decoupled
        return decoupled


def _resolve(value):
    """Materialise a possibly-pending cache value (chained deltas nest)."""
    from repro.graph.base import PendingRefresh

    if type(value) is PendingRefresh:
        return value.resolve()
    return value


def _resolve_entry(graph, key: tuple):
    value = _resolve(graph._cache[key])
    graph._cache[key] = value
    return value


def _refresh_bundle(graph, plan: _RefreshPlan, trans_key: tuple, old_bundle):
    """Rebuild an operator bundle over its refreshed transition.

    Resolving the transition entry first materialises its patched matrix
    (and remembers the correction ``D`` on the plan); if the predecessor
    bundle had already built its CSR transpose, the new bundle's is
    seeded in place as ``old.t_csr + D.T`` — the ROADMAP follow-up that
    spares the power-iteration fallback the full post-delta
    ``P.T.tocsr()`` rebuild.
    """
    from repro.linalg.operator import LinearOperatorBundle

    mat = _resolve_entry(graph, trans_key)
    bundle = LinearOperatorBundle.of(mat)
    correction = plan.correction(trans_key)
    if correction is not None:
        bundle.seed_transpose_from(old_bundle, correction)
    return bundle


def _refresh_caches(graph, touched: np.ndarray, stats: dict) -> None:
    """Queue patched replacements for known cache entries; drop the rest.

    Entries are replaced by :class:`~repro.graph.base.PendingRefresh`
    thunks sharing one :class:`_RefreshPlan`, so ``apply_delta`` itself
    pays only the canonical-store merge; each cached matrix is patched
    on first access after the delta.  An entry *still pending* when the
    next delta lands was not read in between — it is evicted rather than
    chained, which caps retained plan state at one layer per entry (a
    chain would hold one store snapshot per delta and replay every
    deferred patch on first access).  The raw ``("coo",)`` triple is
    dropped rather than patched: rebuilding it on demand from the
    columnar store costs the same pass.
    """
    from repro.graph.base import PendingRefresh
    from repro.linalg.operator import LinearOperatorBundle

    old = graph._cache
    graph._cache = {}
    graph._version += 1
    if not old:
        return
    plan = _RefreshPlan(
        directed=graph.directed,
        n=graph.number_of_nodes,
        store=graph._lazy,
        touched=touched,
    )

    def defer(build) -> PendingRefresh:
        return PendingRefresh(build)

    from repro.graph.base import PendingRefresh as _Pending

    transition_keys: set[tuple] = set()
    # Operators last: they must only survive when their transition entry
    # did (a dropped weighted/default-clamp transition drops its bundle).
    ordered = sorted(old.items(), key=lambda kv: kv[0][0] == "operator")
    for key, value in ordered:
        kind = key[0]
        new_value = None
        if type(value) is _Pending:
            # Still unresolved since the previous delta: nobody read this
            # entry in between, so it is not hot — evict instead of
            # chaining (a chain would retain one O(m) store snapshot per
            # delta and pay every deferred patch pass on first access).
            stats["dropped"].append(key)
            continue
        if kind == "csr":
            weighted = key[1]
            new_value = defer(
                lambda value=value, weighted=weighted: plan.patched(
                    _resolve(value), plan.adjacency_vals(weighted)
                )
            )
        elif kind == "adj_theta":
            weighted = key[1]
            if ("csr", weighted) in old:
                new_value = defer(
                    lambda value=value, weighted=weighted: (
                        _resolve_entry(graph, ("csr", weighted)),
                        plan.theta(bool(weighted), _resolve(value)[1]),
                    )
                )
        elif kind in ("pagerank_transition", "d2pr_transition"):
            if kind == "d2pr_transition" and key[3] and key[4] is None:
                # Scale-safe default clamp depends on the global minimum
                # positive theta, which the delta may have moved: every
                # row could change, so evict this entry instead.
                new_value = None
            else:
                transition_keys.add(key)
                new_value = defer(
                    lambda value=value, key=key: plan.patched(
                        _resolve(value), plan.transition_vals(key),
                        remember=key,
                    )
                )
        elif kind == "operator":
            suffix = key[1:]
            if suffix and suffix[0] == "pagerank":
                trans_key = ("pagerank_transition", *suffix[1:])
            elif suffix and suffix[0] == "d2pr":
                trans_key = ("d2pr_transition", *suffix[1:])
            else:
                trans_key = None
            if trans_key in transition_keys:
                new_value = defer(
                    lambda trans_key=trans_key, old=value: _refresh_bundle(
                        graph, plan, trans_key, old
                    )
                )
        if new_value is None:
            stats["dropped"].append(key)
            continue
        graph._cache[key] = new_value
        stats["refreshed"].append(key)
