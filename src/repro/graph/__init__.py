"""Graph substrate: data structures, generators, projections, statistics.

Public surface:

* :class:`~repro.graph.base.Graph`, :class:`~repro.graph.base.DiGraph` —
  the core (optionally weighted) graph types.
* :class:`~repro.graph.bipartite.BipartiteGraph` and
  :func:`~repro.graph.bipartite.project` — two-mode graphs and the
  co-membership projections that every data graph in the paper is built on.
* Generators (:func:`~repro.graph.generators.erdos_renyi`, ...) used by the
  synthetic dataset substrate.
* :func:`~repro.graph.stats.graph_statistics` — the paper's Table 3 row.
* Edge-list and JSON IO.
"""

from repro.graph.backends import (
    GraphBackend,
    InMemoryBackend,
    MmapBackend,
)
from repro.graph.base import DiGraph, Graph, Node
from repro.graph.bipartite import BipartiteGraph, project
from repro.graph.delta import GraphDelta
from repro.graph.persist import DeltaLog, load_snapshot, save_snapshot
from repro.graph.centrality import (
    betweenness_centrality,
    closeness_centrality,
    clustering_coefficient,
    harmonic_centrality,
)
from repro.graph.generators import (
    as_rng,
    barabasi_albert,
    configuration_model,
    erdos_renyi,
    powerlaw_degree_sequence,
    random_regular,
)
from repro.graph.interop import HAS_NETWORKX, from_networkx, to_networkx
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)
from repro.graph.paths import (
    all_pairs_distances,
    bfs_distances,
    diameter,
    eccentricities,
    effective_diameter,
    neighborhood_function,
    path_length_relatedness,
)
from repro.graph.stats import (
    GraphStatistics,
    degree_assortativity,
    degree_histogram,
    graph_statistics,
    median_neighbor_degree_std,
    neighbor_degree_stds,
)

__all__ = [
    "Graph",
    "DiGraph",
    "GraphDelta",
    "GraphBackend",
    "InMemoryBackend",
    "MmapBackend",
    "DeltaLog",
    "save_snapshot",
    "load_snapshot",
    "Node",
    "BipartiteGraph",
    "project",
    "betweenness_centrality",
    "closeness_centrality",
    "harmonic_centrality",
    "clustering_coefficient",
    "erdos_renyi",
    "barabasi_albert",
    "configuration_model",
    "powerlaw_degree_sequence",
    "random_regular",
    "as_rng",
    "HAS_NETWORKX",
    "from_networkx",
    "to_networkx",
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
    "bfs_distances",
    "all_pairs_distances",
    "neighborhood_function",
    "effective_diameter",
    "path_length_relatedness",
    "eccentricities",
    "diameter",
    "GraphStatistics",
    "graph_statistics",
    "degree_histogram",
    "degree_assortativity",
    "median_neighbor_degree_std",
    "neighbor_degree_stds",
]
