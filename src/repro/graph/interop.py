"""NetworkX interoperability.

Bridges the repro graph types and :mod:`networkx` so graphs (and their
node attributes) move in either direction without hand-rolled loops:

* :func:`from_networkx` — bulk-import a ``networkx`` graph through the
  vectorised :meth:`~repro.graph.base.BaseGraph.from_arrays` entry point
  (COO arrays, not per-edge ``add_edge`` calls), onto any storage
  backend;
* :func:`to_networkx` — export a repro graph with its edge weights and
  node attributes intact.

``networkx`` is an *optional* dependency: this module imports cleanly
without it and the converters raise a descriptive :class:`ImportError`
only when actually called (``HAS_NETWORKX`` tells callers up front).
The round trip ``from_networkx(to_networkx(g))`` preserves node order,
edges, weights and node attributes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graph.base import BaseGraph, DiGraph, Graph

__all__ = ["HAS_NETWORKX", "from_networkx", "to_networkx"]

try:  # pragma: no cover - trivially true/false per environment
    import networkx as _nx

    HAS_NETWORKX = True
except ImportError:  # pragma: no cover - exercised without networkx
    _nx = None
    HAS_NETWORKX = False


def _require_networkx():
    if _nx is None:
        raise ImportError(
            "networkx is not installed; the repro.graph.interop "
            "converters need it (the rest of the library does not)"
        )
    return _nx


def from_networkx(
    nx_graph,
    *,
    weight: str = "weight",
    backend=None,
) -> BaseGraph:
    """Convert a ``networkx`` graph to a repro :class:`Graph`/:class:`DiGraph`.

    Parameters
    ----------
    nx_graph:
        A ``networkx.Graph`` or ``networkx.DiGraph`` (multigraphs are
        rejected — collapse parallel edges first).  Directedness picks
        the repro type.
    weight:
        Edge-data key read as the edge weight (missing → 1.0).
    backend:
        Storage backend passed through to
        :meth:`~repro.graph.base.BaseGraph.from_arrays` (name, instance
        or class; default in-memory).

    Node attributes are copied onto the repro graph
    (:meth:`~repro.graph.base.BaseGraph.set_node_attr`), node order
    follows ``nx_graph.nodes()``.
    """
    nx = _require_networkx()
    if nx_graph.is_multigraph():
        raise ParameterError(
            "multigraphs are not supported; collapse parallel edges "
            "(e.g. nx.Graph(multigraph)) before converting"
        )
    cls = DiGraph if nx_graph.is_directed() else Graph
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    m = nx_graph.number_of_edges()
    rows = np.empty(m, dtype=np.int64)
    cols = np.empty(m, dtype=np.int64)
    weights = np.empty(m, dtype=np.float64)
    for k, (u, v, data) in enumerate(nx_graph.edges(data=True)):
        rows[k] = index[u]
        cols[k] = index[v]
        weights[k] = float(data.get(weight, 1.0))
    graph = cls.from_arrays(rows, cols, weights, nodes=nodes, backend=backend)
    for node, data in nx_graph.nodes(data=True):
        for name, value in data.items():
            graph.set_node_attr(node, name, value)
    return graph


def to_networkx(graph: BaseGraph, *, weight: str = "weight"):
    """Convert a repro graph to ``networkx`` (directedness preserved).

    Every edge carries its weight under the ``weight`` edge-data key
    (1.0 for unweighted graphs) and every node its repro attributes, so
    :func:`from_networkx` round-trips the graph exactly.
    """
    nx = _require_networkx()
    out = nx.DiGraph() if graph.directed else nx.Graph()
    for node in graph.nodes():
        out.add_node(node, **graph.node_attrs(node))
    for u, v, w in graph.edges():
        out.add_edge(u, v, **{weight: float(w)})
    return out
