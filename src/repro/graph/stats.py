"""Degree statistics for data graphs.

The paper's Table 3 characterises each data graph with five numbers — node
count, edge count, average degree, standard deviation of degrees, and the
*median standard deviation of neighbours' degrees*.  The last statistic is
the paper's key structural explanatory variable: graphs where it is high
(each node has one dominant high-degree neighbour) are insensitive to
``p < 0``; graphs where it is low (neighbour degrees comparable) react
sharply (Sections 4.3.2–4.3.3).

:func:`graph_statistics` computes the full Table 3 row for a graph; the rest
of the module offers the individual pieces plus degree-distribution helpers
used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyGraphError
from repro.graph.base import BaseGraph, DiGraph, Graph

__all__ = [
    "GraphStatistics",
    "graph_statistics",
    "neighbor_degree_stds",
    "median_neighbor_degree_std",
    "degree_histogram",
    "degree_assortativity",
]


@dataclass(frozen=True)
class GraphStatistics:
    """One row of the paper's Table 3.

    Attributes
    ----------
    name:
        Label of the data graph.
    nodes, edges:
        Graph size.
    average_degree:
        Mean node degree (out-degree for digraphs).
    degree_std:
        Standard deviation of node degrees.
    median_neighbor_degree_std:
        Median over nodes of the standard deviation of their neighbours'
        degrees (isolated nodes and degree-1 nodes contribute 0).
    """

    name: str
    nodes: int
    edges: int
    average_degree: float
    degree_std: float
    median_neighbor_degree_std: float

    def as_row(self) -> list[str]:
        """Format the statistics as strings for table rendering."""
        return [
            self.name,
            f"{self.nodes:,}",
            f"{self.edges:,}",
            f"{self.average_degree:.2f}",
            f"{self.degree_std:.2f}",
            f"{self.median_neighbor_degree_std:.2f}",
        ]


def _degree_vector(graph: BaseGraph) -> np.ndarray:
    if isinstance(graph, DiGraph):
        return graph.out_degree_vector()
    return graph.out_degree_vector()


def neighbor_degree_stds(graph: BaseGraph) -> np.ndarray:
    """Per-node standard deviation of the degrees of its neighbours.

    Nodes with fewer than two neighbours get 0.0 (no spread to measure),
    matching the convention that a missing spread should not inflate the
    median.
    """
    graph.require_nonempty()
    degrees = _degree_vector(graph)
    out = np.zeros(graph.number_of_nodes, dtype=float)
    for i in range(graph.number_of_nodes):
        nbrs = graph.neighbor_indices(i)
        if len(nbrs) >= 2:
            out[i] = float(np.std(degrees[nbrs]))
    return out


def median_neighbor_degree_std(graph: BaseGraph) -> float:
    """Median of :func:`neighbor_degree_stds` — Table 3, last column."""
    return float(np.median(neighbor_degree_stds(graph)))


def graph_statistics(graph: BaseGraph, name: str = "graph") -> GraphStatistics:
    """Compute the full Table 3 row for ``graph``."""
    if graph.number_of_nodes == 0:
        raise EmptyGraphError("cannot compute statistics of an empty graph")
    degrees = _degree_vector(graph)
    return GraphStatistics(
        name=name,
        nodes=graph.number_of_nodes,
        edges=graph.number_of_edges,
        average_degree=float(degrees.mean()),
        degree_std=float(degrees.std()),
        median_neighbor_degree_std=median_neighbor_degree_std(graph),
    )


def degree_histogram(graph: BaseGraph) -> dict[int, int]:
    """Return ``{degree: count}`` over all nodes."""
    degrees = _degree_vector(graph).astype(int)
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of degrees across edge endpoints.

    Positive values mean hubs link to hubs; negative values mean hubs link
    to low-degree nodes (typical of the projections in Group C).  Returns
    0.0 for graphs with no edges or zero degree variance.
    """
    graph.require_nonempty()
    degrees = graph.degree_vector()
    xs: list[float] = []
    ys: list[float] = []
    for u, v, _w in graph.edges():
        du = degrees[graph.index_of(u)]
        dv = degrees[graph.index_of(v)]
        # Each undirected edge contributes both orientations, keeping the
        # estimator symmetric.
        xs.extend((du, dv))
        ys.extend((dv, du))
    if not xs:
        return 0.0
    x = np.asarray(xs)
    y = np.asarray(ys)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
