"""Bipartite (two-mode) graphs and co-membership projections.

Every data graph in the paper's evaluation is a projection of a two-mode
affiliation structure:

* movie–contributor  →  movie-movie (shared contributors) and actor-actor
  (shared movies),
* article–author     →  article-article and author-author,
* listener–artist    →  artist-artist (shared listeners),
* commenter–product  →  commenter-commenter and product-product.

This module provides a :class:`BipartiteGraph` holding ``left`` and ``right``
node sets plus :func:`project`, which builds the one-mode co-membership
graph.  Projection weights count shared affiliations — exactly the edge
weights the paper uses in its weighted-graph experiments ("# of common
movies", "# of shared products", ...).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.errors import GraphError, NodeNotFoundError, ParameterError
from repro.graph.base import Graph, Node, row_segments

__all__ = ["BipartiteGraph", "project"]


class BipartiteGraph:
    """A two-mode graph with disjoint ``left`` and ``right`` node sets.

    Edges connect a left node to a right node; within-side edges are
    rejected.  Node attributes are supported on both sides.
    """

    def __init__(self) -> None:
        self._left_index: dict[Node, int] = {}
        self._right_index: dict[Node, int] = {}
        self._left_nodes: list[Node] = []
        self._right_nodes: list[Node] = []
        # adjacency: left index -> set of right indices, and the transpose
        self._left_adj: list[set[int]] = []
        self._right_adj: list[set[int]] = []
        self._left_attrs: dict[str, dict[int, Any]] = {}
        self._right_attrs: dict[str, dict[int, Any]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_left(self, node: Node, **attrs: Any) -> int:
        """Add a node to the left side and return its left index."""
        if node in self._right_index:
            raise GraphError(f"{node!r} already exists on the right side")
        idx = self._left_index.get(node)
        if idx is None:
            idx = len(self._left_nodes)
            self._left_index[node] = idx
            self._left_nodes.append(node)
            self._left_adj.append(set())
        for name, value in attrs.items():
            self._left_attrs.setdefault(name, {})[idx] = value
        return idx

    def add_right(self, node: Node, **attrs: Any) -> int:
        """Add a node to the right side and return its right index."""
        if node in self._left_index:
            raise GraphError(f"{node!r} already exists on the left side")
        idx = self._right_index.get(node)
        if idx is None:
            idx = len(self._right_nodes)
            self._right_index[node] = idx
            self._right_nodes.append(node)
            self._right_adj.append(set())
        for name, value in attrs.items():
            self._right_attrs.setdefault(name, {})[idx] = value
        return idx

    def add_edge(self, left: Node, right: Node) -> None:
        """Connect ``left`` (left side) with ``right`` (right side)."""
        li = self.add_left(left)
        ri = self.add_right(right)
        if ri not in self._left_adj[li]:
            self._left_adj[li].add(ri)
            self._right_adj[ri].add(li)
            self._num_edges += 1

    def add_edges_from(self, edges: Iterable[tuple[Node, Node]]) -> None:
        """Add ``(left, right)`` pairs."""
        for left, right in edges:
            self.add_edge(left, right)

    def add_edges_arrays(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> None:
        """Bulk-connect ``lefts[k] -- rights[k]`` by integer side indices.

        Both sides must already contain the referenced nodes (use
        :meth:`add_left` / :meth:`add_right` first).  Duplicate pairs are
        de-duplicated vectorised; the per-pair set updates run at C speed.
        """
        lefts = np.asarray(lefts)
        rights = np.asarray(rights)
        if lefts.ndim != 1 or rights.ndim != 1 or lefts.shape != rights.shape:
            raise ParameterError(
                "lefts and rights must be 1-D arrays of equal length, "
                f"got shapes {lefts.shape} and {rights.shape}"
            )
        if lefts.size == 0:
            return
        if not (
            np.issubdtype(lefts.dtype, np.integer)
            and np.issubdtype(rights.dtype, np.integer)
        ):
            raise ParameterError(
                "lefts and rights must be integer side indices "
                f"(got dtypes {lefts.dtype}, {rights.dtype})"
            )
        for indices, limit in (
            (lefts, self.number_of_left),
            (rights, self.number_of_right),
        ):
            low, high = int(indices.min()), int(indices.max())
            if low < 0 or high >= limit:
                raise NodeNotFoundError(low if low < 0 else high)
        n_right = self.number_of_right
        keys = np.unique(
            lefts.astype(np.int64) * np.int64(n_right)
            + rights.astype(np.int64)
        )
        li = keys // n_right
        ri = keys % n_right
        for adj, sources, targets in (
            (self._left_adj, li, ri),
            (self._right_adj, ri, li),
        ):
            order, segments = row_segments(sources, len(adj))
            targets_l = targets[order].tolist()
            for i, s, e in segments:
                adj[i].update(targets_l[s:e])
        self._num_edges = sum(map(len, self._left_adj))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def number_of_left(self) -> int:
        """Number of left-side nodes."""
        return len(self._left_nodes)

    @property
    def number_of_right(self) -> int:
        """Number of right-side nodes."""
        return len(self._right_nodes)

    @property
    def number_of_edges(self) -> int:
        """Number of bipartite edges."""
        return self._num_edges

    def left_nodes(self) -> list[Node]:
        """Left-side node objects in insertion order."""
        return list(self._left_nodes)

    def right_nodes(self) -> list[Node]:
        """Right-side node objects in insertion order."""
        return list(self._right_nodes)

    def neighbors_of_left(self, node: Node) -> list[Node]:
        """Right-side neighbours of a left node."""
        try:
            li = self._left_index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return [self._right_nodes[r] for r in sorted(self._left_adj[li])]

    def neighbors_of_right(self, node: Node) -> list[Node]:
        """Left-side neighbours of a right node."""
        try:
            ri = self._right_index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return [self._left_nodes[l] for l in sorted(self._right_adj[ri])]

    def left_degree_vector(self) -> np.ndarray:
        """Degree of each left node (number of affiliations)."""
        return np.array([len(s) for s in self._left_adj], dtype=float)

    def right_degree_vector(self) -> np.ndarray:
        """Degree of each right node (number of members)."""
        return np.array([len(s) for s in self._right_adj], dtype=float)

    def left_attr_array(self, name: str, default: float = np.nan) -> np.ndarray:
        """Left-side attribute vector aligned with left indices."""
        values = self._left_attrs.get(name, {})
        out = np.full(self.number_of_left, default, dtype=float)
        for idx, value in values.items():
            out[idx] = value
        return out

    def right_attr_array(self, name: str, default: float = np.nan) -> np.ndarray:
        """Right-side attribute vector aligned with right indices."""
        values = self._right_attrs.get(name, {})
        out = np.full(self.number_of_right, default, dtype=float)
        for idx, value in values.items():
            out[idx] = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BipartiteGraph left={self.number_of_left} "
            f"right={self.number_of_right} edges={self.number_of_edges}>"
        )


def project(
    bipartite: BipartiteGraph,
    side: str = "left",
    *,
    min_shared: int = 1,
    copy_attrs: bool = True,
) -> Graph:
    """Project a bipartite graph onto one of its sides.

    Two same-side nodes are connected iff they share at least ``min_shared``
    neighbours on the opposite side; the edge weight is the number of shared
    neighbours.  This is the construction behind every data graph in the
    paper (e.g. actor-actor edges weighted by "# of common movies").

    Parameters
    ----------
    bipartite:
        The two-mode graph.
    side:
        ``"left"`` or ``"right"`` — which side becomes the node set of the
        projection.
    min_shared:
        Minimum number of shared opposite-side neighbours for an edge.
    copy_attrs:
        Copy the projected side's node attributes onto the result.

    Notes
    -----
    Complexity is ``O(sum_over_opposite(deg^2))``: each opposite-side node of
    degree ``d`` contributes ``d(d-1)/2`` co-membership pairs.  Hub nodes on
    the opposite side therefore dominate the cost — identical to the density
    behaviour visible in the paper's Table 3 (e.g. artist-artist is dense
    because popular artists have many listeners).
    """
    if side not in ("left", "right"):
        raise ParameterError(f"side must be 'left' or 'right', got {side!r}")
    if min_shared < 1:
        raise ParameterError(f"min_shared must be >= 1, got {min_shared}")

    if side == "left":
        nodes = bipartite.left_nodes()
        own_adj = bipartite._left_adj
        opp_adj = bipartite._right_adj
        attrs = bipartite._left_attrs
    else:
        nodes = bipartite.right_nodes()
        own_adj = bipartite._right_adj
        opp_adj = bipartite._left_adj
        attrs = bipartite._right_attrs

    g = Graph()
    for i, node in enumerate(nodes):
        if copy_attrs:
            node_attrs = {
                name: values[i] for name, values in attrs.items() if i in values
            }
            g.add_node(node, **node_attrs)
        else:
            g.add_node(node)

    # Count shared-neighbour pairs by iterating opposite-side memberships:
    # each opposite node of degree d contributes its d(d-1)/2 co-membership
    # pairs via one triu_indices call; the pair keys are then tallied with
    # a single unique(return_counts=True) pass.
    n_own = len(nodes)
    pair_keys: list[np.ndarray] = []
    for members in opp_adj:
        if len(members) < 2:
            continue
        ms = np.fromiter(sorted(members), dtype=np.int64, count=len(members))
        a_pos, b_pos = np.triu_indices(ms.shape[0], k=1)
        pair_keys.append(ms[a_pos] * np.int64(n_own) + ms[b_pos])
    if pair_keys:
        keys, counts = np.unique(np.concatenate(pair_keys), return_counts=True)
        strong = counts >= min_shared
        keys, counts = keys[strong], counts[strong]
        g.add_edges_arrays(
            keys // n_own, keys % n_own, counts.astype(np.float64)
        )

    # `own_adj` is intentionally unused beyond validation: isolated nodes on
    # the projected side stay isolated in the projection.
    del own_adj
    return g
