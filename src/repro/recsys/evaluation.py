"""Evaluation of significance rankings against application ground truth.

Combines the paper's primary measure (Spearman rank correlation, §4.2) with
the top-of-ranking metrics a deployed recommender is judged by, and adds a
train/test protocol for selecting the de-coupling weight ``p`` without
looking at held-out nodes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.results import NodeScores
from repro.datasets.base import DataGraph
from repro.errors import ParameterError
from repro.graph.generators import as_rng
from repro.metrics.correlation import kendall, spearman
from repro.metrics.ranking import ndcg_at_k, precision_at_k
from repro.recsys.recommender import D2PRRecommender, RecommenderConfig

__all__ = [
    "RankingEvaluation",
    "evaluate_scores",
    "HoldoutResult",
    "holdout_tune",
]


@dataclass(frozen=True)
class RankingEvaluation:
    """Quality of one score vector against one significance vector.

    ``relevant_quantile`` controls which nodes count as "relevant" for the
    precision metric (top fraction by significance).
    """

    spearman: float
    kendall: float
    ndcg_at_10: float
    precision_at_10: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for tabulation."""
        return {
            "spearman": self.spearman,
            "kendall": self.kendall,
            "ndcg@10": self.ndcg_at_10,
            "precision@10": self.precision_at_10,
        }


def evaluate_scores(
    scores: NodeScores,
    significance: np.ndarray,
    *,
    relevant_quantile: float = 0.9,
    k: int = 10,
) -> RankingEvaluation:
    """Evaluate a score vector against ground-truth significances.

    Parameters
    ----------
    scores:
        Output of any :mod:`repro.core` algorithm.
    significance:
        Ground truth aligned with graph node indices.
    relevant_quantile:
        Nodes with significance at or above this quantile form the
        relevant set for precision@k.
    k:
        Cut-off for the top-k metrics.
    """
    if not 0.0 < relevant_quantile < 1.0:
        raise ParameterError(
            f"relevant_quantile must be in (0, 1), got {relevant_quantile}"
        )
    significance = np.asarray(significance, dtype=np.float64)
    values = scores.values
    if significance.shape != values.shape:
        raise ParameterError("significance shape mismatch with scores")

    nodes = scores.graph.nodes()
    threshold = np.quantile(significance, relevant_quantile)
    relevant = {nodes[i] for i in np.flatnonzero(significance >= threshold)}
    gains = {
        nodes[i]: float(max(significance[i], 0.0)) for i in range(len(nodes))
    }
    ranking = scores.ranking()
    return RankingEvaluation(
        spearman=spearman(values, significance),
        kendall=kendall(values, significance),
        ndcg_at_10=ndcg_at_k(ranking, gains, k),
        precision_at_10=precision_at_k(ranking, relevant, k),
    )


@dataclass(frozen=True)
class HoldoutResult:
    """Outcome of :func:`holdout_tune`.

    Attributes
    ----------
    best_p:
        De-coupling weight selected on the training nodes.
    train_curve:
        ``{p: train-split Spearman}`` over the grid.
    test_spearman_best:
        Held-out correlation of the selected ``p``.
    test_spearman_conventional:
        Held-out correlation of conventional PageRank (``p = 0``) — the
        baseline the paper argues D2PR improves on.
    """

    best_p: float
    train_curve: dict[float, float]
    test_spearman_best: float
    test_spearman_conventional: float

    @property
    def improvement(self) -> float:
        """Held-out correlation gain of tuned D2PR over conventional PR."""
        return self.test_spearman_best - self.test_spearman_conventional


def holdout_tune(
    data_graph: DataGraph,
    *,
    p_grid: Sequence[float] = tuple(np.arange(-4.0, 4.01, 0.5)),
    train_fraction: float = 0.5,
    alpha: float = 0.85,
    weighted: bool = False,
    beta: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> HoldoutResult:
    """Select ``p`` on a random node split and evaluate on the rest.

    This is the recommendation-accuracy protocol implied by the paper: the
    application's significance signal is only partially observable (e.g.
    ratings known for half the catalogue); D2PR's ``p`` is tuned on the
    observed part and judged on the hidden part.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ParameterError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    rng = as_rng(seed)
    graph = data_graph.graph
    significance = data_graph.significance_vector()
    n = graph.number_of_nodes
    train_mask = rng.random(n) < train_fraction
    # Guarantee both splits have enough nodes for a rank correlation.
    if train_mask.sum() < 2:
        train_mask[:2] = True
    if (~train_mask).sum() < 2:
        train_mask[-2:] = False

    rec = D2PRRecommender(
        config=RecommenderConfig(alpha=alpha, weighted=weighted, beta=beta)
    ).fit(graph)
    best_p, train_curve = rec.tune_p(
        significance, p_grid, train_mask=train_mask
    )

    test_mask = ~train_mask
    tuned_scores = rec.with_p(best_p).scores.values
    conventional_scores = rec.with_p(0.0).scores.values
    return HoldoutResult(
        best_p=best_p,
        train_curve=train_curve,
        test_spearman_best=spearman(
            tuned_scores[test_mask], significance[test_mask]
        ),
        test_spearman_conventional=spearman(
            conventional_scores[test_mask], significance[test_mask]
        ),
    )
