"""D2PR-backed recommendation.

The paper motivates D2PR through recommendation systems: "Recommendation
systems leverage such node significance measures to rank the objects in the
database."  This module packages the algorithms of :mod:`repro.core` into a
small recommender with the two standard modes:

* **global ranking** — rank all items by significance (e.g. "top movies"),
* **contextual recommendation** — rank items relative to a set of seed
  items the user liked, via personalised D2PR (the context-aware setting of
  the paper's §2.1),
* **bulk serving** — :meth:`D2PRRecommender.recommend_for_many` answers a
  whole cohort of personalised queries as one batched solve
  (:func:`repro.core.engine.solve_many`): every user shares the fitted
  transition matrix, so the cohort differs only in teleport vectors and
  advances together, one sparse·dense multiply per sweep,
* **streaming updates** — :meth:`D2PRRecommender.update` absorbs a
  :class:`~repro.graph.delta.GraphDelta` without a refit: the fitted
  graph's caches are patched in place and the global ranking is
  corrected incrementally (:func:`repro.core.engine.update_scores`), so
  serving survives edits.

The degree de-coupling weight ``p`` is the recommender's key hyper-parameter;
:meth:`D2PRRecommender.tune_p` selects it by maximising rank correlation
with a training significance signal, mirroring the paper's per-application
calibration message.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.d2pr import d2pr
from repro.core.engine import RankQuery, solve_many, update_scores
from repro.core.personalized import personalized_d2pr, seed_weights
from repro.core.results import NodeScores
from repro.errors import ParameterError, ReproError
from repro.graph.base import BaseGraph, Node
from repro.linalg.push import forward_push
from repro.metrics.correlation import spearman
from repro.serving import RankingService, RankRequest

__all__ = ["D2PRRecommender", "RecommenderConfig"]


@dataclass(frozen=True)
class RecommenderConfig:
    """Hyper-parameters of :class:`D2PRRecommender`.

    Attributes
    ----------
    method:
        Registered centrality method serving the rankings (see
        :func:`repro.methods.method_names`): ``"d2pr"`` (default),
        ``"pagerank"``, ``"fatigued"``, ``"katz"``, ``"eigenvector"``
        or ``"hits"``.  The method's parameter vocabulary governs which
        of the fields below it interprets; the rest must stay at their
        defaults.
    p:
        Degree de-coupling weight (0 = conventional PageRank).
    alpha:
        Residual probability of the random walk.
    beta:
        Connection-strength blend for weighted graphs (ignored when
        ``weighted=False``).
    weighted:
        Use stored edge weights (paper §3.2.3).
    fatigue:
        Degree-fatigue strength γ of ``method="fatigued"``.
    solver:
        One of ``"power"``, ``"gauss_seidel"``, ``"direct"``, ``"push"``
        (the localized forward-push serving path for personalised
        queries; global rankings under it are served by power iteration).
        Non-power solvers apply to the d2pr family only.
    """

    p: float = 0.0
    alpha: float = 0.85
    beta: float = 0.0
    weighted: bool = False
    solver: str = "power"
    method: str = "d2pr"
    fatigue: float = 0.0

    def method_params(self):
        """This configuration as registry :class:`MethodParams`."""
        from repro.methods import MethodParams

        return MethodParams(
            p=float(self.p),
            alpha=float(self.alpha),
            beta=float(self.beta) if self.weighted else 0.0,
            weighted=bool(self.weighted),
            fatigue=float(self.fatigue),
        )

    def validate(self) -> None:
        """Raise :class:`ParameterError` on out-of-domain settings."""
        from repro.methods import resolve

        if not 0.0 <= self.beta <= 1.0:
            raise ParameterError(f"beta must be in [0, 1], got {self.beta}")
        resolve(self.method).validate(self.method_params())


@dataclass
class D2PRRecommender:
    """Graph recommender built on degree de-coupled PageRank.

    An injected :class:`~repro.serving.RankingService` turns the
    recommender into a *client* of the serving layer: global rankings,
    per-user personalised queries, bulk cohorts and streaming updates
    all route through the service's one planner, microbatch coalescer
    and delta-aware result cache — instead of each method carrying its
    own private solving state.  Several recommenders (or any other
    consumer) sharing one service share one cache.  Without a service
    the recommender keeps its self-contained direct-solve behaviour;
    service mode accepts the ``solver="power"`` (default) and
    ``solver="push"`` configurations — the service's planner makes the
    power/push/batched call itself — while ``gauss_seidel``/``direct``
    semantics require dropping the injection.

    Examples
    --------
    >>> from repro.datasets import load
    >>> dg = load("imdb/movie-movie", scale=0.2)
    >>> rec = D2PRRecommender(config=RecommenderConfig(p=0.0)).fit(dg.graph)
    >>> top = rec.recommend(k=5)
    >>> related = rec.recommend_for(seeds=[top[0][0]], k=5)
    """

    config: RecommenderConfig = field(default_factory=RecommenderConfig)
    service: RankingService | None = None
    _graph: BaseGraph | None = field(default=None, repr=False)
    _global_scores: NodeScores | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, graph: BaseGraph) -> "D2PRRecommender":
        """Attach a graph and precompute the global significance ranking.

        With an injected :class:`~repro.serving.RankingService` the
        global ranking is served (and cached) by the service, which must
        have been constructed over the same graph object; the
        recommender then shares the service's planner/cache for every
        query and update path.
        """
        self.config.validate()
        graph.require_nonempty()
        if self.service is not None:
            if self.config.solver not in ("power", "push"):
                raise ParameterError(
                    "a RankingService plans power/push/batched execution "
                    f"itself; solver={self.config.solver!r} is not served "
                    "(drop the service injection to use it)"
                )
            if self.service.graph is not graph:
                raise ParameterError(
                    "the injected RankingService serves a different graph "
                    "object; construct the service over the fitted graph"
                )
            self._graph = graph
            self._global_scores = self.service.rank(self._request()).scores
            return self
        self._graph = graph
        self._global_scores = self._solve_global(graph)
        return self

    def _method(self):
        """The registry descriptor of the configured method."""
        from repro.methods import resolve

        return resolve(self.config.method)

    def _group_key(self) -> tuple:
        """The configured method's transition/operator group key."""
        return self._method().group_key(self.config.method_params())

    def _solve_global(self, graph: BaseGraph) -> NodeScores:
        """Direct (service-less) global solve for the configured method."""
        from repro.core.engine import solve_transition

        method = self._method()
        if method.family == "d2pr":
            return d2pr(
                graph,
                self.config.p,
                alpha=self.config.alpha,
                beta=self.config.beta if self.config.weighted else 0.0,
                weighted=self.config.weighted,
                solver=self.config.solver,
            )
        if self.config.solver != "power":
            raise ParameterError(
                f"method {self.config.method!r} solves by power iteration; "
                f"solver={self.config.solver!r} applies to the d2pr family "
                "only"
            )
        key = self._group_key()
        if method.batchable:
            bundle = method.operator(graph, key)
            result = solve_transition(
                bundle.mat,
                alpha=self.config.alpha,
                operator=bundle,
            )
        else:
            result = method.solve(graph, key, alpha=self.config.alpha)
        return NodeScores(graph, result.scores, result)

    def _request(
        self,
        *,
        seeds: Mapping[Node, float] | Sequence[Node] | None = None,
        tol: float = 1e-10,
    ) -> RankRequest:
        """The service-layer request describing this recommender's query."""
        return RankRequest(
            method=self.config.method,
            p=self.config.p,
            alpha=self.config.alpha,
            beta=self.config.beta if self.config.weighted else 0.0,
            weighted=self.config.weighted,
            fatigue=self.config.fatigue,
            seeds=seed_weights(seeds) if seeds is not None else None,
            tol=tol,
        )

    def update(self, delta, *, tol: float = 1e-10) -> "D2PRRecommender":
        """Absorb a :class:`~repro.graph.delta.GraphDelta` without a refit.

        The streaming-serving counterpart of :meth:`fit`: the delta is
        applied to the fitted graph through the delta-aware cache refresh
        and the precomputed global ranking is **incrementally corrected**
        (:func:`repro.core.engine.update_scores`) instead of re-solved
        from scratch — bulk serving (:meth:`recommend`,
        :meth:`recommend_for_many`, :meth:`recommend_one`) keeps running
        against up-to-date scores and patched cached operators while the
        graph takes edits.  Fitted on a frozen shared graph, the update
        raises :class:`~repro.errors.FrozenGraphError` (fit a private
        ``graph.copy()`` to serve a mutable stream).

        With an injected service the delta routes through
        :meth:`~repro.serving.RankingService.apply_delta`, so *every*
        cached answer the service holds (this recommender's and any
        other client's) is corrected instead of evicted; the global
        ranking refresh is then itself an ``"incremental"``-planned
        cache correction.

        Returns ``self`` for chaining.
        """
        _graph, scores = self._require_fitted()
        if self.service is not None:
            self.service.apply_delta(delta)
            self._global_scores = self.service.rank(
                self._request(tol=tol)
            ).scores
            return self
        if not self._method().supports_incremental:
            # Spectral answers carry no incremental-correction
            # certificate; absorb the delta and re-solve directly.
            _graph.apply_delta(delta)
            self._global_scores = self._solve_global(_graph)
            return self
        self._global_scores = update_scores(
            scores,
            delta,
            p=self.config.p,
            alpha=self.config.alpha,
            beta=self.config.beta if self.config.weighted else 0.0,
            weighted=self.config.weighted,
            method=self.config.method,
            fatigue=self.config.fatigue,
            tol=tol,
        )
        return self

    def _require_fitted(self) -> tuple[BaseGraph, NodeScores]:
        if self._graph is None or self._global_scores is None:
            raise ReproError("recommender is not fitted; call fit(graph) first")
        return self._graph, self._global_scores

    @property
    def scores(self) -> NodeScores:
        """Global D2PR scores of the fitted graph."""
        return self._require_fitted()[1]

    # ------------------------------------------------------------------
    # recommendation
    # ------------------------------------------------------------------
    def recommend(
        self, k: int = 10, *, exclude: Sequence[Node] = ()
    ) -> list[tuple[Node, float]]:
        """Top-``k`` items by global D2PR significance.

        ``exclude`` removes items the user already knows.  **Short-result
        contract:** the list holds fewer than ``k`` entries exactly when
        fewer than ``k`` eligible items exist (the graph runs out after
        exclusions) — never because of internal truncation.  Selection is
        ``argpartition``-based (O(n + k·log k) with over-fetch for the
        exclusions) instead of a full O(n·log n) ranking per request;
        ordering matches the full stable ranking, ties broken by node
        index.
        """
        _graph, scores = self._require_fitted()
        return self._select_top_k(scores, set(exclude), k)

    @staticmethod
    def _select_top_k(
        scores: NodeScores, banned: set, k: int
    ) -> list[tuple[Node, float]]:
        """Best ``k`` unbanned nodes, matching the stable full-sort order.

        Over-fetches ``k + len(banned)`` candidates via ``argpartition``
        so exclusions can never push an eligible item out of the window;
        returns fewer than ``k`` entries only when the graph has fewer
        than ``k`` eligible nodes.  Tie-break (equal scores → smaller
        node index first) reproduces ``NodeScores.ranking()`` exactly,
        including across the partition boundary.
        """
        if k < 0:
            raise ParameterError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        values = scores.values
        n = values.shape[0]
        m = k + len(banned)
        if m >= n:
            order = np.argsort(-values, kind="stable")
        else:
            part = np.argpartition(-values, m - 1)[:m]
            # argpartition picks an arbitrary subset of boundary ties;
            # re-pick the == threshold candidates by smallest index so the
            # selection matches the stable full sort.
            thresh = values[part].min()
            above = part[values[part] > thresh]
            at = np.flatnonzero(values == thresh)[: m - above.size]
            cand = np.concatenate([above, at])
            order = cand[np.lexsort((cand, -values[cand]))]
        graph = scores.graph
        out: list[tuple[Node, float]] = []
        for idx in order:
            node = graph.node_at(int(idx))
            if node in banned:
                continue
            out.append((node, float(values[idx])))
            if len(out) == k:
                break
        return out

    @classmethod
    def _top_k(
        cls,
        seeded: NodeScores,
        seed_set: set,
        k: int,
        include_seeds: bool,
    ) -> list[tuple[Node, float]]:
        return cls._select_top_k(
            seeded, set() if include_seeds else seed_set, k
        )

    def recommend_for(
        self,
        seeds: Mapping[Node, float] | Sequence[Node],
        k: int = 10,
        *,
        include_seeds: bool = False,
        tol: float | None = None,
    ) -> list[tuple[Node, float]]:
        """Top-``k`` items related to ``seeds`` via personalised D2PR.

        Seeds are excluded from the result unless ``include_seeds=True``.
        ``tol`` overrides the solver's convergence tolerance (``None``
        keeps the solver default; the direct solver is exact regardless).
        """
        graph, _scores = self._require_fitted()
        if self.service is not None:
            seeded = self.service.rank(
                self._request(seeds=seeds, tol=tol if tol is not None else 1e-10)
            ).scores
            return self._top_k(seeded, set(seeds), k, include_seeds)
        method = self._method()
        if method.family == "d2pr":
            extra = {} if tol is None else {"tol": tol}
            seeded = personalized_d2pr(
                graph,
                seeds,
                self.config.p,
                alpha=self.config.alpha,
                beta=self.config.beta if self.config.weighted else 0.0,
                weighted=self.config.weighted,
                solver=self.config.solver,
                **extra,
            )
            return self._top_k(seeded, set(seeds), k, include_seeds)
        seeded = self._solve_personalized(graph, seeds, tol=tol)
        return self._top_k(seeded, set(seeds), k, include_seeds)

    def _solve_personalized(
        self,
        graph: BaseGraph,
        seeds: Mapping[Node, float] | Sequence[Node],
        *,
        tol: float | None,
    ) -> NodeScores:
        """Seeded solve for non-d2pr-family methods (service-less mode).

        The registry gates eligibility: a global eigen measure rejects
        seeds outright, a seed-capable method solves against its own
        teleport vector — the batchable fatigued transition through the
        shared solver dispatch, Katz through its direct power method.
        """
        from dataclasses import replace

        from repro.core.engine import build_teleport, solve_transition

        method = self._method()
        method.validate(replace(self.config.method_params(), has_seeds=True))
        if self.config.solver != "power":
            raise ParameterError(
                f"method {self.config.method!r} solves by power iteration; "
                f"solver={self.config.solver!r} applies to the d2pr family "
                "only"
            )
        teleport = build_teleport(graph, seed_weights(seeds))
        extra = {} if tol is None else {"tol": tol}
        key = self._group_key()
        if method.batchable:
            bundle = method.operator(graph, key)
            result = solve_transition(
                bundle.mat,
                alpha=self.config.alpha,
                teleport=teleport,
                operator=bundle,
                **extra,
            )
        else:
            result = method.solve(
                graph,
                key,
                alpha=self.config.alpha,
                teleport=teleport,
                **extra,
            )
        return NodeScores(graph, result.scores, result)

    def recommend_one(
        self,
        seeds: Mapping[Node, float] | Sequence[Node],
        k: int = 10,
        *,
        include_seeds: bool = False,
        tol: float = 1e-8,
    ) -> list[tuple[Node, float]]:
        """Low-latency single-user recommendation via forward push.

        The interactive-serving counterpart of :meth:`recommend_for`: one
        user's seeds, answered by the localized Gauss–Southwell push
        solver (:func:`repro.linalg.forward_push`) against the
        recommender's graph-cached operator bundle.  Push only touches the
        frontier the personalised mass actually reaches — for sparse seed
        sets on large graphs that is a small neighbourhood around the
        seeds and their high-degree hubs, not the whole edge stream, so a
        single query answers in a fraction of a full power-iteration
        solve (``tools/bench_perf.py``, ``single_query``).  Non-localized
        queries transparently fall back to warm-started power iteration,
        and non-power solver configurations keep their verification
        semantics through :meth:`recommend_for`.

        ``tol`` bounds the L1 distance to the exact personalised scores
        (push's residual-mass certificate); ranking-quality differences
        at the default 1e-8 are negligible.
        """
        graph, _scores = self._require_fitted()
        if self.service is not None:
            # The service's planner makes the push-vs-batch call (and its
            # cache makes repeat queries free).
            seeded = self.service.rank(
                self._request(seeds=seeds, tol=tol)
            ).scores
            return self._top_k(seeded, set(seeds), k, include_seeds)
        if self.config.solver != "power" or not self._method().supports_push:
            # Keep the configured solver's (or method's) semantics —
            # spectral seeds go through the direct solve with tol honoured.
            return self.recommend_for(
                seeds, k, include_seeds=include_seeds, tol=tol
            )
        from repro.methods import operator_for

        bundle = operator_for(graph, self._group_key())
        # One source of truth for seed semantics: normalise through the
        # same helper recommend_for's personalised solve uses, then hand
        # push an explicit (indices, weights) pair.
        by_node = seed_weights(seeds)
        indices = np.array(
            [graph.index_of(node) for node in by_node], dtype=np.int64
        )
        weights = np.array(list(by_node.values()))
        result = forward_push(
            None,
            (indices, weights),
            alpha=self.config.alpha,
            tol=tol,
            operator=bundle,
        )
        seeded = NodeScores(graph, result.scores, result)
        return self._top_k(seeded, set(seeds), k, include_seeds)

    def recommend_for_many(
        self,
        users: Sequence[Mapping[Node, float] | Sequence[Node]],
        k: int = 10,
        *,
        include_seeds: bool = False,
        precision: str = "double",
        batch_size: int = 256,
    ) -> list[list[tuple[Node, float]]]:
        """Bulk serving: top-``k`` recommendations for many users at once.

        ``users`` is a sequence of per-user seed specifications (each a
        seed sequence or ``{node: weight}`` mapping).  Every user's
        personalised system shares the recommender's transition matrix and
        differs only in its teleport vector, so the whole cohort is solved
        as **one batched pass** (:func:`repro.core.engine.solve_many`) —
        the path to take when serving query traffic, ``tools/bench_perf.py
        ppr_batch`` measures the speedup over per-user solves.

        Returns one recommendation list per user, aligned with ``users``.
        Non-power solvers fall back to per-user :meth:`recommend_for`.

        ``precision="mixed"`` enables the float32+float64 serving mode of
        the batched solver — scores stay within solver-tolerance of the
        double-precision answer (see ``docs/performance.md``), which is
        the configuration to run under load.

        The cohort is served in slices of ``batch_size`` users per solver
        call: one solver call holds the full ``n × K`` teleport and score
        blocks in memory, so the slice size caps peak memory at roughly
        ``5 · 8 · n · batch_size`` bytes regardless of cohort size.

        With an injected :class:`~repro.serving.RankingService` the
        service's coalescer ``window`` (default 16) takes over that
        memory-capping role and ``batch_size`` is not used; ``precision``
        must match the service's configured precision (a conflict
        raises, since precision is a property of the serving stack, not
        of one call).
        """
        graph, _scores = self._require_fitted()
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        users = list(users)
        if not users:
            return []
        if self.service is not None:
            # One burst through the service: the microbatch coalescer
            # windows the batched columns (its window, not batch_size,
            # caps block memory) and repeat users hit the result cache.
            # Solve precision is a property of the service's coalescer,
            # so a conflicting per-call request must fail loudly rather
            # than silently serve the other accuracy mode.
            if precision != self.service.precision:
                raise ParameterError(
                    f"precision={precision!r} conflicts with the injected "
                    f"RankingService (precision="
                    f"{self.service.precision!r}); construct the service "
                    "with the precision to serve under"
                )
            results = self.service.rank_many(
                [self._request(seeds=seeds) for seeds in users]
            )
            return [
                self._top_k(served.scores, set(seeds), k, include_seeds)
                for seeds, served in zip(users, results)
            ]
        if self.config.solver != "power":
            return [
                self.recommend_for(seeds, k, include_seeds=include_seeds)
                for seeds in users
            ]
        beta = self.config.beta if self.config.weighted else 0.0
        out: list[list[tuple[Node, float]]] = []
        for start in range(0, len(users), batch_size):
            chunk = users[start : start + batch_size]
            queries = [
                RankQuery(
                    p=self.config.p,
                    alpha=self.config.alpha,
                    beta=beta,
                    weighted=self.config.weighted,
                    teleport=seeds,
                    method=self.config.method,
                    fatigue=self.config.fatigue,
                )
                for seeds in chunk
            ]
            results = solve_many(graph, queries, precision=precision)
            out.extend(
                self._top_k(seeded, set(seeds), k, include_seeds)
                for seeds, seeded in zip(chunk, results)
            )
        return out

    # ------------------------------------------------------------------
    # hyper-parameter selection
    # ------------------------------------------------------------------
    def tune_p(
        self,
        significance: np.ndarray,
        p_grid: Sequence[float] = tuple(np.arange(-4.0, 4.01, 0.5)),
        *,
        train_mask: np.ndarray | None = None,
    ) -> tuple[float, dict[float, float]]:
        """Pick the de-coupling weight maximising Spearman correlation.

        Parameters
        ----------
        significance:
            Ground-truth node significances aligned with graph indices.
        p_grid:
            Candidate values (default: the paper's −4..4 step 0.5 sweep).
        train_mask:
            Optional boolean mask restricting the correlation to a training
            subset of nodes (the remaining nodes act as held-out data the
            caller can evaluate separately).

        Returns
        -------
        (best_p, {p: correlation})
            Dict keys are grid values rounded to 10 decimals, so
            ``curve[1.5]`` works even when the grid came from
            ``np.arange`` (whose points carry float noise like
            ``1.5000000000000004``).
        """
        graph, _ = self._require_fitted()
        if "p" not in self._method().vocabulary:
            raise ParameterError(
                f"method {self.config.method!r} does not take p; tune_p "
                "applies to the degree-de-coupled methods only"
            )
        significance = np.asarray(significance, dtype=np.float64)
        if significance.shape != (graph.number_of_nodes,):
            raise ParameterError(
                f"significance must have shape ({graph.number_of_nodes},), "
                f"got {significance.shape}"
            )
        if train_mask is not None:
            train_mask = np.asarray(train_mask, dtype=bool)
            if train_mask.shape != significance.shape:
                raise ParameterError("train_mask shape mismatch")
            if train_mask.sum() < 2:
                raise ParameterError("train_mask must keep at least 2 nodes")

        beta = self.config.beta if self.config.weighted else 0.0
        ps = [float(p) for p in p_grid]
        if self.config.solver == "power":
            # One batched call: each p is its own transition matrix, but
            # solve_many warm-starts consecutive grid points from each
            # other, and the graph's matrix cache amortises the exports.
            results = solve_many(
                graph,
                [
                    RankQuery(
                        p=p,
                        alpha=self.config.alpha,
                        beta=beta,
                        weighted=self.config.weighted,
                        method=self.config.method,
                        fatigue=self.config.fatigue,
                    )
                    for p in ps
                ],
            )
        else:
            results = [
                d2pr(
                    graph,
                    p,
                    alpha=self.config.alpha,
                    beta=beta,
                    weighted=self.config.weighted,
                    solver=self.config.solver,
                )
                for p in ps
            ]
        curve: dict[float, float] = {}
        for p, scores in zip(ps, results):
            values = scores.values
            if train_mask is not None:
                corr = spearman(values[train_mask], significance[train_mask])
            else:
                corr = spearman(values, significance)
            curve[round(p, 10)] = corr
        best_p = max(curve, key=lambda key: curve[key])
        return best_p, curve

    def with_p(self, p: float) -> "D2PRRecommender":
        """Return a new recommender with ``p`` replaced (and refitted)."""
        new = D2PRRecommender(
            config=RecommenderConfig(
                p=p,
                alpha=self.config.alpha,
                beta=self.config.beta,
                weighted=self.config.weighted,
                solver=self.config.solver,
                method=self.config.method,
                fatigue=self.config.fatigue,
            ),
            service=self.service,
        )
        if self._graph is not None:
            new.fit(self._graph)
        return new
