"""Recommendation layer on top of degree de-coupled PageRank."""

from repro.recsys.evaluation import (
    HoldoutResult,
    RankingEvaluation,
    evaluate_scores,
    holdout_tune,
)
from repro.recsys.recommender import D2PRRecommender, RecommenderConfig

__all__ = [
    "D2PRRecommender",
    "RecommenderConfig",
    "RankingEvaluation",
    "evaluate_scores",
    "HoldoutResult",
    "holdout_tune",
]
