"""Registry exporters: Prometheus text exposition and JSON.

``to_prometheus`` renders the classic text format (``# HELP`` /
``# TYPE`` header lines followed by ``name{labels} value`` samples);
bounded-window histograms are exported as Prometheus *summaries* —
``{quantile="0.5"|"0.95"|"0.99"}`` samples over the sliding window plus
the untruncated ``_count`` / ``_sum`` series — because the registry
keeps exact recent quantiles, not fixed buckets.  ``to_json`` is the
structured twin (``json.dumps`` of :meth:`MetricsRegistry.snapshot`
plus a format tag).

``parse_prometheus`` is the validating reader the CI smoke and tests
round-trip through: it accepts exactly what ``to_prometheus`` emits
(and any well-formed exposition text) and raises ``ValueError`` on the
first malformed line, returning ``{(name, labels…): value}``.
"""

from __future__ import annotations

import json
import math
import re

__all__ = ["parse_prometheus", "to_json", "to_prometheus"]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in merged.items()
    )
    return "{" + body + "}"


def _fmt_value(value) -> str:
    value = float(value)
    if value == math.floor(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(registry) -> str:
    """Render every family of ``registry`` in text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        snap = family.snapshot()
        if snap["help"]:
            lines.append(f"# HELP {family.name} {_escape_help(snap['help'])}")
        kind = "summary" if snap["kind"] == "histogram" else snap["kind"]
        lines.append(f"# TYPE {family.name} {kind}")
        for child in snap["values"]:
            labels = child["labels"]
            if snap["kind"] == "histogram":
                for q_key, q_label in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                    if child.get(q_key) is not None:
                        lines.append(
                            f"{family.name}"
                            f"{_fmt_labels(labels, {'quantile': q_label})} "
                            f"{_fmt_value(child[q_key])}"
                        )
                lines.append(
                    f"{family.name}_count{_fmt_labels(labels)} "
                    f"{_fmt_value(child['count'])}"
                )
                lines.append(
                    f"{family.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(child['sum'])}"
                )
            else:
                lines.append(
                    f"{family.name}{_fmt_labels(labels)} "
                    f"{_fmt_value(child['value'])}"
                )
    return "\n".join(lines) + "\n"


def to_json(registry) -> str:
    """JSON document of the full registry snapshot."""
    return json.dumps(
        {"format": "repro-telemetry/1", "metrics": registry.snapshot()},
        sort_keys=True,
    )


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{(name, ((label, value), …)): float}``.

    Raises ``ValueError`` on the first line that is neither a comment,
    blank, nor a well-formed sample — the CI gate that keeps
    :func:`to_prometheus` emitting scrapeable output.
    """
    samples: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        labels: list[tuple[str, str]] = []
        body = match.group("labels")
        if body:
            for part in body.split(","):
                pair = _LABEL_RE.match(part.strip())
                if pair is None:
                    raise ValueError(
                        f"malformed label on line {lineno}: {part!r}"
                    )
                labels.append((pair.group(1), pair.group(2)))
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"malformed sample value on line {lineno}: "
                f"{match.group('value')!r}"
            ) from exc
        samples[(match.group("name"), tuple(labels))] = value
    return samples
