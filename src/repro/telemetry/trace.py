"""Request tracing: spans threaded through the serving stack.

A :class:`Trace` is one request's tree of :class:`Span` timings —
admission wait, planning, solve, cache commit — plus whatever the
solvers report through :func:`record_solver`.  The active span rides a
:mod:`contextvars` context variable, so deeply nested layers (planner,
engine, solvers) annotate the current request without any plumbing; the
cross-thread hops of the serving stack (submit thread → coalescer flush
→ resolver thread) hand the span over explicitly on the ticket and
re-enter it with :func:`activate_span`.

Everything is **zero-cost when disabled**: with no tracer (or with the
sampler skipping a request) the context variable stays ``None`` and
every hook returns after one load — solvers pay a single dictionary-free
check per call, not per iteration.

Sampling is deterministic (every ``sample_every``-th started request),
so traced runs are reproducible and tests never flake on randomness.
Finished traces land in a bounded ring (oldest evicted first);
:meth:`Tracer.slow_query_log` filters the ring by root duration, which
is how degree-skewed requests — the expensive push frontiers and shard
couplings the paper's log-log analysis predicts — are caught in the act.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ParameterError

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "activate_span",
    "active_span",
    "annotate",
    "child_span",
    "record_result",
    "record_solver",
]

#: The span new child spans and solver reports attach to.  ``None``
#: whenever the current request is untraced — the fast path.
_ACTIVE: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_active_span", default=None
)


class Span:
    """One timed, annotated region of a request.

    Spans form a tree under the trace's root.  ``annotations`` is a
    plain dict of request facts (plan reason, flush cause, batch
    occupancy, cache outcome); solver reports accumulate under the
    ``"solver"`` key as a list of dicts, one per solver invocation that
    ran while this span was active.

    A span is written by one logical thread at a time — the serving
    stack hands spans across threads only through tickets whose
    condition variables establish the necessary happens-before — so
    annotation writes are unsynchronised by design.
    """

    __slots__ = ("name", "start", "end", "annotations", "children", "_clock")

    def __init__(self, name: str, clock: Callable[[], float], **annotations):
        self.name = name
        self._clock = clock
        self.start = clock()
        self.end: float | None = None
        self.annotations: dict = dict(annotations)
        self.children: list[Span] = []

    def child(self, name: str, **annotations) -> "Span":
        span = Span(name, self._clock, **annotations)
        self.children.append(span)
        return span

    def annotate(self, **annotations) -> None:
        self.annotations.update(annotations)

    def record_solver(self, record: dict) -> None:
        self.annotations.setdefault("solver", []).append(record)

    def close(self) -> None:
        if self.end is None:
            self.end = self._clock()

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else self._clock()
        return end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "annotations": self.annotations,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Trace:
    """One request's span tree plus its lifecycle.

    ``finish()`` is idempotent and thread-safe: the resolver that
    completes a coalesced batch and the submitter that filed it may
    both try to finish, and only the first lands the trace in the
    tracer's ring.
    """

    __slots__ = ("trace_id", "root", "_tracer", "_finished", "_lock")

    def __init__(self, trace_id: int, name: str, tracer: "Tracer", **annotations):
        self.trace_id = trace_id
        self.root = Span(name, tracer._clock, **annotations)
        self._tracer = tracer
        self._finished = False
        self._lock = threading.Lock()

    @contextmanager
    def activate(self) -> Iterator[Span]:
        """Make the root span the ambient span for the ``with`` body."""
        token = _ACTIVE.set(self.root)
        try:
            yield self.root
        finally:
            _ACTIVE.reset(token)

    def finish(self) -> None:
        with self._lock:
            if self._finished:
                return
            self._finished = True
        for span in self.root.walk():
            span.close()
        self._tracer._store(self)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def duration(self) -> float:
        return self.root.duration

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, **self.root.to_dict()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(id={self.trace_id}, root={self.root!r})"


class Tracer:
    """Deterministic sampler plus bounded ring of finished traces.

    ``sample_every=1`` traces every request, ``n`` every n-th,
    ``0`` disables tracing entirely (``start`` always returns ``None``
    and the stack stays on its untraced fast path).  The ring holds the
    most recent ``capacity`` finished traces; memory is bounded no
    matter how long the service runs.
    """

    def __init__(
        self,
        *,
        sample_every: int = 1,
        capacity: int = 256,
        clock: Callable[[], float] | None = None,
        metrics=None,
    ):
        if sample_every < 0:
            raise ParameterError(
                f"sample_every must be >= 0, got {sample_every}"
            )
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.sample_every = int(sample_every)
        self.capacity = int(capacity)
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._ring: deque[Trace] = deque(maxlen=self.capacity)
        self._ids = itertools.count(1)
        self._seq = 0
        self._m_started = None
        self._m_sampled = None
        if metrics is not None:
            self._m_started = metrics.counter(
                "trace_requests_total", "Requests offered to the tracer"
            )
            self._m_sampled = metrics.counter(
                "trace_sampled_total", "Requests that produced a trace"
            )

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0

    def start(self, name: str, **annotations) -> Trace | None:
        """Begin a trace for this request, or ``None`` if not sampled."""
        if self._m_started is not None:
            self._m_started.inc()
        if self.sample_every == 0:
            return None
        with self._lock:
            seq = self._seq
            self._seq += 1
            if seq % self.sample_every != 0:
                return None
            trace_id = next(self._ids)
        if self._m_sampled is not None:
            self._m_sampled.inc()
        return Trace(trace_id, name, self, **annotations)

    def _store(self, trace: Trace) -> None:
        with self._lock:
            self._ring.append(trace)

    def traces(self) -> list[Trace]:
        """Snapshot of the finished-trace ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def slow_query_log(self, threshold: float) -> list[Trace]:
        """Finished traces whose total duration is ``>= threshold``."""
        return [t for t in self.traces() if t.duration >= threshold]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


def active_span() -> Span | None:
    """The ambient span of the current request, or ``None`` if untraced."""
    return _ACTIVE.get()


@contextmanager
def activate_span(span: Span | None) -> Iterator[Span | None]:
    """Re-enter a span handed over from another thread (or no-op on None)."""
    if span is None:
        yield None
        return
    token = _ACTIVE.set(span)
    try:
        yield span
    finally:
        _ACTIVE.reset(token)


@contextmanager
def child_span(name: str, **annotations) -> Iterator[Span | None]:
    """Open a timed child of the ambient span; no-op when untraced.

    Yields the new span (annotate it freely) or ``None`` when there is
    no ambient span — callers must guard annotation with
    ``if span is not None``.
    """
    parent = _ACTIVE.get()
    if parent is None:
        yield None
        return
    span = parent.child(name, **annotations)
    token = _ACTIVE.set(span)
    try:
        yield span
    finally:
        _ACTIVE.reset(token)
        span.close()


def annotate(**annotations) -> None:
    """Attach facts to the ambient span; silently drops when untraced."""
    span = _ACTIVE.get()
    if span is not None:
        span.annotations.update(annotations)


def record_solver(method: str, **info) -> None:
    """Report one solver invocation into the ambient span.

    The zero-cost-when-disabled hook: solvers call this exactly once per
    invocation (never per sweep), and with no ambient span the cost is a
    single context-variable load.  ``None`` values are dropped so
    callers can pass optional facts unconditionally.
    """
    span = _ACTIVE.get()
    if span is None:
        return
    record = {"method": method}
    for key, value in info.items():
        if value is not None:
            record[key] = value
    span.record_solver(record)


def record_result(result, **extra):
    """Report a ``PageRankResult``-shaped solve and return it unchanged.

    The one-line wrapper for solver return sites: pulls ``method``,
    ``iterations``, ``converged``, and the final residual off the result
    so every exit path of a solver reports the same schema.  Extra
    keyword facts (fallback cause, frontier peak, shard counts) ride
    along; ``None`` values are dropped.
    """
    span = _ACTIVE.get()
    if span is None:
        return result
    record = {
        "method": result.method,
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
    }
    residuals = getattr(result, "residuals", None)
    if residuals:
        record["residual"] = float(residuals[-1])
    for key, value in extra.items():
        if value is not None:
            record[key] = value
    span.record_solver(record)
    return result
