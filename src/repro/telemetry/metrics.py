"""Thread-safe metrics primitives: counters, gauges, bounded histograms.

One :class:`MetricsRegistry` per serving stack unifies the per-layer
statistics that used to live in ad-hoc dicts (`RankingService` plan mix,
cache hit/evict/correct counts, coalescer flush causes, admission
accept/reject, shard local/fallback counters, the latency ring).  Every
mutation happens under the owning family's lock, so concurrent writers
from client threads, the coalescer resolver, and the front's worker pool
never produce torn updates — see ``docs/serving.md`` § Concurrency for
the ordering rules.

Design points
-------------
* **Families and children.**  A metric *family* is registered once per
  name (``registry.counter("cache_hits_total")``); label values select a
  *child* (``counter.inc(strategy="push")``).  Registration is
  idempotent: asking for an existing name with the same kind and label
  names returns the same family object, so layers can share a registry
  without coordinating creation order.  A kind or label-name mismatch
  raises :class:`~repro.errors.ParameterError` — silent aliasing of two
  different metrics under one name is always a bug.
* **Histograms are bounded.**  Each child keeps a sliding window of the
  most recent ``window`` observations (for p50/p95/p99/mean/last) plus
  never-truncated ``count``/``sum`` totals, exactly the shape the
  planner's self-tuning needs and the shape the old
  ``serving.latency.LatencyRecorder`` pinned.
* **Callback gauges.**  A gauge child may be bound to a zero-argument
  callable (queue depth, ring occupancy); it is evaluated at snapshot
  time.  Callbacks may acquire component locks, therefore component
  code must never update *gauge* families while holding a lock a
  callback needs (counters/histograms are leaf locks and always safe).

The registry itself holds no serving state — it can outlive a service,
be shared by several fronts, or be exported from a background thread at
any time via :meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Callable, Iterable, Mapping

from repro.errors import ParameterError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Label values are keyed by a sorted tuple of (name, value) pairs so the
#: same labels in any keyword order address the same child.
LabelKey = tuple


def _quantile(window: list[float], q: float) -> float:
    """Nearest-rank-interpolated quantile of a non-empty list."""
    data = sorted(window)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class _Family:
    """Shared machinery: name/help/label validation, per-family lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]):
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _NAME_RE.match(label):
                raise ParameterError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if set(labels) != set(self.label_names):
            raise ParameterError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter(_Family):
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def values(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def total(self) -> float:
        """Sum over every child — e.g. flushes regardless of cause."""
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> dict:
        with self._lock:
            values = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"kind": self.kind, "help": self.help, "values": values}


class Gauge(_Family):
    """Point-in-time values; children may be callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[LabelKey, float] = {}
        self._callbacks: dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_max(self, value: float, **labels) -> None:
        """Raise the gauge to ``value`` if larger (high-water marks)."""
        key = self._key(labels)
        value = float(value)
        with self._lock:
            if value > self._values.get(key, float("-inf")):
                self._values[key] = value

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Bind the child to ``fn``, evaluated at snapshot time.

        Re-binding replaces the previous callback — a restarted component
        (e.g. a new front sharing a service registry) takes over cleanly.
        """
        key = self._key(labels)
        with self._lock:
            self._callbacks[key] = fn

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            fn = self._callbacks.get(key)
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._values.get(key, 0.0)

    def snapshot(self) -> dict:
        with self._lock:
            stored = dict(self._values)
            callbacks = dict(self._callbacks)
        for key, fn in callbacks.items():
            try:
                stored[key] = float(fn())
            except Exception:  # a dead component must not kill exports
                stored.setdefault(key, 0.0)
        values = [
            {"labels": dict(key), "value": value}
            for key, value in sorted(stored.items())
        ]
        return {"kind": self.kind, "help": self.help, "values": values}


class _HistogramChild:
    __slots__ = ("window", "count", "sum", "last")

    def __init__(self, maxlen: int):
        self.window: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.sum = 0.0
        self.last = 0.0


class Histogram(_Family):
    """Bounded-window distribution with exact totals.

    Quantiles (p50/p95/p99), mean, and ``last`` are computed over the
    most recent ``window`` observations; ``count`` and ``sum`` are
    never truncated.  Memory is bounded by ``window`` per child no
    matter how many observations arrive — the property the serving
    latency ring has always relied on.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        window: int = 256,
    ):
        if window < 1:
            raise ParameterError(f"histogram window must be >= 1, got {window}")
        super().__init__(name, help, label_names)
        self.window = int(window)
        self._children: dict[LabelKey, _HistogramChild] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(self.window)
            child.window.append(value)
            child.count += 1
            child.sum += value
            child.last = value

    def count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0

    def quantile(self, q: float, **labels) -> float | None:
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None or not child.window:
                return None
            window = list(child.window)
        return _quantile(window, q)

    def _summary_locked(self, child: _HistogramChild) -> dict:
        window = list(child.window)
        out = {
            "count": child.count,
            "window": len(window),
            "sum": child.sum,
            "last": child.last,
        }
        if window:
            out["mean"] = sum(window) / len(window)
            out["p50"] = _quantile(window, 0.50)
            out["p95"] = _quantile(window, 0.95)
            out["p99"] = _quantile(window, 0.99)
        else:  # pragma: no cover - children are created by observe()
            out.update(mean=None, p50=None, p95=None, p99=None)
        return out

    def summary(self, **labels) -> dict | None:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return None
            return self._summary_locked(child)

    def summaries(self) -> dict[LabelKey, dict]:
        """Per-child summaries — one consistent (per-child) read each."""
        with self._lock:
            return {
                key: self._summary_locked(child)
                for key, child in sorted(self._children.items())
            }

    def snapshot(self) -> dict:
        values = [
            {"labels": dict(key), **summary}
            for key, summary in self.summaries().items()
        ]
        return {
            "kind": self.kind,
            "help": self.help,
            "window_limit": self.window,
            "values": values,
        }


class MetricsRegistry:
    """Named home of every metric family in one serving stack.

    Registration is idempotent per (name, kind, label names); lookups of
    a family someone else registered return the same object, so the
    cache, coalescer, admission gate, and service can all be handed one
    registry and wire themselves up independently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name, help, labels, **kwargs) -> _Family:
        labels = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != labels:
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            family = cls(name, help, labels, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        window: int = 256,
    ) -> Histogram:
        family = self._register(Histogram, name, help, labels, window=window)
        if family.window != int(window):
            raise ParameterError(
                f"histogram {name!r} already registered with "
                f"window={family.window}, got {window}"
            )
        return family

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict:
        """Plain-dict view of every family — the exporters' input."""
        return {family.name: family.snapshot() for family in self.families()}

    def to_prometheus(self) -> str:
        from repro.telemetry.export import to_prometheus

        return to_prometheus(self)

    def to_json(self) -> str:
        from repro.telemetry.export import to_json

        return to_json(self)
