"""Observability for the serving stack: metrics, tracing, exporters.

Named ``telemetry`` (not ``metrics``) because :mod:`repro.metrics`
already holds the ranking-*quality* measures; this package is about the
*system* — who asked what, which plan ran, how the solver converged,
and where the time went.  See ``docs/observability.md`` for the
registry contract, the span schema, and the exporter formats.
"""

from repro.telemetry.export import parse_prometheus, to_json, to_prometheus
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.trace import (
    Span,
    Trace,
    Tracer,
    activate_span,
    active_span,
    annotate,
    child_span,
    record_result,
    record_solver,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "activate_span",
    "active_span",
    "annotate",
    "child_span",
    "parse_prometheus",
    "record_result",
    "record_solver",
    "to_json",
    "to_prometheus",
]
