"""Top-k ranking quality measures for the recommendation layer.

The paper evaluates D2PR through rank correlations; a downstream
recommender cares about the *top* of the ranking.  These metrics quantify
that: precision@k / recall@k against a relevant set, NDCG@k against graded
significances, top-k overlap between two rankings, and mean reciprocal
rank.
"""

from __future__ import annotations

from collections.abc import Sequence, Set

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "top_k_overlap",
    "reciprocal_rank",
    "average_precision",
]


def _check_k(k: int) -> None:
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")


def precision_at_k(ranking: Sequence, relevant: Set, k: int) -> float:
    """Fraction of the first ``k`` ranked items that are relevant."""
    _check_k(k)
    if not ranking:
        return 0.0
    top = ranking[:k]
    hits = sum(1 for item in top if item in relevant)
    return hits / min(k, len(ranking)) if len(ranking) < k else hits / k


def recall_at_k(ranking: Sequence, relevant: Set, k: int) -> float:
    """Fraction of the relevant set found in the first ``k`` items."""
    _check_k(k)
    if not relevant:
        return 0.0
    top = ranking[:k]
    hits = sum(1 for item in top if item in relevant)
    return hits / len(relevant)


def ndcg_at_k(
    ranking: Sequence,
    gains: dict,
    k: int,
) -> float:
    """Normalised discounted cumulative gain at ``k``.

    ``gains`` maps items to non-negative graded relevances (e.g. average
    ratings).  Items missing from ``gains`` contribute 0.  Uses the
    ``gain / log2(position + 1)`` formulation; the ideal ordering is the
    gains sorted descending.
    """
    _check_k(k)
    if any(g < 0 for g in gains.values()):
        raise ParameterError("gains must be non-negative")
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    actual = sum(
        gains.get(item, 0.0) * discounts[pos]
        for pos, item in enumerate(ranking[:k])
    )
    ideal_gains = sorted(gains.values(), reverse=True)[:k]
    ideal = sum(g * discounts[pos] for pos, g in enumerate(ideal_gains))
    if ideal == 0.0:
        return 0.0
    return float(actual / ideal)


def top_k_overlap(ranking_a: Sequence, ranking_b: Sequence, k: int) -> float:
    """Jaccard overlap of the top-``k`` prefixes of two rankings.

    1.0 means identical top-k sets (order ignored); 0.0 means disjoint.
    Useful for quantifying how strongly a change of ``p`` reshuffles the
    head of the ranking (Table 2's phenomenon, summarised as one number).
    """
    _check_k(k)
    a = set(ranking_a[:k])
    b = set(ranking_b[:k])
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def reciprocal_rank(ranking: Sequence, relevant: Set) -> float:
    """1 / position of the first relevant item (0.0 when none appears)."""
    for pos, item in enumerate(ranking, start=1):
        if item in relevant:
            return 1.0 / pos
    return 0.0


def average_precision(ranking: Sequence, relevant: Set) -> float:
    """Mean of precision@k over the positions of relevant items.

    The single-query building block of MAP; 0.0 when ``relevant`` is empty
    or never retrieved.
    """
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for pos, item in enumerate(ranking, start=1):
        if item in relevant:
            hits += 1
            total += hits / pos
    if hits == 0:
        return 0.0
    return total / len(relevant)
