"""Correlation and ranking-quality metrics."""

from repro.metrics.correlation import kendall, pearson, rank_data, spearman
from repro.metrics.ranking import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    top_k_overlap,
)

__all__ = [
    "rank_data",
    "pearson",
    "spearman",
    "kendall",
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "top_k_overlap",
    "reciprocal_rank",
    "average_precision",
]
