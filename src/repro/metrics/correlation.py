"""Correlation measures implemented from first principles.

The paper's entire evaluation is built on **Spearman's rank correlation**
between D2PR ranks and application-specific significances (§4.2):

.. math::

    \\rho = \\frac{\\sum_i (x_i - \\bar x)(y_i - \\bar y)}
                 {\\sqrt{\\sum_i (x_i - \\bar x)^2 \\sum_i (y_i - \\bar y)^2}}

computed on the *rank-transformed* vectors with average-tie handling.  We
implement the rank transform and the correlation ourselves (numpy only) and
cross-check against ``scipy.stats`` in the test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "rank_data",
    "pearson",
    "spearman",
    "kendall",
]


def _validate_pair(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ParameterError(
            f"inputs must have equal length, got {x.shape[0]} and {y.shape[0]}"
        )
    if x.shape[0] < 2:
        raise ParameterError("correlation requires at least 2 observations")
    if not (np.isfinite(x).all() and np.isfinite(y).all()):
        raise ParameterError("correlation inputs must be finite")
    return x, y


def rank_data(values: np.ndarray) -> np.ndarray:
    """Average ranks of ``values`` (1 = smallest), ties share their mean rank.

    Equivalent to ``scipy.stats.rankdata(values, method="average")`` but
    self-contained; the paper's Spearman correlation is Pearson on these.

    Examples
    --------
    >>> rank_data(np.array([10.0, 20.0, 20.0, 30.0]))
    array([1. , 2.5, 2.5, 4. ])
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    n = values.shape[0]
    order = np.argsort(values, kind="stable")
    ranks = np.empty(n, dtype=np.float64)
    # Walk runs of equal values in sorted order and assign the average of
    # the 1-based positions the run spans.
    sorted_vals = values[order]
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg_rank
        i = j + 1
    return ranks


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson product-moment correlation of two vectors.

    Returns 0.0 when either input has zero variance (a constant vector
    carries no ordering information — the convention that keeps parameter
    sweeps well-defined on degenerate graphs).
    """
    x, y = _validate_pair(x, y)
    # Pearson is scale-invariant; normalise by the max magnitude *before*
    # centring so subnormal inputs do not lose precision in the mean, and
    # again afterwards so squaring cannot underflow.
    raw_mx = np.max(np.abs(x))
    raw_my = np.max(np.abs(y))
    if raw_mx > 0.0:
        x = x / raw_mx
    if raw_my > 0.0:
        y = y / raw_my
    xc = x - x.mean()
    yc = y - y.mean()
    mx = np.max(np.abs(xc))
    my = np.max(np.abs(yc))
    if mx == 0.0 or my == 0.0:
        return 0.0
    xn = xc / mx
    yn = yc / my
    denom = np.sqrt((xn * xn).sum() * (yn * yn).sum())
    if denom == 0.0:
        return 0.0
    return float((xn * yn).sum() / denom)


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation — Pearson on average-tie ranks.

    This is the agreement measure used throughout the paper's §4: ``x`` is
    typically a score vector from :mod:`repro.core` and ``y`` the
    application-specific significance.

    Examples
    --------
    >>> spearman(np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 30.0]))
    1.0
    >>> spearman(np.array([1.0, 2.0, 3.0]), np.array([30.0, 20.0, 10.0]))
    -1.0
    """
    x, y = _validate_pair(x, y)
    return pearson(rank_data(x), rank_data(y))


def kendall(x: np.ndarray, y: np.ndarray) -> float:
    """Kendall's tau-b rank correlation (tie-corrected).

    ``tau_b = (C − D) / sqrt((n0 − n1)(n0 − n2))`` where ``C``/``D`` count
    concordant/discordant pairs, ``n0 = n(n−1)/2`` and ``n1``/``n2`` count
    tied pairs in each input.  O(n²) implementation — adequate for the
    graph sizes in the experiments, and a useful second opinion next to
    Spearman in the robustness tests.
    """
    x, y = _validate_pair(x, y)
    n = x.shape[0]
    concordant = 0
    discordant = 0
    ties_x = 0
    ties_y = 0
    for i in range(n - 1):
        dx = x[i + 1 :] - x[i]
        dy = y[i + 1 :] - y[i]
        sign = np.sign(dx) * np.sign(dy)
        concordant += int((sign > 0).sum())
        discordant += int((sign < 0).sum())
        ties_x += int(((dx == 0) & (dy != 0)).sum())
        ties_y += int(((dy == 0) & (dx != 0)).sum())
        both = int(((dx == 0) & (dy == 0)).sum())
        ties_x += both
        ties_y += both
    n0 = n * (n - 1) // 2
    denom = np.sqrt(float(n0 - ties_x) * float(n0 - ties_y))
    if denom == 0.0:
        return 0.0
    return float((concordant - discordant) / denom)
