"""Degree↔rank coupling diagnostics.

The paper's central empirical claim is that node significance measures
differ in **how strongly they couple to node degree** — conventional
PageRank tracks degree almost monotonically, while de-coupled variants
(D2PR under ``p > 0``, fatigued PageRank) deliberately weaken the
relationship.  This module makes the coupling measurable per method so
the serving layer can report it next to its other analytics:

* :func:`degree_rank_profile` — Spearman rank correlation between the
  paper's θ vector (degree / out-weight) and a score vector, plus the
  log–log Pearson correlation of the positive pairs (linear on a
  power-law relationship) and a :func:`power_law_tail` fit of the score
  distribution;
* :func:`power_law_tail` — least-squares Zipf fit ``log s_r ≈ c − γ·log r``
  over the top ``fraction`` of ranks ``r``, reporting the slope, the
  implied exponent ``γ`` and the fit quality ``r²``.

:meth:`repro.serving.RankingService.degree_rank` serves a request and
profiles the answer in one call; :func:`repro.core.manipulation.
farm_rank_anomaly` compares profiles before/after a link-farm attack —
spam edges drag the degree coupling and the tail exponent in a
detectable direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.metrics.correlation import pearson, spearman

__all__ = [
    "DegreeRankProfile",
    "PowerLawTail",
    "degree_rank_profile",
    "power_law_tail",
]


@dataclass(frozen=True)
class PowerLawTail:
    """Zipf-style log–log fit of a score distribution's upper tail.

    Attributes
    ----------
    slope:
        Least-squares slope of ``log score`` against ``log rank`` (rank 1
        = highest score); negative for any decreasing tail.
    exponent:
        ``−slope`` — the implied power-law exponent γ of
        ``score ∝ rank^{−γ}``.
    r2:
        Coefficient of determination of the fit (1 = exact power law).
    points:
        Number of (rank, score) pairs the fit used.
    """

    slope: float
    exponent: float
    r2: float
    points: int


@dataclass(frozen=True)
class DegreeRankProfile:
    """How strongly a ranking couples to node degree.

    Attributes
    ----------
    method:
        Registry name of the method that produced the scores (``None``
        when profiled outside the serving layer).
    spearman:
        Rank correlation between θ (degree / out-weight) and scores:
        near 1 = degree-driven ranking, near 0 = fully de-coupled.
    log_pearson:
        Pearson correlation of ``log θ`` vs ``log score`` over nodes
        where both are positive (NaN when fewer than 2 such nodes) —
        linear coupling on the power-law scale.
    tail:
        :class:`PowerLawTail` fit of the score distribution.
    n:
        Number of nodes profiled.
    weighted:
        Whether θ used edge weights.
    """

    spearman: float
    log_pearson: float
    tail: PowerLawTail
    n: int
    weighted: bool
    method: str | None = None

    def summary(self) -> dict:
        """Flat dict view for stats-style reporting."""
        return {
            "method": self.method,
            "spearman": self.spearman,
            "log_pearson": self.log_pearson,
            "tail_exponent": self.tail.exponent,
            "tail_r2": self.tail.r2,
            "tail_points": self.tail.points,
            "n": self.n,
            "weighted": self.weighted,
        }


def power_law_tail(scores, *, fraction: float = 0.25) -> PowerLawTail:
    """Fit ``log s_r ≈ c − γ·log r`` on the top ``fraction`` of ranks.

    ``scores`` is any 1-D array-like of nonnegative values; the fit uses
    the highest-scoring ``max(2, ⌈fraction·n⌉)`` positive entries (rank 1
    = best).  Fewer than 2 positive entries raise
    :class:`~repro.errors.ParameterError` — there is no tail to fit.
    """
    if not 0.0 < fraction <= 1.0:
        raise ParameterError(f"fraction must be in (0, 1], got {fraction}")
    values = np.asarray(scores, dtype=np.float64).ravel()
    values = np.sort(values[values > 0.0])[::-1]
    if values.shape[0] < 2:
        raise ParameterError(
            "power_law_tail needs at least 2 positive scores, "
            f"got {values.shape[0]}"
        )
    k = max(2, int(np.ceil(fraction * values.shape[0])))
    top = values[: min(k, values.shape[0])]
    log_rank = np.log(np.arange(1, top.shape[0] + 1, dtype=np.float64))
    log_score = np.log(top)
    # Plain least squares; a constant tail (all scores equal) fits with
    # slope 0 and, by convention, r² = 1 (the fit is exact).
    denom = ((log_rank - log_rank.mean()) ** 2).sum()
    if denom == 0.0:  # pragma: no cover - k >= 2 distinct ranks
        slope = 0.0
    else:
        slope = float(
            ((log_rank - log_rank.mean()) * (log_score - log_score.mean())).sum()
            / denom
        )
    intercept = float(log_score.mean() - slope * log_rank.mean())
    predicted = intercept + slope * log_rank
    ss_res = float(((log_score - predicted) ** 2).sum())
    ss_tot = float(((log_score - log_score.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return PowerLawTail(
        slope=slope,
        exponent=-slope,
        r2=r2,
        points=int(top.shape[0]),
    )


def degree_rank_profile(
    graph,
    scores,
    *,
    weighted: bool = False,
    tail_fraction: float = 0.25,
    method: str | None = None,
) -> DegreeRankProfile:
    """Profile the degree↔score coupling of one ranking.

    Parameters
    ----------
    graph:
        The graph the scores were computed on (supplies the paper's θ
        vector via :func:`repro.core.engine.adjacency_and_theta`).
    scores:
        :class:`~repro.core.results.NodeScores` or a raw array aligned
        with the graph's node indices.
    weighted:
        Use out-weights instead of out-degrees for θ.
    tail_fraction:
        Top fraction of ranks entering the :func:`power_law_tail` fit.
    method:
        Optional registry method name recorded on the profile.
    """
    from repro.core.engine import adjacency_and_theta

    values = np.asarray(getattr(scores, "values", scores), dtype=np.float64)
    if values.shape != (graph.number_of_nodes,):
        raise ParameterError(
            f"scores must have shape ({graph.number_of_nodes},), "
            f"got {values.shape}"
        )
    _, theta = adjacency_and_theta(graph, weighted=weighted)
    rho = spearman(theta, values)
    positive = (theta > 0.0) & (values > 0.0)
    if positive.sum() >= 2:
        log_rho = pearson(np.log(theta[positive]), np.log(values[positive]))
    else:
        log_rho = float("nan")
    tail = power_law_tail(values, fraction=tail_fraction)
    return DegreeRankProfile(
        spearman=rho,
        log_pearson=log_rho,
        tail=tail,
        n=int(graph.number_of_nodes),
        weighted=bool(weighted),
        method=method,
    )
