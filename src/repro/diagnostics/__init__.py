"""Diagnostics: structural analytics over computed rankings."""

from repro.diagnostics.degree_rank import (
    DegreeRankProfile,
    PowerLawTail,
    degree_rank_profile,
    power_law_tail,
)

__all__ = [
    "DegreeRankProfile",
    "PowerLawTail",
    "degree_rank_profile",
    "power_law_tail",
]
