"""The per-shard inner relaxation kernel.

One function shared verbatim by the serial Gauss–Seidel schedule
(:mod:`repro.shard.solver`) and the pool workers
(:mod:`repro.shard.pool`), so the two schedules can never drift apart in
dangling handling or mixed-precision semantics — they differ only in
*which iterate* the frozen coupling term ``g`` was computed against.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["relax_block"]


def relax_block(
    intra: sparse.csr_matrix,
    intra32: sparse.csr_matrix | None,
    local_dangle: np.ndarray,
    xs: np.ndarray,
    g: np.ndarray,
    target_slice: np.ndarray | None,
    *,
    alpha: float,
    inner_sweeps: int,
    use_f32: bool,
    self_dangling: bool,
) -> np.ndarray:
    """Relax one diagonal block for ``inner_sweeps`` sweeps.

    Iterates ``y ← α · (A_ss y + dangling(y)) + g`` from ``y = xs`` with
    the coupling term ``g`` (boundary matvec + off-shard dangling mass +
    teleport) frozen, and returns the new float64 block iterate.
    ``dangling(y)`` is the *local* dangling contribution: mass of the
    shard's own dangling rows redistributed through the global target
    restricted to this shard (``target_slice``, **not** renormalised —
    the escaping remainder is other shards' coupling), or kept in place
    under ``self_dangling``.

    The float32 phase sweeps a float32 iterate against the float32 block
    copy; scalar reductions still accumulate in float64 (a float32 sum
    over 10^6 entries drifts at ~1e-4 relative — same rationale as the
    batch solver's mixed mode).
    """
    ld = local_dangle
    if use_f32:
        y32 = xs.astype(np.float32)
        g32 = g.astype(np.float32)
        a32 = np.float32(alpha)
        t32 = (
            target_slice.astype(np.float32)
            if (target_slice is not None and ld.size)
            else None
        )
        for _ in range(inner_sweeps):
            z = intra32 @ y32
            if ld.size:
                if self_dangling:
                    z[ld] += y32[ld]
                elif t32 is not None:
                    m_loc = float(y32[ld].sum(dtype=np.float64))
                    if m_loc > 0.0:
                        z += np.float32(m_loc) * t32
            y32 = a32 * z + g32
        return y32.astype(np.float64)

    y = xs.copy()
    for _ in range(inner_sweeps):
        z = intra @ y
        if ld.size:
            if self_dangling:
                z[ld] += y[ld]
            elif target_slice is not None:
                m_loc = float(y[ld].sum())
                if m_loc > 0.0:
                    z += m_loc * target_slice
        y = alpha * z + g
    return y
