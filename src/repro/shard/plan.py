"""Node-to-shard partitioning with locality-aware block relabeling.

A :class:`ShardPlan` is the contract every sharded component shares: an
assignment of nodes to shards plus a **node relabeling** under which each
shard's rows are contiguous.  The relabeling is what makes the sharded
operator cheap — a shard's diagonal block is a plain row-range slice of
the permuted matrix, its iterate a plain slice of the permuted vector,
and the worker pool can hand out disjoint slices of one shared-memory
buffer with no index indirection in the inner loop.

Two partitioning methods are provided:

* ``"blocked"`` — contiguous index ranges.  Zero analysis cost; exactly
  right when the node numbering already encodes locality (the bench
  generators and most real ingests emit community-clustered ids).
* ``"labelprop"`` — a deterministic, capacity-bounded label propagation
  seeded from the blocked split: each round reassigns every node to the
  shard holding the plurality of its neighbours (ties keep the current
  shard), then overfull shards spill their weakest-attached nodes to
  shards with free capacity.  A few rounds recover community blocks from
  scrambled numberings at O(rounds · nnz) cost.

``"auto"`` picks ``"labelprop"`` whenever it can improve on the blocked
split (more than one shard and a non-trivial graph) — the analysis cost
is amortised by the plan living in the graph's mutation-aware cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import ParameterError

__all__ = ["PARTITION_METHODS", "ShardPlan", "intra_fraction", "plan_shards"]

PARTITION_METHODS = ("auto", "blocked", "labelprop")

#: Label-propagation refinement rounds.  Affinity counts stabilise within
#: a handful of rounds on community-structured graphs; more rounds only
#: shuffle boundary nodes.
_LABELPROP_ROUNDS = 4

#: Capacity slack of the label-propagation rebalance: no shard may exceed
#: ``ceil(n / k) · (1 + slack)`` nodes, so pool workers stay load-balanced
#: even when communities are skewed.
_BALANCE_SLACK = 0.25


@dataclass(frozen=True)
class ShardPlan:
    """Immutable node→shard assignment with a contiguity relabeling.

    Attributes
    ----------
    assign:
        ``(n,)`` int32, ``assign[v]`` = shard of original node ``v``.
    order:
        ``(n,)`` int64 permutation, ``order[i]`` = original node at
        permuted position ``i``.  Positions are grouped by shard and keep
        ascending original order inside each shard (a stable relabeling,
        so plans are deterministic and diffable).
    ranks:
        Inverse permutation: ``ranks[v]`` = permuted position of original
        node ``v``.
    bounds:
        ``(n_shards + 1,)`` int64; shard ``s`` owns permuted rows
        ``bounds[s]:bounds[s + 1]``.
    method:
        The partitioning method that produced the plan.
    """

    assign: np.ndarray
    order: np.ndarray
    ranks: np.ndarray
    bounds: np.ndarray
    method: str = "blocked"

    @property
    def n(self) -> int:
        return int(self.assign.shape[0])

    @property
    def n_shards(self) -> int:
        return int(self.bounds.shape[0] - 1)

    @property
    def sizes(self) -> np.ndarray:
        """Nodes per shard (``(n_shards,)`` int64)."""
        return np.diff(self.bounds)

    def shard_slice(self, shard: int) -> slice:
        """Permuted row range of ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise ParameterError(
                f"shard {shard} out of range for n_shards={self.n_shards}"
            )
        return slice(int(self.bounds[shard]), int(self.bounds[shard + 1]))

    def shards_of(self, nodes: np.ndarray) -> np.ndarray:
        """Distinct shards touched by the given original node indices."""
        idx = np.asarray(nodes, dtype=np.int64).ravel()
        if idx.size and ((idx < 0).any() or (idx >= self.n).any()):
            raise ParameterError(
                f"node index out of range for n={self.n}"
            )
        return np.unique(self.assign[idx])

    def permute(self, vec: np.ndarray) -> np.ndarray:
        """Reindex a node-aligned vector into permuted (shard-grouped) order."""
        return vec[self.order]

    def unpermute(self, vec: np.ndarray) -> np.ndarray:
        """Reindex a permuted vector back to original node order."""
        return vec[self.ranks]


def _blocked_labels(n: int, k: int) -> np.ndarray:
    """Contiguous-range labels: ``ceil(n / k)``-sized blocks, last short."""
    size = -(-n // k)
    return np.minimum(np.arange(n, dtype=np.int64) // size, k - 1).astype(
        np.int32
    )


def _labelprop_labels(
    structure: sparse.csr_matrix, k: int, rounds: int
) -> np.ndarray:
    """Deterministic capacity-bounded label propagation.

    Affinity of node ``v`` to shard ``s`` counts v's stored neighbours
    (both edge directions) currently labelled ``s``; every round
    reassigns each node to its plurality shard with a half-count bias
    toward the incumbent (ties never flip, so the iteration cannot
    oscillate between equivalent relabelings).  A final rebalance caps
    every shard at ``ceil(n / k) · (1 + _BALANCE_SLACK)`` nodes, spilling
    the weakest-attached members of overfull shards into free capacity in
    ascending shard order — fully vectorised and free of tie ambiguity.
    """
    n = structure.shape[0]
    labels = _blocked_labels(n, k)
    onehot = np.zeros((n, k), dtype=np.float32)
    for _ in range(max(rounds, 1)):
        onehot[:] = 0.0
        onehot[np.arange(n), labels] = 1.0
        # Undirected affinity from a directed store: out-neighbours via
        # S @ onehot, in-neighbours via the transpose product computed as
        # (onehot.T @ S).T — no CSC→CSR conversion needed.
        counts = structure @ onehot
        counts += (onehot.T @ structure).T
        counts[np.arange(n), labels] += 0.5  # incumbent bias: ties stay
        new_labels = np.argmax(counts, axis=1).astype(np.int32)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels

    cap = int(np.ceil(n / k) * (1.0 + _BALANCE_SLACK))
    cap = max(cap, -(-n // k))  # capacity must always admit a full split
    affinity = counts[np.arange(n), labels]
    sizes = np.bincount(labels, minlength=k)
    if (sizes > cap).any():
        # Within each overfull shard keep the cap highest-affinity nodes
        # (ties keep lower node ids); spill the rest.
        keep_order = np.lexsort((np.arange(n), -affinity, labels))
        position = np.empty(n, dtype=np.int64)
        start = np.concatenate(([0], np.cumsum(sizes)))
        position[keep_order] = np.arange(n) - start[labels[keep_order]]
        spilled = np.flatnonzero(position >= cap)  # ascending node id
        labels = labels.copy()
        sizes = np.minimum(sizes, cap)
        ptr = 0
        for s in range(k):
            free = cap - int(sizes[s])
            if free <= 0:
                continue
            take = spilled[ptr : ptr + free]
            if take.size == 0:
                break
            labels[take] = s
            sizes[s] += take.size
            ptr += take.size
    return labels


def plan_shards(
    structure: sparse.spmatrix,
    n_shards: int,
    *,
    method: str = "auto",
    rounds: int = _LABELPROP_ROUNDS,
) -> ShardPlan:
    """Partition the nodes of a (square) sparse structure into shards.

    ``n_shards`` is clamped to ``[1, n]`` — asking for more shards than
    nodes yields one node per shard, never an empty request.  Only the
    sparsity structure of ``structure`` is read; values are ignored, so
    any of a graph's cached matrices (adjacency, transition) produces the
    same plan.
    """
    if method not in PARTITION_METHODS:
        raise ParameterError(
            f"unknown partition method {method!r}; "
            f"expected one of {PARTITION_METHODS}"
        )
    if n_shards < 1:
        raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
    mat = structure.tocsr() if structure.format != "csr" else structure
    if mat.shape[0] != mat.shape[1]:
        raise ParameterError(f"structure must be square, got {mat.shape}")
    n = mat.shape[0]
    if n == 0:
        raise ParameterError("cannot shard an empty structure")
    k = min(int(n_shards), n)

    resolved = method
    if method == "auto":
        resolved = "labelprop" if (k > 1 and mat.nnz > 0) else "blocked"
    if k == 1:
        resolved = "blocked"
    if resolved == "blocked":
        labels = _blocked_labels(n, k)
    else:
        labels = _labelprop_labels(mat, k, rounds)

    # Stable grouping: shard-major, ascending original index inside each
    # shard, so the relabeling is deterministic for a given assignment.
    order = np.argsort(labels, kind="stable").astype(np.int64)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    bounds = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(np.bincount(labels, minlength=k), out=bounds[1:])
    for arr in (labels, order, ranks, bounds):
        arr.setflags(write=False)
    return ShardPlan(
        assign=labels, order=order, ranks=ranks, bounds=bounds,
        method=resolved,
    )


def intra_fraction(
    structure: sparse.spmatrix, plan: ShardPlan
) -> float:
    """Fraction of stored entries whose endpoints share a shard.

    The partitioner's quality metric: block relaxation converges in few
    outer rounds exactly when this is high (coupling blocks are thin).
    """
    mat = structure.tocsr() if structure.format != "csr" else structure
    if mat.shape[0] != plan.n:
        raise ParameterError(
            f"structure has {mat.shape[0]} rows but the plan covers "
            f"{plan.n} nodes"
        )
    if mat.nnz == 0:
        return 1.0
    row_of = np.repeat(
        np.arange(mat.shape[0], dtype=np.int64), np.diff(mat.indptr)
    )
    same = plan.assign[row_of] == plan.assign[mat.indices]
    return float(np.count_nonzero(same) / mat.nnz)
