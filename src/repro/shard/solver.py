"""Block-relaxation PageRank over a :class:`ShardedOperator`.

:func:`sharded_solve` converges the same fixed point as
:func:`~repro.linalg.solvers.power_iteration` —

.. math::

    \\vec x = \\alpha P^T \\vec x + (1 - \\alpha) \\vec t

— by outer **rounds** over the shards.  Within a round each shard runs
``inner_sweeps`` relaxation sweeps against its small diagonal block
``A_ss`` while the coupling term ``α · A_s· x`` (plus off-shard dangling
mass) stays frozen; between rounds only boundary mass is exchanged.
Two schedules share the round body:

* **serial** (``workers`` ≤ 1): shards are swept in order against the
  *live* iterate, so shard ``s`` already sees this round's values of
  shards ``< s`` — multiplicative Schwarz / block Gauss–Seidel.
* **pooled** (``workers`` ≥ 2): every shard relaxes against the previous
  round's iterate — additive Schwarz / block Jacobi — which is what
  parallelises: the :class:`~repro.shard.pool.ShardWorkerPool` workers
  sweep their shards concurrently against shared-memory buffers and
  exchange only per-round scalar reductions with the parent.

Aggregation/disaggregation (the single-core speed-up)
-----------------------------------------------------

Plain block relaxation cannot beat the monolithic α-rate: each inner
sweep contracts the error by ~α just like a power sweep, so rounds ×
sweeps ≈ power iterations and the only wins are bandwidth (float32
sweeps, cache-resident blocks).  What *does* beat it on a
community-partitioned graph is the classical iterative
aggregation/disaggregation correction for nearly-uncoupled Markov
chains (Simon–Ando; Koury–McAllister–Stewart): a shard's diagonal block
is fast-mixing, so after a few sweeps the remaining error is nearly
proportional to the block's local stationary mode — per shard a *single
unknown*, the shard's total mass.  Each round therefore ends by solving
the k×k coarse balance system

.. math::

    (I - \\alpha \\hat C)\\, \\vec m = (1 - \\alpha)\\, \\hat t

where ``Ĉ[s, q]`` is the mass the current *within-shard* distribution of
shard ``q`` sends into shard ``s`` (cross-shard flows via the coupling
blocks' precomputed column sums — see
:attr:`~repro.shard.operator.ShardedOperator.coarse_ctx` — the diagonal
by column stochasticity, dangling flows via the strategy target), and
rescaling every shard to its balanced mass ``m_q``.  The composite
iteration converges at the *coupling* rate instead of the α-rate —
a handful of rounds when the partitioner finds real structure — while
the fixed point is untouched: at ``x = x*`` the coarse solve returns
exactly the current shard masses.  The correction is an accelerator,
not a correctness assumption: if the certificate residual ever rises
for consecutive float64 rounds the solve drops back to plain block
relaxation (a regular splitting of the M-matrix ``I − αPᵀ``, hence
provably convergent) for the remaining rounds.

Mixed precision mirrors :mod:`repro.linalg.batch`: inner sweeps run on
float32 diagonal blocks while the outer residual is above the float32
hand-off (or until it stalls at the float32 floor), then float64 rounds
polish to ``tol``.  Reductions always accumulate in float64.  The
reported residuals are successive-iterate L1 differences of the
normalised iterate — the same certificate the monolithic power path
stops on.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import ConvergenceError, ParameterError
from repro.linalg.operator import (
    DANGLING_STRATEGIES,
    LinearOperatorBundle,
)
from repro.linalg.solvers import (
    PageRankResult,
    _normalise_x0,
    _validate_common,
    power_iteration,
)
from repro.shard._kernel import relax_block
from repro.shard.operator import DEFAULT_SIZE_FLOOR, ShardedOperator
from repro.telemetry.trace import record_result

__all__ = ["sharded_solve"]

#: Outer-residual hand-off from float32 sweeps to the float64 polish —
#: the same constant (and stall guard) as the batch solver's mixed mode.
_MIXED_SWITCH_TOL = 1e-6
_STALL_FACTOR = 0.95

#: Default inner relaxation sweeps per shard per round.  Sweeps are the
#: aggregation step's smoother: enough to damp the fast in-shard modes so
#: the coarse solve sees an almost rank-one per-shard error, few enough
#: that rounds stay cheap.
_DEFAULT_INNER_SWEEPS = 3

#: Rounds of rising float64 residual tolerated before the aggregation
#: correction is disabled for the rest of the solve.
_AGG_PATIENCE = 2


def _segment_sums(x: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Per-shard sums of a permuted vector (empty-shard safe)."""
    cs = np.concatenate(([0.0], np.cumsum(x)))
    return cs[bounds[1:]] - cs[bounds[:-1]]


def _shard_rounds_serial(
    op: ShardedOperator,
    x: np.ndarray,
    t_p: np.ndarray,
    target_p: np.ndarray | None,
    dmass: np.ndarray,
    *,
    alpha: float,
    inner_sweeps: int,
    use_f32: bool,
    self_dangling: bool,
) -> None:
    """One serial Gauss–Seidel round over all shards, in place on ``x``.

    Refreshes the per-shard dangling-mass accumulator ``dmass`` as it
    goes, so later shards see earlier shards' fresh dangling mass.
    """
    plan = op.plan
    one_minus_alpha = 1.0 - alpha
    for s in range(plan.n_shards):
        lo, hi = int(plan.bounds[s]), int(plan.bounds[s + 1])
        if hi == lo:
            continue
        xs = x[lo:hi]
        ld = op.local_dangle[s]
        # Coupling terms frozen for this shard's inner sweeps: boundary
        # matvec (fresh values for shards < s — the Gauss–Seidel gain)
        # plus the off-shard dangling mass under mass-moving strategies.
        g = alpha * (op.ext[s] @ x)
        g += one_minus_alpha * t_p[lo:hi]
        target_slice = target_p[lo:hi] if target_p is not None else None
        if target_slice is not None:
            m_ext = float(dmass.sum() - dmass[s])
            if m_ext > 0.0:
                g += (alpha * m_ext) * target_slice
        y = relax_block(
            op.intra[s],
            op.intra_f32(s) if use_f32 else None,
            ld,
            xs,
            g,
            target_slice,
            alpha=alpha,
            inner_sweeps=inner_sweeps,
            use_f32=use_f32,
            self_dangling=self_dangling,
        )
        x[lo:hi] = y
        if ld.size:
            dmass[s] = float(y[ld].sum())


def _aggregate(
    op: ShardedOperator,
    x: np.ndarray,
    masses: np.ndarray,
    dmass: np.ndarray,
    t_hat: np.ndarray,
    target_hat: np.ndarray | None,
    *,
    alpha: float,
    self_dangling: bool,
) -> None:
    """One aggregation/disaggregation correction, in place on ``x``.

    Builds the coarse column-stochastic flow matrix ``Ĉ`` from the
    coupling blocks' static column sums evaluated at the current iterate,
    solves the k×k balance system and rescales each shard to its balanced
    mass.  ``masses`` and ``dmass`` are updated to match.  Shards with no
    mass yet (e.g. far from a personalised seed) are left untouched —
    relaxation rounds populate them through the coupling terms first.
    """
    k = op.plan.n_shards
    bounds = op.plan.bounds
    C = np.zeros((k, k))
    for s, (js, vs, qs) in enumerate(op.coarse_ctx):
        if js.size:
            C[s] = np.bincount(qs, weights=vs * x[js], minlength=k)
    live = masses > 0.0
    if not live.any():
        return
    C[:, live] /= masses[live]
    C[:, ~live] = 0.0
    d = np.zeros(k)
    d[live] = dmass[live] / masses[live]
    # coarse_ctx only carries cross-shard flows; the diagonal (mass a
    # shard keeps) follows from column stochasticity of A: each unit of
    # φ_q emits 1 − (its dangling mass) through stored edges in total.
    np.fill_diagonal(C, 0.0)
    self_flow = np.zeros(k)
    self_flow[live] = np.maximum(1.0 - d[live] - C.sum(axis=0)[live], 0.0)
    np.fill_diagonal(C, self_flow)
    if self_dangling:
        C[np.arange(k), np.arange(k)] += d
    elif target_hat is not None:
        C += target_hat[:, None] * d[None, :]
    try:
        m = np.linalg.solve(np.eye(k) - alpha * C, (1.0 - alpha) * t_hat)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return
    np.clip(m, 0.0, None, out=m)
    for s in np.flatnonzero(live):
        scale = m[s] / masses[s]
        x[bounds[s] : bounds[s + 1]] *= scale
        masses[s] = m[s]
        dmass[s] *= scale


def sharded_solve(
    transition=None,
    *,
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 500,
    operator: LinearOperatorBundle | None = None,
    sharded: ShardedOperator | None = None,
    n_shards: int = 8,
    method: str = "auto",
    workers: int | None = None,
    pool_substrate: str = "shm",
    inner_sweeps: int = _DEFAULT_INNER_SWEEPS,
    precision: str = "mixed",
    aggregate: bool = True,
    size_floor: int = DEFAULT_SIZE_FLOOR,
    raise_on_failure: bool = False,
    x0: np.ndarray | None = None,
) -> PageRankResult:
    """Solve the PageRank fixed point by sharded block relaxation.

    Parameters mirror :func:`~repro.linalg.solvers.power_iteration` where
    they overlap; the sharding-specific ones are:

    sharded:
        A pre-built (typically graph-cached) :class:`ShardedOperator`.
        When omitted one is built from the resolved monolithic bundle
        with ``n_shards``/``method`` — unless the graph is below
        ``size_floor`` nodes, in which case the solve **falls back
        transparently** to monolithic power iteration (``method``
        reports ``"sharded_fallback_power"``), so tiny-graph callers
        never pay shard/pool setup.
    workers:
        ``None``/``0``/``1`` → serial block Gauss–Seidel on the calling
        process; ``>= 2`` → block Jacobi across the operator's
        persistent shared-memory worker pool.
    pool_substrate:
        Segment substrate for the pooled path — ``"shm"`` (default,
        fork-inherited ``/dev/shm`` segment) or ``"mmap"`` (file-backed
        MAP_SHARED segment; spawn-capable workers).  Forwarded to
        :meth:`ShardedOperator.pool`.
    inner_sweeps:
        Relaxation sweeps per shard per round (the outer ``max_iter``
        counts rounds).
    precision:
        ``"double"`` or ``"mixed"`` (float32 sweep phase + float64
        polish, as in the batch solver).
    aggregate:
        Apply the per-round aggregation/disaggregation coarse correction
        (see the module docstring).  On by default; ``False`` leaves the
        plain — provably convergent but α-rate — block relaxation.
    size_floor:
        Forwarded to :class:`ShardedOperator` when building one.

    Returns
    -------
    PageRankResult
        ``method`` is ``"sharded_block_gs"`` (serial),
        ``"sharded_block_jacobi"`` (pooled) or
        ``"sharded_fallback_power"``; ``residuals`` holds the per-round
        successive-iterate L1 differences of the normalised iterate —
        the same certificate quantity the monolithic power path reports.
    """
    if precision not in ("double", "mixed"):
        raise ParameterError(
            f"precision must be 'double' or 'mixed', got {precision!r}"
        )
    if inner_sweeps < 1:
        raise ParameterError(
            f"inner_sweeps must be >= 1, got {inner_sweeps}"
        )
    if dangling not in DANGLING_STRATEGIES:
        raise ParameterError(
            f"unknown dangling strategy {dangling!r}; "
            f"expected one of {DANGLING_STRATEGIES}"
        )
    if sharded is not None:
        operator = sharded.bundle
    bundle, t = _validate_common(transition, alpha, teleport, operator)

    if sharded is None:
        if bundle.n < size_floor:
            result = power_iteration(
                None,
                alpha=alpha,
                teleport=t,
                tol=tol,
                max_iter=max_iter * inner_sweeps,
                dangling=dangling,
                raise_on_failure=raise_on_failure,
                operator=bundle,
                x0=x0,
            )
            return record_result(
                replace(result, method="sharded_fallback_power"),
                fallback="size_floor",
            )
        sharded = ShardedOperator(
            bundle, n_shards=n_shards, method=method, size_floor=size_floor
        )
    elif sharded.n != bundle.n:
        raise ParameterError(
            f"sharded operator covers {sharded.n} nodes but the "
            f"transition has {bundle.n}"
        )

    plan = sharded.plan
    bounds = plan.bounds
    target = bundle.dangling_target(dangling, t)  # None for "self"
    t_p = plan.permute(t)
    target_p = plan.permute(target) if target is not None else None
    x = plan.permute(t if x0 is None else _normalise_x0(x0, t))
    x = np.ascontiguousarray(x, dtype=np.float64)

    has_dangling = sharded.dangle_idx_p.size > 0
    self_dangling = has_dangling and target is None
    dangle_shard = sharded.dangle_shard_p

    def _dangle_masses(vec: np.ndarray) -> np.ndarray:
        if not has_dangling:
            return np.zeros(plan.n_shards)
        return np.bincount(
            dangle_shard,
            weights=vec[sharded.dangle_idx_p],
            minlength=plan.n_shards,
        )

    dmass = _dangle_masses(x)
    # "self" keeps dangling mass in place — no cross-shard mass term.
    target_term = target_p if (has_dangling and target is not None) else None
    t_hat = _segment_sums(t_p, bounds)
    target_hat = (
        _segment_sums(target_p, bounds) if target_p is not None else None
    )
    aggregate_on = aggregate and plan.n_shards > 1

    pooled = workers is not None and int(workers) >= 2
    pool = (
        sharded.pool(int(workers), substrate=pool_substrate)
        if pooled
        else None
    )

    use_f32 = precision == "mixed" and tol < _MIXED_SWITCH_TOL
    residuals: list[float] = []
    converged = False
    rounds = 0
    prev_diff = np.inf
    agg_bad = 0
    x_prev = np.empty_like(x) if pool is None else None
    if pool is not None:
        pool.load_vectors(t_p, target_p if target_term is not None else None)
        pool.seed(x)
    try:
        for rounds in range(1, max_iter + 1):
            if pool is not None:
                pool.round(
                    alpha=alpha,
                    self_dangling=self_dangling,
                    inner_sweeps=inner_sweeps,
                    use_f32=use_f32,
                    m_total=float(dmass.sum()),
                )
                x_ref = pool.read_view()  # previous normalised iterate
                x = pool.write_view()
                dmass = _dangle_masses(x)
            else:
                x_prev[:] = x
                x_ref = x_prev
                _shard_rounds_serial(
                    sharded,
                    x,
                    t_p,
                    target_term,
                    dmass,
                    alpha=alpha,
                    inner_sweeps=inner_sweeps,
                    use_f32=use_f32,
                    self_dangling=self_dangling,
                )
            masses = _segment_sums(x, bounds)
            if aggregate_on:
                _aggregate(
                    sharded, x, masses, dmass, t_hat, target_hat,
                    alpha=alpha, self_dangling=self_dangling,
                )
            total = float(masses.sum())
            if not np.isfinite(total) or total <= 0.0:
                raise ConvergenceError(
                    "sharded solve produced a non-normalisable iterate "
                    f"(sum={total!r})",
                    iterations=rounds,
                    residual=float("nan"),
                )
            x *= 1.0 / total
            dmass *= 1.0 / total
            # The certificate: L1 change between successive normalised
            # iterates — exactly what the monolithic power path stops on.
            diff = float(np.abs(x - x_ref).sum())
            residuals.append(diff)
            if pool is not None:
                pool.swap()
            if use_f32:
                # Hand off to float64 rounds at the shared switch point,
                # or as soon as float32 round-off stalls the contraction.
                if diff <= _MIXED_SWITCH_TOL or diff > _STALL_FACTOR * prev_diff:
                    use_f32 = False
                prev_diff = diff
                continue
            if aggregate_on:
                # Safety valve: aggregation is an accelerator with strong
                # empirical behaviour but no global guarantee — if the
                # float64 residual rises for consecutive rounds, finish
                # with the provably convergent plain relaxation.
                agg_bad = agg_bad + 1 if diff > prev_diff else 0
                if agg_bad >= _AGG_PATIENCE:
                    aggregate_on = False
            prev_diff = diff
            if diff < tol:
                converged = True
                break
        if pool is not None:
            x = pool.read_view().copy()
    except BaseException:
        if pool is not None:
            # A failed pooled solve must not leave a wedged pool behind
            # for the next solve to deadlock on.
            pool.close()
        raise

    scores = plan.unpermute(x)
    scores = scores / scores.sum()
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"sharded solve did not reach tol={tol} within {max_iter} "
            f"rounds (residual={residuals[-1]:.3e})",
            iterations=rounds,
            residual=residuals[-1],
        )
    # Per-round geometric contraction rate of the residual — the shard
    # coupling statistic: ~alpha for well-mixed partitions, drifting
    # toward 1 when cross-shard mass slows the sweep down.
    contraction = None
    if len(residuals) >= 2 and residuals[0] > 0.0 and residuals[-1] > 0.0:
        contraction = float(
            (residuals[-1] / residuals[0]) ** (1.0 / (len(residuals) - 1))
        )
    return record_result(
        PageRankResult(
            scores=scores,
            iterations=rounds,
            converged=converged,
            residuals=residuals,
            method="sharded_block_jacobi" if pooled else "sharded_block_gs",
        ),
        n_shards=int(plan.n_shards),
        workers=int(workers) if pooled else 1,
        aggregation=bool(aggregate_on),
        contraction=contraction,
    )
