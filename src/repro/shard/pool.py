"""Persistent shared-memory worker pool for pooled sharded solves.

A :class:`ShardWorkerPool` packs every per-shard block of a
:class:`~repro.shard.operator.ShardedOperator` — diagonal-block and
coupling-block CSR buffers (float64 data, float32 diagonal copies,
int32/int64 indices), dangling offsets, the teleport/target vectors and
a ping-pong pair of iterate buffers — into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, then forks
one worker process per requested slot.  Workers wrap the segment's
buffers in zero-copy numpy/CSR views at startup: no matrix bytes ever
cross a pipe, and a solve's per-round traffic is three scalars per
worker each way.

Lifecycle
---------

* Workers are forked once and persist across solves (the pool is cached
  on the operator, see :meth:`ShardedOperator.pool`).
* The parent creates — and alone unlinks — the segment; workers inherit
  the parent's already-attached mapping through ``fork``, so they never
  register with (or leak into) the interpreter's ``resource_tracker``.
* :meth:`close` is idempotent and also runs from a ``weakref.finalize``
  at garbage collection / interpreter exit, so an abandoned pool cannot
  leave processes or ``/dev/shm`` segments behind (the test suite's
  shard fixture asserts exactly this).

Round protocol (block Jacobi / additive Schwarz)
------------------------------------------------

Each round the parent broadcasts ``(read-buffer selector, α, flags,
off-shard dangling mass)``; every worker relaxes its shards against the
read buffer via :func:`repro.shard._kernel.relax_block`, writes the new
block iterates into the write buffer, and replies with its shards' raw
L1 change, mass sum and dangling mass.  The parent reduces the replies,
normalises the write buffer in place (both buffers are mapped in the
parent too) and swaps the selector — workers never synchronise with
each other, only with the parent's round barrier.
"""

from __future__ import annotations

import mmap as _mmap_mod
import multiprocessing
import os
import secrets
import tempfile
import weakref
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.errors import ParameterError, ReproError
from repro.shard._kernel import relax_block

__all__ = ["SHM_PREFIX", "SUBSTRATES", "ShardWorkerPool"]

#: Shared-memory segment name prefix.  Recognisable on purpose: the test
#: suite asserts no ``/dev/shm/repro_shard_*`` files survive the suite
#: (and no ``repro_shard_*.mmap`` files in the temp directory for the
#: file-backed substrate).
SHM_PREFIX = "repro_shard_"

#: Supported zero-copy segment substrates (see :class:`ShardWorkerPool`).
SUBSTRATES = ("shm", "mmap")

_ALIGN = 64  # cache-line alignment of every packed array


class _MmapSegment:
    """File-backed drop-in for ``SharedMemory``: one MAP_SHARED mapping.

    Same ``name``/``buf``/``close``/``unlink`` surface as
    ``multiprocessing.shared_memory.SharedMemory``, but the segment is
    an ordinary file mapped with ``mmap(2)`` — so (a) workers can attach
    by *path* after an exec-style ``spawn`` start (nothing needs to be
    inherited through ``fork``), (b) segments larger than RAM page from
    disk instead of exhausting ``/dev/shm``, and (c) there is no
    ``resource_tracker`` involvement at all.  Writes are visible across
    every process mapping the same file (shared page cache).
    """

    def __init__(
        self, name: str, *, create: bool = False, size: int = 0
    ) -> None:
        self.name = str(name)
        flags = os.O_RDWR | (os.O_CREAT | os.O_EXCL if create else 0)
        fd = os.open(self.name, flags, 0o600)
        try:
            if create:
                os.ftruncate(fd, size)
            self._mmap = _mmap_mod.mmap(fd, 0)
        finally:
            os.close(fd)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        self.buf.release()
        self._mmap.close()

    def unlink(self) -> None:
        os.unlink(self.name)


def _pack_layout(arrays: dict[str, np.ndarray]) -> tuple[dict, int]:
    """Compute ``name -> (offset, dtype, shape)`` plus the total size."""
    spec: dict[str, tuple[int, str, tuple]] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = -(-offset // _ALIGN) * _ALIGN
        spec[name] = (offset, arr.dtype.str, arr.shape)
        offset += arr.nbytes
    return spec, max(offset, 1)


def _view(shm: shared_memory.SharedMemory, spec_entry: tuple) -> np.ndarray:
    offset, dtype, shape = spec_entry
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                      offset=offset)


def _csr_from_views(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, shape: tuple
) -> sparse.csr_matrix:
    """Wrap shared buffers as CSR without copying or validation."""
    mat = sparse.csr_matrix(shape)
    mat.data, mat.indices, mat.indptr = data, indices, indptr
    return mat


def _worker_main(conn, shm, spec, bounds, own_shards, dangle_spec) -> None:
    """Worker loop: build zero-copy views once, relax on demand.

    ``shm`` is either the parent's SharedMemory object inherited through
    ``fork`` (substrate ``"shm"`` — the child never re-attaches by name,
    so the resource tracker only ever sees the parent's single
    registration) or a file *path* (substrate ``"mmap"``) that the child
    maps itself — a plain string survives ``spawn`` pickling, so the
    file-backed substrate works without ``fork`` at all.
    """
    if isinstance(shm, str):
        shm = _MmapSegment(shm)
    n = int(bounds[-1])
    x_bufs = (_view(shm, spec["x0"]), _view(shm, spec["x1"]))
    t_vec = _view(shm, spec["t"])
    target_vec = _view(shm, spec["target"])
    blocks = {}
    for s in own_shards:
        intra = _csr_from_views(
            _view(shm, spec[f"intra_data:{s}"]),
            _view(shm, spec[f"intra_indices:{s}"]),
            _view(shm, spec[f"intra_indptr:{s}"]),
            (int(bounds[s + 1] - bounds[s]),) * 2,
        )
        intra32 = _csr_from_views(
            _view(shm, spec[f"intra_data32:{s}"]),
            intra.indices,
            intra.indptr,
            intra.shape,
        )
        ext = _csr_from_views(
            _view(shm, spec[f"ext_data:{s}"]),
            _view(shm, spec[f"ext_indices:{s}"]),
            _view(shm, spec[f"ext_indptr:{s}"]),
            (intra.shape[0], n),
        )
        ld = _view(shm, spec[dangle_spec[s]]) if s in dangle_spec else (
            np.empty(0, dtype=np.int64)
        )
        blocks[s] = (intra, intra32, ext, ld)
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            (_, read_sel, alpha, self_dangling, has_target, inner,
             use_f32, m_total) = msg
            x = x_bufs[read_sel]
            x_out = x_bufs[1 - read_sel]
            one_minus_alpha = 1.0 - alpha
            diff = mass = dmass = 0.0
            for s in own_shards:
                lo, hi = int(bounds[s]), int(bounds[s + 1])
                if hi == lo:
                    continue
                intra, intra32, ext, ld = blocks[s]
                xs = x[lo:hi]
                g = alpha * (ext @ x)
                g += one_minus_alpha * t_vec[lo:hi]
                target_slice = target_vec[lo:hi] if has_target else None
                if has_target:
                    m_ext = m_total - (
                        float(xs[ld].sum()) if ld.size else 0.0
                    )
                    if m_ext > 0.0:
                        g += (alpha * m_ext) * target_slice
                y = relax_block(
                    intra, intra32, ld, xs, g,
                    target_slice if has_target else None,
                    alpha=alpha,
                    inner_sweeps=inner,
                    use_f32=use_f32,
                    self_dangling=self_dangling,
                )
                x_out[lo:hi] = y
                diff += float(np.abs(y - xs).sum())
                mass += float(y.sum())
                if ld.size:
                    dmass += float(y[ld].sum())
            conn.send((diff, mass, dmass))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        conn.close()
    # No shm.close()/unlink here: the mapping dies with the process and
    # the parent owns the segment's lifetime.


def _release(procs, conns, shm) -> None:
    """Idempotent teardown shared by close() and the GC finalizer."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - wedged worker
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    if shm is not None:
        try:
            shm.close()
        except BufferError:
            # A live numpy view (the parent's buffer views, or a caller
            # still holding a read_view) pins the mapping; unlinking
            # below still removes the segment name, and the memory is
            # reclaimed when the last view dies.
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ShardWorkerPool:
    """Worker processes attached to one packed shard segment.

    ``substrate`` picks where the segment lives:

    * ``"shm"`` (default): a POSIX shared-memory segment under
      ``/dev/shm``; workers inherit the parent's mapping through
      ``fork`` (requires the fork start method).
    * ``"mmap"``: a ``repro_shard_*.mmap`` file in the temp directory,
      MAP_SHARED-mapped by parent and workers independently.  Workers
      attach by *path*, so any start method works — pass
      ``start_method="spawn"`` for exec-style workers (fresh
      interpreters, no inherited locks), or leave it ``None`` to use
      fork where available.
    """

    def __init__(
        self,
        sharded,
        *,
        workers: int,
        substrate: str = "shm",
        start_method: str | None = None,
    ) -> None:
        if substrate not in SUBSTRATES:
            raise ParameterError(
                f"unknown pool substrate {substrate!r}; expected one of "
                f"{SUBSTRATES}"
            )
        if substrate == "shm":
            if start_method not in (None, "fork"):
                raise ParameterError(
                    "substrate='shm' workers inherit the parent's mapping "
                    "and need the 'fork' start method; use "
                    "substrate='mmap' for spawn-style workers"
                )
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX
                raise ReproError(
                    "sharded worker pools need the 'fork' start method "
                    "for substrate='shm'; use substrate='mmap' "
                    "(spawn-capable) or workers=1 on this platform"
                ) from exc
        else:
            method = start_method
            if method is None:
                try:
                    multiprocessing.get_context("fork")
                    method = "fork"
                except ValueError:  # pragma: no cover - non-POSIX
                    method = "spawn"
            try:
                ctx = multiprocessing.get_context(method)
            except ValueError as exc:  # pragma: no cover - bad method
                raise ReproError(
                    f"start method {method!r} is unavailable on this "
                    "platform"
                ) from exc
        k = sharded.n_shards
        workers = int(workers)
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        workers = min(workers, k)

        plan = sharded.plan
        arrays: dict[str, np.ndarray] = {}
        dangle_spec: dict[int, str] = {}
        for s in range(k):
            intra = sharded.intra[s]
            ext = sharded.ext[s]
            arrays[f"intra_data:{s}"] = intra.data
            arrays[f"intra_data32:{s}"] = sharded.intra_f32(s).data
            arrays[f"intra_indices:{s}"] = intra.indices
            arrays[f"intra_indptr:{s}"] = intra.indptr
            arrays[f"ext_data:{s}"] = ext.data
            arrays[f"ext_indices:{s}"] = ext.indices
            arrays[f"ext_indptr:{s}"] = ext.indptr
            ld = sharded.local_dangle[s]
            if ld.size:
                name = f"dangle:{s}"
                arrays[name] = ld
                dangle_spec[s] = name
        n = sharded.n
        for name in ("x0", "x1", "t", "target"):
            arrays[name] = np.empty(n, dtype=np.float64)

        spec, size = _pack_layout(arrays)
        token = secrets.token_hex(6)
        if substrate == "shm":
            self._shm = shared_memory.SharedMemory(
                create=True, size=size, name=SHM_PREFIX + token
            )
        else:
            path = Path(tempfile.gettempdir()) / f"{SHM_PREFIX}{token}.mmap"
            self._shm = _MmapSegment(str(path), create=True, size=size)
        for name, arr in arrays.items():
            if name in ("x0", "x1", "t", "target"):
                continue  # iterate/vector slots are filled per solve
            _view(self._shm, spec[name])[:] = arr
        self._spec = spec
        self._bounds = np.asarray(plan.bounds)
        self._x = (
            _view(self._shm, spec["x0"]),
            _view(self._shm, spec["x1"]),
        )
        self._t = _view(self._shm, spec["t"])
        self._target = _view(self._shm, spec["target"])
        self._read_sel = 0
        self._has_target = False

        # Fork-inherited SharedMemory travels as the object itself; the
        # file-backed segment travels as its path (spawn-picklable).
        seg_arg = self._shm if substrate == "shm" else self._shm.name
        self._procs = []
        self._conns = []
        for w in range(workers):
            own = list(range(w, k, workers))
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn, seg_arg, spec, self._bounds, own,
                    dangle_spec,
                ),
                daemon=True,
                name=f"repro-shard-worker-{w}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self.workers = workers
        self.substrate = substrate
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release, self._procs, self._conns, self._shm
        )

    # ------------------------------------------------------------------
    # solve-time interface (driven by sharded_solve)
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._procs)

    @property
    def segment_name(self) -> str:
        """The shared-memory segment's name (diagnostics / leak checks)."""
        return self._shm.name

    def load_vectors(
        self, t_p: np.ndarray, target_p: np.ndarray | None
    ) -> None:
        """Install the permuted teleport / dangling-target for one solve."""
        self._t[:] = t_p
        if target_p is not None:
            self._target[:] = target_p
        self._has_target = target_p is not None

    def seed(self, x: np.ndarray) -> None:
        """Load the initial iterate into the current read buffer."""
        self._read_sel = 0
        self._x[0][:] = x

    def read_view(self) -> np.ndarray:
        """The buffer the *next* round reads (the latest iterate)."""
        return self._x[self._read_sel]

    def write_view(self) -> np.ndarray:
        """The buffer the round just wrote (pre-swap)."""
        return self._x[1 - self._read_sel]

    def swap(self) -> None:
        """Make the just-written buffer the next round's read buffer."""
        self._read_sel = 1 - self._read_sel

    def round(
        self,
        *,
        alpha: float,
        self_dangling: bool,
        inner_sweeps: int,
        use_f32: bool,
        m_total: float,
    ) -> tuple[float, float, float]:
        """Run one block-Jacobi round across the workers.

        Returns ``(raw L1 change, mass of the written iterate, dangling
        mass of the written iterate)`` reduced over all shards.  The
        caller normalises the write buffer and calls :meth:`swap`.
        """
        if self._closed:
            raise ReproError("worker pool is closed")
        msg = (
            "round", self._read_sel, float(alpha), bool(self_dangling),
            self._has_target, int(inner_sweeps), bool(use_f32),
            float(m_total),
        )
        for conn in self._conns:
            conn.send(msg)
        diff = mass = dmass = 0.0
        for conn in self._conns:
            d, m, dm = conn.recv()
            diff += d
            mass += m
            dmass += dm
        return diff, mass, dmass

    def close(self) -> None:
        """Stop workers and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        # Drop the parent's own buffer views first so the segment can
        # usually be closed cleanly (see _release's BufferError note).
        self._x = ()
        self._t = self._target = None
        _release(self._procs, self._conns, self._shm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "alive"
        return (
            f"<ShardWorkerPool workers={self.workers} "
            f"substrate={self.substrate} segment={self._shm.name!r} "
            f"{state}>"
        )
