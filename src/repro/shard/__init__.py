"""Block-partitioned sharding of the solver core.

The monolithic solvers stream one CSR; this package blocks the graph
into node shards with contiguous row ranges (:mod:`repro.shard.plan`),
splits the solve operand into per-shard diagonal and coupling blocks
(:mod:`repro.shard.operator`), and converges the same fixed point by
block-relaxation rounds — serially (block Gauss–Seidel) or across a
persistent :mod:`multiprocessing` worker pool attached to the blocks
through shared memory (:mod:`repro.shard.pool`, block Jacobi /
restricted additive Schwarz).  :func:`repro.shard.solver.sharded_solve`
is the solver entry point; ``solver="sharded"`` in
:func:`repro.core.engine.solve_transition` routes here.
"""

from repro.shard.operator import DEFAULT_SIZE_FLOOR, ShardedOperator
from repro.shard.plan import ShardPlan, intra_fraction, plan_shards
from repro.shard.pool import ShardWorkerPool
from repro.shard.solver import sharded_solve

__all__ = [
    "DEFAULT_SIZE_FLOOR",
    "ShardPlan",
    "ShardedOperator",
    "ShardWorkerPool",
    "intra_fraction",
    "plan_shards",
    "sharded_solve",
]
