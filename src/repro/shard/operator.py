"""Per-shard block views of a transition operator.

:class:`ShardedOperator` splits the solve operand ``A = P.T`` of one
:class:`~repro.linalg.operator.LinearOperatorBundle` along a
:class:`~repro.shard.plan.ShardPlan`: for each shard ``s`` it holds the
**diagonal block** ``A_ss`` (an ``n_s × n_s`` CSR over the shard's own
permuted rows/columns — the operand of the shard's inner relaxation
sweeps) and the **coupling block** ``A_s·`` (an ``n_s × n`` CSR holding
the same rows' off-shard columns — the operand of the boundary-mass
exchange between rounds).  The split is exact: ``A_ss + A_s·`` scattered
back is row-range ``s`` of the permuted ``A``, so block relaxation over
these views converges to the *same* fixed point as the monolithic
solvers.

Construction is one vectorised pass: ``P``'s COO triplets are relabeled
through the plan and assembled directly into the permuted ``A`` (no
monolithic transpose conversion), then each shard's rows are split by a
column mask with ``O(nnz)`` cumulative sums.  Diagonal blocks keep their
``indices``/``indptr`` in int32 and expose a lazily-built float32 data
copy — the mixed-precision sweep operand, mirroring
``LinearOperatorBundle.mat_f32``.

Shard-local push views (:meth:`ShardedOperator.push_context`) model the
rest of the graph as a single absorbing **ghost node**: the shard's
local rows of ``P`` keep their in-shard columns and route all escaping
mass to the ghost, which is dangling (handled in closed form by
:func:`~repro.linalg.push.forward_push` under ``dangling="self"``).  The
ghost's settled mass is an exact upper bound on the probability the true
walk spends outside the shard, which is what the planner's shard-local
certificate checks.

Size floor
----------
Sharding pays off only past a size where block bookkeeping and (for the
pool path) worker round-trips are noise; below ``size_floor`` nodes the
constructor **refuses** (raises :class:`~repro.errors.ParameterError`)
unless ``force=True``.  :func:`~repro.shard.solver.sharded_solve`
converts that refusal into a transparent fallback to the monolithic
power path, so tiny-graph callers never pay shard setup.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ParameterError
from repro.linalg.operator import LinearOperatorBundle
from repro.shard.plan import ShardPlan, plan_shards

__all__ = ["DEFAULT_SIZE_FLOOR", "ShardedOperator"]

#: Below this many nodes a sharded solve cannot beat the monolithic path
#: (block setup alone exceeds a handful of full sweeps); the constructor
#: refuses unless forced and the solver falls back transparently.
DEFAULT_SIZE_FLOOR = 4096


def _split_rows(
    mat: sparse.csr_matrix, lo: int, hi: int
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Split permuted rows ``lo:hi`` into (diagonal, coupling) blocks.

    One pass over the row range's nnz: a column mask plus two cumulative
    sums rebuild both CSR index structures without scipy's generic (and
    far slower) fancy-indexing machinery.
    """
    n = mat.shape[1]
    ns = hi - lo
    start, end = int(mat.indptr[lo]), int(mat.indptr[hi])
    idx = mat.indices[start:end]
    dat = mat.data[start:end]
    local_indptr = (mat.indptr[lo : hi + 1] - start).astype(np.int64)
    inside = (idx >= lo) & (idx < hi)
    running = np.concatenate(([0], np.cumsum(inside)))
    intra_indptr = running[local_indptr]

    def idx_dtype(maxval: int) -> type:
        # int32 indices halve the index-stream bytes of every sweep; the
        # dtype must be shared by indices and indptr or scipy upcasts.
        return np.int32 if maxval <= np.iinfo(np.int32).max else np.int64

    dt = idx_dtype(max(ns, end - start))
    intra = sparse.csr_matrix(
        (
            dat[inside],
            (idx[inside] - lo).astype(dt),
            intra_indptr.astype(dt),
        ),
        shape=(ns, ns),
    )
    outside = ~inside
    dt = idx_dtype(max(n, end - start))
    ext = sparse.csr_matrix(
        (
            dat[outside],
            idx[outside].astype(dt),
            (local_indptr - intra_indptr).astype(dt),
        ),
        shape=(ns, n),
    )
    return intra, ext


class ShardedOperator:
    """Block decomposition of one transition operator along a shard plan.

    Parameters
    ----------
    operator:
        The monolithic :class:`~repro.linalg.operator.LinearOperatorBundle`
        (or a transition matrix, which resolves to its memoised bundle).
    plan:
        A :class:`~repro.shard.plan.ShardPlan` over the same node set;
        built on demand from ``n_shards``/``method`` when omitted.
    n_shards, method:
        Plan parameters used when ``plan`` is ``None``.
    size_floor:
        Minimum node count; smaller operands are refused unless
        ``force=True`` (see module docstring).
    force:
        Build regardless of ``size_floor`` (tests, explicit callers).
    """

    def __init__(
        self,
        operator: "LinearOperatorBundle | sparse.spmatrix",
        plan: ShardPlan | None = None,
        *,
        n_shards: int = 8,
        method: str = "auto",
        size_floor: int = DEFAULT_SIZE_FLOOR,
        force: bool = False,
    ) -> None:
        bundle = LinearOperatorBundle.of(operator)
        n = bundle.n
        if n < size_floor and not force:
            raise ParameterError(
                f"graph has {n} nodes, below the sharding size floor of "
                f"{size_floor}; solve monolithically (or pass force=True / "
                "a smaller size_floor)"
            )
        if plan is None:
            plan = plan_shards(bundle.mat, n_shards, method=method)
        if plan.n != n:
            raise ParameterError(
                f"shard plan covers {plan.n} nodes but the operator has {n}"
            )
        self.bundle = bundle
        self.plan = plan

        # Assemble the permuted A = P.T directly from P's COO triplets:
        # edge u→v of P contributes A[rank(v), rank(u)], so one relabeled
        # coo→csr assembly replaces both the transpose conversion and the
        # (row, column) permutation.
        coo = bundle.mat.tocoo()
        a_rows = plan.ranks[coo.col]
        a_cols = plan.ranks[coo.row]
        permuted = sparse.csr_matrix(
            (coo.data, (a_rows, a_cols)), shape=(n, n)
        )
        self.intra: list[sparse.csr_matrix] = []
        self.ext: list[sparse.csr_matrix] = []
        for s in range(plan.n_shards):
            lo, hi = int(plan.bounds[s]), int(plan.bounds[s + 1])
            intra, ext = _split_rows(permuted, lo, hi)
            self.intra.append(intra)
            self.ext.append(ext)

        # Permuted dangling bookkeeping: global mask plus each shard's
        # *local* dangling offsets (into its own slice).
        pmask = bundle.dangle_mask[plan.order]
        pmask.setflags(write=False)
        self.dangle_mask_p = pmask
        self.dangle_idx_p = np.flatnonzero(pmask)
        self.local_dangle: list[np.ndarray] = [
            np.flatnonzero(
                pmask[int(plan.bounds[s]) : int(plan.bounds[s + 1])]
            )
            for s in range(plan.n_shards)
        ]
        self.dangle_shard_p = (
            np.searchsorted(plan.bounds, self.dangle_idx_p, side="right") - 1
        )
        self._intra32: list[sparse.csr_matrix | None] = (
            [None] * plan.n_shards
        )
        self._coarse_ctx: list[tuple] | None = None
        self._push_ctx: dict[int, tuple] = {}
        self._pools: dict[tuple[int, str], object] = {}

    # ------------------------------------------------------------------
    # shape / diagnostics
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.bundle.n

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def cross_fraction(self) -> float:
        """Fraction of stored entries in coupling (off-diagonal) blocks."""
        total = self.bundle.mat.nnz
        if total == 0:
            return 0.0
        cross = sum(block.nnz for block in self.ext)
        return float(cross / total)

    def intra_f32(self, shard: int) -> sparse.csr_matrix:
        """Float32-data view of a diagonal block (lazily built, shared).

        Shares the float64 block's int32 ``indices``/``indptr`` buffers —
        only the data array is copied, exactly like
        ``LinearOperatorBundle.mat_f32``.
        """
        cached = self._intra32[shard]
        if cached is None:
            base = self.intra[shard]
            cached = sparse.csr_matrix(
                (base.data.astype(np.float32), base.indices, base.indptr),
                shape=base.shape,
            )
            self._intra32[shard] = cached
        return cached

    @property
    def coarse_ctx(self) -> list[tuple]:
        """Static boundary-flow functionals of the aggregation step.

        For shard ``s`` the entry is ``(js, vs, qs)``: the permuted
        column support of the coupling block ``A_s·``, its column sums,
        and each support column's source shard.  The cross-shard mass
        flow ``C[s, q] = 1ᵀ A_sq x_q`` of *any* iterate then reduces to
        ``Σ_{j∈q} vs[j]·x[j]`` — a precomputed linear functional, so one
        aggregation round touches only ``O(nnz(coupling))`` entries
        instead of re-streaming the blocks.
        """
        if self._coarse_ctx is None:
            ctx = []
            for s in range(self.plan.n_shards):
                colsum = np.asarray(self.ext[s].sum(axis=0)).ravel()
                js = np.flatnonzero(colsum)
                vs = colsum[js]
                qs = (
                    np.searchsorted(self.plan.bounds, js, side="right") - 1
                )
                ctx.append((js, vs, qs))
            self._coarse_ctx = ctx
        return self._coarse_ctx

    # ------------------------------------------------------------------
    # shard-local push views
    # ------------------------------------------------------------------
    def push_context(self, shard: int) -> tuple[LinearOperatorBundle, int]:
        """Return ``(local bundle, ghost index)`` for shard-local push.

        The local system has ``n_s + 1`` nodes: the shard's own rows of
        ``P`` restricted to in-shard columns, plus one trailing **ghost**
        column absorbing each row's escaping (off-shard) mass.  The ghost
        row is empty — a dangling node — so under ``dangling="self"`` the
        push solver settles everything that would leave the shard into
        the ghost's score in closed form; that settled mass bounds the
        true solution's out-of-shard probability from above.
        """
        ctx = self._push_ctx.get(shard)
        if ctx is not None:
            return ctx
        lo = int(self.plan.bounds[shard])
        ns = self.intra[shard].shape[0]
        # Local P_ss = (A_ss).T; the CSC transpose view converts once.
        local_p = self.intra[shard].T.tocsr()
        # Row sums of the full P rows tell leak = full − in-shard mass;
        # rows that were dangling globally stay dangling locally.
        full_row_sum = 1.0 - self.bundle.dangle_mask[
            self.plan.order[lo : lo + ns]
        ].astype(np.float64)
        leak = full_row_sum - np.asarray(local_p.sum(axis=1)).ravel()
        np.clip(leak, 0.0, None, out=leak)
        leak[leak < 1e-15] = 0.0  # round-off dust is not real escape
        ghost_rows = np.flatnonzero(leak)
        ghost_col = sparse.csr_matrix(
            (
                leak[ghost_rows],
                (ghost_rows, np.full(ghost_rows.shape[0], ns)),
            ),
            shape=(ns, ns + 1),
        )
        body = sparse.hstack(
            [local_p, sparse.csr_matrix((ns, 1))], format="csr"
        )
        body = (body + ghost_col).tocsr()
        full = sparse.vstack(
            [body, sparse.csr_matrix((1, ns + 1))], format="csr"
        )
        ctx = (LinearOperatorBundle(full), ns)
        self._push_ctx[shard] = ctx
        return ctx

    # ------------------------------------------------------------------
    # worker pools
    # ------------------------------------------------------------------
    def pool(
        self,
        workers: int,
        *,
        substrate: str = "shm",
        start_method: str | None = None,
    ):
        """Return (building once) the persistent worker pool of this size.

        Pools attach the shard blocks to one zero-copy segment —
        ``substrate="shm"`` for a fork-inherited ``/dev/shm`` segment,
        ``substrate="mmap"`` for a file-backed MAP_SHARED segment whose
        workers attach by path (and may therefore use ``spawn``) — and
        start worker processes once; subsequent solves at the same
        ``(workers, substrate)`` reuse them.  :meth:`close` (or garbage
        collection of the operator, via each pool's finalizer) releases
        processes and segments.
        """
        from repro.shard.pool import ShardWorkerPool  # local: mp import

        workers = int(workers)
        if workers < 2:
            raise ParameterError(
                f"a worker pool needs >= 2 workers, got {workers}"
            )
        key = (workers, str(substrate))
        pool = self._pools.get(key)
        if pool is None or not pool.alive:
            pool = ShardWorkerPool(
                self,
                workers=workers,
                substrate=substrate,
                start_method=start_method,
            )
            self._pools[key] = pool
        return pool

    def close(self) -> None:
        """Shut down any worker pools and release their shared memory."""
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedOperator n={self.n} shards={self.n_shards} "
            f"cross={self.cross_fraction:.3f} method={self.plan.method!r}>"
        )
