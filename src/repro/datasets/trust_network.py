"""Synthetic *directed* trust network (paper §3.2.2).

The paper's directed D2PR weights transitions by the destination's
**out-degree**: incoming edges are free signals of authority, but outgoing
edges cost effort, so "a vertex with a large number of outgoing edges may
either indicate a potential hub or simply a non-discerning connection
maker".  The eight replication graphs are undirected projections, so this
extra dataset exercises the directed formulation end-to-end.

Generative story (who-trusts-whom, Epinions-style):

* every user has a latent **discernment** ``d`` (how carefully they hand
  out trust) and a latent **trustworthiness** ``q``, positively correlated
  — careful people tend to be reliable;
* the number of trust statements a user *issues* is log-linear in
  ``−d``: non-discerning users spray trust everywhere (the §3.2.2 "poor
  participant with a large number of weak linkages");
* trust statements target trustworthy users, more sharply so when the
  issuer is discerning;
* observed significance = trustworthiness + noise (e.g. an offline audit).

Because low out-degree marks discerning (and hence trustworthy) users,
penalising high out-degree destinations (``p > 0``) aligns the walk with
significance — the directed analogue of application Group A.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SIGNIFICANCE_ATTR
from repro.datasets.significance import counts_from_scores, zscore
from repro.errors import ParameterError
from repro.graph.base import DiGraph
from repro.graph.generators import as_rng

__all__ = ["build_trust_network"]


def build_trust_network(
    n_users: int = 500,
    *,
    mean_trusts: float = 8.0,
    discernment_out_coupling: float = -0.8,
    trust_quality_corr: float = 0.6,
    selectivity: float = 0.8,
    noise_sigma: float = 0.6,
    seed: int | np.random.Generator | None = 7500,
) -> DiGraph:
    """Sample a directed trust network with per-user significances.

    Parameters
    ----------
    n_users:
        Number of users.
    mean_trusts:
        Average number of trust statements issued per user.
    discernment_out_coupling:
        Log-linear coupling between discernment and out-degree; negative
        means careful users issue fewer statements (the §3.2.2 mechanism).
    trust_quality_corr:
        Correlation between discernment and trustworthiness.
    selectivity:
        How sharply trust targets concentrate on trustworthy users, scaled
        by the issuer's discernment.
    noise_sigma:
        Observation noise on the significance attribute.
    seed:
        RNG seed (fixed default for reproducibility).

    Returns
    -------
    DiGraph
        Nodes carry ``significance`` (audited trustworthiness) and
        ``discernment`` attributes; edges point from truster to trustee.
    """
    if n_users < 3:
        raise ParameterError(f"n_users must be >= 3, got {n_users}")
    if mean_trusts <= 0:
        raise ParameterError(f"mean_trusts must be > 0, got {mean_trusts}")
    if not -1.0 <= trust_quality_corr <= 1.0:
        raise ParameterError(
            f"trust_quality_corr must be in [-1, 1], got {trust_quality_corr}"
        )
    rng = as_rng(seed)

    discernment = rng.normal(0.0, 1.0, size=n_users)
    independent = rng.normal(0.0, 1.0, size=n_users)
    rho = trust_quality_corr
    quality = rho * discernment + np.sqrt(max(0.0, 1 - rho * rho)) * independent

    # Out-degree: non-discerning users issue many statements.
    log_mean = discernment_out_coupling * zscore(discernment)
    log_mean -= np.log(np.exp(log_mean).mean())
    raw = mean_trusts * np.exp(log_mean + rng.normal(0.0, 0.25, size=n_users))
    out_counts = np.clip(np.round(raw).astype(int), 1, n_users - 1)

    width = len(str(n_users - 1))
    names = [f"user{i:0{width}d}" for i in range(n_users)]
    graph = DiGraph()
    audited = counts_from_scores(
        quality, rng, base=20.0, spread=0.9, noise_sigma=noise_sigma
    )
    for i, name in enumerate(names):
        graph.add_node(
            name,
            **{
                SIGNIFICANCE_ATTR: float(audited[i]),
                "discernment": float(discernment[i]),
            },
        )

    base_quality = zscore(quality)
    per_user_targets: list[np.ndarray] = []
    for i in range(n_users):
        # Issuer-specific targeting: discerning users weight quality more.
        sharpness = selectivity * (1.0 + np.tanh(discernment[i]))
        logits = sharpness * base_quality
        logits[i] = -np.inf  # no self-trust
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        per_user_targets.append(
            rng.choice(n_users, size=int(out_counts[i]), replace=False, p=weights)
        )
    graph.add_edges_arrays(
        np.repeat(np.arange(n_users, dtype=np.int64), out_counts),
        np.concatenate(per_user_targets).astype(np.int64),
    )
    return graph
