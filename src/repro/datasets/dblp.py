"""Synthetic DBLP / ArnetMiner substitute.

The paper builds

* an **article-article** graph (edge = shared co-author, weight = # of
  co-authors in common) whose significance is the article's citation count —
  application *Group C* (degree boosting helps, peak near ``p ≈ −1``), and
* an **author-author** graph (edge = co-authorship, weight = # of
  co-papers) whose significance is the average citations of the author's
  papers — application *Group B* (conventional PageRank ideal).

Each projection has its own calibrated sample (the paper's two DBLP graphs
are themselves different extractions: 8.8k articles vs 47k authors).

Causal stories encoded:

* author-author — "authors with a large number of co-authors tend to be
  experts with whom others want to collaborate" (§4.3.2):
  ``member_degree_coupling > 0`` with *homogeneous* team sizes and paper
  counts, which keeps neighbour degrees comparable — the paper's stated
  reason why Group B graphs react sharply to ``p < 0``.
* article-article — visibility compounds through prolific co-authors: a
  fat tail of author productivity (high ``membership_dispersion``) makes
  the projection hub-dominated (Table 3's huge neighbour-degree spread),
  and citations carry a hub-proximity premium, so amplifying degree
  (``p < 0``) aligns the walk with citations better than ``p = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.affiliation import AffiliationConfig, generate_affiliation
from repro.datasets.base import SIGNIFICANCE_ATTR, DataGraph
from repro.datasets.significance import blend, counts_from_scores
from repro.datasets.structure import mean_neighbor_degree
from repro.errors import ParameterError
from repro.graph.generators import as_rng

__all__ = ["build_dblp", "build_article_article", "build_author_author"]


def _scaled(n: int, scale: float) -> int:
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    return max(int(round(n * scale)), 8)


def build_article_article(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7201
) -> DataGraph:
    """Article-article graph: edge weight = # of shared co-authors.

    Significance: number of citations to the article.  Application Group C.
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(1100, scale),
        n_venues=_scaled(520, scale),
        mean_memberships=3.2,
        member_degree_coupling=0.6,
        venue_popularity_sigma=0.9,  # some articles have huge author lists
        quality_match=0.4,
        venue_quality_popularity_corr=0.4,
        membership_dispersion=0.85,  # fat tail of prolific authors
        member_prefix="author",
        venue_prefix="article",
    )
    sample = generate_affiliation(config, rng)
    graph = sample.venue_projection()

    # Hub-proximity premium: being co-author-connected to highly visible
    # articles increases citations (shared audiences, transitive reads).
    hub_proximity = mean_neighbor_degree(graph)
    # Align per-venue vectors with graph node order.
    order = np.array(
        [graph.index_of(name) for name in sample.venue_names], dtype=int
    )
    aligned_hub = np.empty(len(sample.venue_names))
    aligned_hub[:] = hub_proximity[order]

    citation_score = blend(
        (0.5, sample.venue_quality),
        (0.4, sample.mean_member_quality_per_venue()),
        (0.9, np.log1p(sample.venue_sizes)),  # team size = visibility
        (1.5, aligned_hub),
    )
    citations = counts_from_scores(
        citation_score, rng, base=25.0, spread=1.1, noise_sigma=0.55
    )
    for name, cites in zip(sample.venue_names, citations):
        graph.set_node_attr(name, SIGNIFICANCE_ATTR, float(cites))
    return DataGraph(
        name="dblp/article-article",
        graph=graph,
        group="C",
        significance_label="# of citations to the article",
        edge_weight_label="# of co-authors in common",
        dataset="dblp",
        notes=(
            "Synthetic substitute for DBLP/ArnetMiner; citation counts "
            "carry a visibility and hub-proximity premium, so boosting "
            "degree (p < 0) aligns the walk with significance."
        ),
    )


def build_author_author(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7202
) -> DataGraph:
    """Author-author co-authorship graph: edge weight = # of co-papers.

    Significance: average citations of the author's papers.  Application
    Group B.
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(1100, scale),
        n_venues=_scaled(1100, scale),
        mean_memberships=2.2,
        member_degree_coupling=0.25,  # experts collaborate more
        venue_popularity_sigma=0.15,  # homogeneous team sizes
        quality_match=0.8,
        venue_quality_popularity_corr=0.0,
        membership_dispersion=0.2,  # homogeneous productivity
        member_prefix="author",
        venue_prefix="article",
    )
    sample = generate_affiliation(config, rng)
    article_score = blend(
        (1.0, sample.venue_quality),
        (0.7, sample.mean_member_quality_per_venue()),
    )
    citations = counts_from_scores(
        article_score, rng, base=25.0, spread=0.9, noise_sigma=1.0
    )
    graph = sample.member_projection()
    for i, name in enumerate(sample.member_names):
        if not graph.has_node(name):
            continue
        joined = sample.memberships[i]
        significance = float(citations[joined].mean()) if joined.size else 0.0
        graph.set_node_attr(name, SIGNIFICANCE_ATTR, significance)
    return DataGraph(
        name="dblp/author-author",
        graph=graph,
        group="B",
        significance_label="average # of citations to the author's papers",
        edge_weight_label="# of co-papers",
        dataset="dblp",
        notes=(
            "Synthetic substitute for DBLP/ArnetMiner; expert-collaborator "
            "coupling with homogeneous team sizes keeps conventional "
            "PageRank optimal."
        ),
    )


def build_dblp(
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[DataGraph, DataGraph]:
    """Both DBLP projections (article-article, author-author)."""
    if seed is None:
        return build_article_article(scale), build_author_author(scale)
    rng = as_rng(seed)
    return build_article_article(scale, rng), build_author_author(scale, rng)
