"""Synthetic IMDB ∪ MovieLens substitute.

The paper merges IMDB contributor data with MovieLens ratings and builds

* a **movie-movie** graph (edge = shared contributor, weight = # of common
  contributors) whose significance is the movie's average user rating —
  application *Group B* (conventional PageRank ideal), and
* an **actor-actor** graph (edge = shared movie, weight = # of common
  movies) whose significance is the average rating of the actor's movies —
  application *Group A* (degree penalisation helps, peak near p ≈ 0.5).

Each projection is generated from its own affiliation sample calibrated to
that application's semantics.  This mirrors the paper's data reality: its
movie graph (191,602 nodes) and actor graph (32,208 nodes) are different
extractions of IMDB, not two views of one bipartite snapshot.

Causal stories encoded:

* actor-actor — ``member_degree_coupling < 0``: discriminating ("A movie")
  actors make fewer movies (the §1.2.1 budget argument), so degree carries
  a weak *negative* signal, while ``quality_match > 0`` lets significance
  still propagate through co-star neighbourhoods (why moderate
  penalisation beats extreme penalisation);
* movie-movie — big-budget productions attract large casts *and* earn
  higher ratings (``venue_quality_popularity_corr`` high), so degree is a
  genuine positive signal and ``p = 0`` stays optimal.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.affiliation import AffiliationConfig, generate_affiliation
from repro.datasets.base import SIGNIFICANCE_ATTR, DataGraph
from repro.datasets.significance import blend, ratings_from_scores
from repro.errors import ParameterError
from repro.graph.generators import as_rng

__all__ = ["build_imdb", "build_movie_movie", "build_actor_actor"]


def _scaled(n: int, scale: float) -> int:
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    return max(int(round(n * scale)), 8)


def build_actor_actor(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7101
) -> DataGraph:
    """Actor-actor graph: edge weight = # of common movies.

    Significance: average user rating of the movies the actor played in.
    Application Group A.
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(900, scale),
        n_venues=_scaled(520, scale),
        mean_memberships=3.6,
        member_degree_coupling=-0.35,  # budget effect: good actors act less
        venue_popularity_sigma=0.5,
        quality_match=0.75,  # good actors cluster in good movies
        venue_quality_popularity_corr=0.0,
        membership_dispersion=0.5,
        member_prefix="actor",
        venue_prefix="movie",
    )
    sample = generate_affiliation(config, rng)
    movie_score = blend(
        (1.0, sample.venue_quality),
        (0.8, sample.mean_member_quality_per_venue()),
    )
    movie_rating = ratings_from_scores(movie_score, rng, noise_sigma=1.0)
    graph = sample.member_projection()
    for i, name in enumerate(sample.member_names):
        if not graph.has_node(name):
            continue
        joined = sample.memberships[i]
        significance = float(movie_rating[joined].mean()) if joined.size else 0.0
        graph.set_node_attr(name, SIGNIFICANCE_ATTR, significance)
    return DataGraph(
        name="imdb/actor-actor",
        graph=graph,
        group="A",
        significance_label="average user rating of the actor's movies",
        edge_weight_label="# of common movies",
        dataset="imdb",
        notes=(
            "Synthetic substitute for IMDB+MovieLens 10M; the limited-budget "
            "mechanism of §1.2.1 drives the negative degree-significance "
            "coupling."
        ),
    )


def build_movie_movie(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7102
) -> DataGraph:
    """Movie-movie graph: edge weight = # of common contributors.

    Significance: the movie's average user rating.  Application Group B.

    Modelled with movies on the *member* side of the affiliation (each
    movie "selects" its cast from a pool of contributors): good movies have
    slightly larger, better casts (``member_degree_coupling > 0`` and
    ``quality_match``), cast sizes and contributor availability are
    homogeneous — the low neighbour-degree spread that, per §4.3.2, makes
    the graph react sharply to ``p < 0`` and keeps ``p = 0`` optimal.
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(620, scale),  # movies
        n_venues=_scaled(2400, scale),  # contributor pool
        mean_memberships=3.5,  # credited principal contributors
        member_degree_coupling=0.2,  # bigger budget ⇒ slightly larger cast
        venue_popularity_sigma=0.15,  # homogeneous contributor availability
        quality_match=0.8,  # good movies hire good contributors
        venue_quality_popularity_corr=0.0,
        membership_dispersion=0.2,
        member_prefix="movie",
        venue_prefix="contrib",
    )
    sample = generate_affiliation(config, rng)
    movie_score = blend(
        (1.0, sample.member_quality),
        (0.7, sample.mean_venue_quality_per_member()),
    )
    movie_rating = ratings_from_scores(movie_score, rng, noise_sigma=1.0)
    graph = sample.member_projection()
    for name, rating in zip(sample.member_names, movie_rating):
        if graph.has_node(name):
            graph.set_node_attr(name, SIGNIFICANCE_ATTR, float(rating))
    return DataGraph(
        name="imdb/movie-movie",
        graph=graph,
        group="B",
        significance_label="average user rating of the movie",
        edge_weight_label="# of common actors",
        dataset="imdb",
        notes=(
            "Synthetic substitute for IMDB+MovieLens 10M; positive "
            "budget-rating coupling makes conventional PageRank optimal."
        ),
    )


def build_imdb(
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[DataGraph, DataGraph]:
    """Both IMDB projections (movie-movie, actor-actor)."""
    if seed is None:
        return build_movie_movie(scale), build_actor_actor(scale)
    rng = as_rng(seed)
    return build_movie_movie(scale, rng), build_actor_actor(scale, rng)
