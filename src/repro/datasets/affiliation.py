"""Latent-quality affiliation model — the synthetic data substrate.

Every data graph in the paper is a one-mode projection of a two-mode
affiliation structure (actors–movies, authors–articles, commenters–products,
listeners–artists).  The paper's §1.2.1 articulates *why* degree and
significance can anti-correlate in such graphs:

    "(a) acquiring additional edges has a cost that is correlated with the
     significance of the neighbor (e.g. the effort one needs to invest to a
     high quality movie) and (b) each node has a limited budget (e.g. total
     effort an actor/actress can invest in his/her work)."

This module implements exactly that mechanism as a generative model:

1.  Every **member** (left side: actor, author, commenter, listener) draws a
    latent quality ``q ~ N(0, 1)``.
2.  The member's number of affiliations is log-linear in quality:
    ``k ∝ exp(member_degree_coupling · q)``.  Negative coupling produces the
    paper's budget effect — discriminating members afford fewer, better
    affiliations.  Positive coupling produces the "expert collaborator"
    regime of Group B.
3.  Every **venue** (right side: movie, article, product, artist) draws a
    latent quality ``Q ~ N(0, 1)`` and a lognormal attractiveness with
    dispersion ``venue_popularity_sigma`` — large dispersion creates hub
    venues, which after projection yield the dominant high-degree
    neighbours of the paper's Group C graphs.
4.  Members pick distinct venues with probability
    ``∝ attractiveness · exp(quality_match · q · Q)``: positive
    ``quality_match`` sends good members to good venues (A-movie dynamics).

The resulting :class:`AffiliationSample` exposes both sides' qualities,
the bipartite graph, and the projections; dataset modules attach their
application-specific significance on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError, ParameterError
from repro.graph.bipartite import BipartiteGraph, project
from repro.graph.base import Graph
from repro.graph.generators import as_rng

__all__ = ["AffiliationConfig", "AffiliationSample", "generate_affiliation"]


@dataclass(frozen=True)
class AffiliationConfig:
    """Knobs of the latent-quality affiliation generator.

    Attributes
    ----------
    n_members, n_venues:
        Sizes of the two node sets.
    mean_memberships:
        Average number of venues a member joins.
    member_degree_coupling:
        γ_m — log-linear coupling between member quality and membership
        count.  ``< 0``: high-quality members join fewer venues (the
        paper's budget mechanism, Group A).  ``> 0``: high-quality members
        join more venues (Group B experts).  ``0``: independent.
    venue_popularity_sigma:
        Lognormal dispersion of venue attractiveness.  ``0`` gives
        near-uniform venue sizes (homogeneous neighbourhoods, Group B);
        large values give hub venues (Group C).
    quality_match:
        Assortativity of member quality and venue quality during venue
        selection; positive values mean good members concentrate in good
        venues.
    venue_quality_popularity_corr:
        Correlation knob between a venue's quality and its attractiveness
        (popular venues can be systematically better, worse or unrelated).
    membership_dispersion:
        Lognormal sigma of membership counts around their quality-driven
        mean (individual noise).
    min_memberships / max_memberships:
        Hard clamp on per-member affiliation counts.
    member_prefix, venue_prefix:
        Node-name prefixes.
    """

    n_members: int
    n_venues: int
    mean_memberships: float
    member_degree_coupling: float = 0.0
    venue_popularity_sigma: float = 0.5
    quality_match: float = 0.0
    venue_quality_popularity_corr: float = 0.0
    membership_dispersion: float = 0.3
    min_memberships: int = 1
    max_memberships: int | None = None
    member_prefix: str = "m"
    venue_prefix: str = "v"

    def validate(self) -> None:
        """Raise :class:`ParameterError` for out-of-domain settings."""
        if self.n_members < 1 or self.n_venues < 1:
            raise ParameterError("n_members and n_venues must be >= 1")
        if self.mean_memberships <= 0:
            raise ParameterError("mean_memberships must be > 0")
        if self.venue_popularity_sigma < 0:
            raise ParameterError("venue_popularity_sigma must be >= 0")
        if self.membership_dispersion < 0:
            raise ParameterError("membership_dispersion must be >= 0")
        if self.min_memberships < 1:
            raise ParameterError("min_memberships must be >= 1")
        if not -1.0 <= self.venue_quality_popularity_corr <= 1.0:
            raise ParameterError(
                "venue_quality_popularity_corr must be in [-1, 1]"
            )


@dataclass
class AffiliationSample:
    """Output of :func:`generate_affiliation`.

    Holds the latent state (qualities, popularity) alongside the bipartite
    structure so significance models can be computed without re-deriving
    anything, plus cached one-mode projections.
    """

    config: AffiliationConfig
    bipartite: BipartiteGraph
    member_names: list[str]
    venue_names: list[str]
    member_quality: np.ndarray
    venue_quality: np.ndarray
    venue_popularity: np.ndarray
    memberships: list[np.ndarray]  # per member: venue indices joined
    _member_projection: Graph | None = field(default=None, repr=False)
    _venue_projection: Graph | None = field(default=None, repr=False)

    @property
    def venue_sizes(self) -> np.ndarray:
        """Number of members per venue (by venue index)."""
        sizes = np.zeros(len(self.venue_names), dtype=float)
        for joined in self.memberships:
            sizes[joined] += 1.0
        return sizes

    @property
    def membership_counts(self) -> np.ndarray:
        """Number of venues per member (by member index)."""
        return np.array([len(j) for j in self.memberships], dtype=float)

    def member_projection(self) -> Graph:
        """Member–member co-affiliation graph (weight = shared venues)."""
        if self._member_projection is None:
            self._member_projection = project(self.bipartite, "left")
        return self._member_projection

    def venue_projection(self) -> Graph:
        """Venue–venue co-membership graph (weight = shared members)."""
        if self._venue_projection is None:
            self._venue_projection = project(self.bipartite, "right")
        return self._venue_projection

    def mean_venue_quality_per_member(self) -> np.ndarray:
        """Average quality of the venues each member joined."""
        out = np.zeros(len(self.member_names))
        for i, joined in enumerate(self.memberships):
            if joined.size:
                out[i] = float(self.venue_quality[joined].mean())
        return out

    def mean_member_quality_per_venue(self) -> np.ndarray:
        """Average quality of the members in each venue (0 for empty)."""
        totals = np.zeros(len(self.venue_names))
        counts = np.zeros(len(self.venue_names))
        for i, joined in enumerate(self.memberships):
            totals[joined] += self.member_quality[i]
            counts[joined] += 1.0
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, totals / np.maximum(counts, 1.0), 0.0)
        return means


def _membership_counts(
    config: AffiliationConfig,
    quality: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Quality-coupled membership counts, clamped to the configured range."""
    log_mean = config.member_degree_coupling * quality
    # Normalise so the realised mean stays close to mean_memberships
    # regardless of the coupling strength.
    log_mean -= np.log(np.exp(log_mean).mean())
    noise = rng.normal(0.0, config.membership_dispersion, size=quality.shape)
    raw = config.mean_memberships * np.exp(log_mean + noise)
    counts = np.maximum(np.round(raw).astype(int), config.min_memberships)
    ceiling = config.max_memberships or config.n_venues
    ceiling = min(ceiling, config.n_venues)
    return np.minimum(counts, ceiling)


def generate_affiliation(
    config: AffiliationConfig,
    seed: int | np.random.Generator | None = None,
) -> AffiliationSample:
    """Sample a two-mode affiliation structure from the latent-quality model.

    See the module docstring for the generative process.  Deterministic for
    a fixed integer ``seed``.
    """
    config.validate()
    rng = as_rng(seed)

    member_quality = rng.normal(0.0, 1.0, size=config.n_members)
    # Venue quality with optional correlation to its popularity driver.
    base_quality = rng.normal(0.0, 1.0, size=config.n_venues)
    popularity_z = rng.normal(0.0, 1.0, size=config.n_venues)
    rho = config.venue_quality_popularity_corr
    venue_quality = rho * popularity_z + np.sqrt(max(0.0, 1 - rho * rho)) * base_quality
    venue_popularity = np.exp(config.venue_popularity_sigma * popularity_z)
    venue_popularity /= venue_popularity.sum()

    counts = _membership_counts(config, member_quality, rng)

    width_m = len(str(config.n_members - 1))
    width_v = len(str(config.n_venues - 1))
    member_names = [
        f"{config.member_prefix}{i:0{width_m}d}" for i in range(config.n_members)
    ]
    venue_names = [
        f"{config.venue_prefix}{i:0{width_v}d}" for i in range(config.n_venues)
    ]

    bipartite = BipartiteGraph()
    for name, quality in zip(member_names, member_quality):
        bipartite.add_left(name, quality=float(quality))
    for name, quality, pop in zip(venue_names, venue_quality, venue_popularity):
        bipartite.add_right(name, quality=float(quality), popularity=float(pop))

    log_pop = np.log(venue_popularity)
    memberships: list[np.ndarray] = []
    for i in range(config.n_members):
        k = int(counts[i])
        logits = log_pop + config.quality_match * member_quality[i] * venue_quality
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        joined = rng.choice(
            config.n_venues, size=k, replace=False, p=weights
        )
        memberships.append(np.sort(joined))
    bipartite.add_edges_arrays(
        np.repeat(
            np.arange(config.n_members, dtype=np.int64),
            [m.shape[0] for m in memberships],
        ),
        np.concatenate(memberships).astype(np.int64),
    )

    if bipartite.number_of_edges == 0:
        raise DatasetError("affiliation sample produced no edges")

    return AffiliationSample(
        config=config,
        bipartite=bipartite,
        member_names=member_names,
        venue_names=venue_names,
        member_quality=member_quality,
        venue_quality=venue_quality,
        venue_popularity=venue_popularity,
        memberships=memberships,
    )
