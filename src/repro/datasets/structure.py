"""Structural feature vectors used by the significance models.

Significances in the paper's applications are functions of *latent quality*
and of *structural position* (popularity compounds through hubs: a paper by
prolific authors is more visible, an artist sharing audiences with
superstars gets discovered).  These helpers compute the structural
components on the final projection graphs, aligned with node indices.
"""

from __future__ import annotations

import numpy as np

from repro.graph.base import BaseGraph

__all__ = ["degree_feature", "mean_neighbor_degree", "max_neighbor_degree"]


def degree_feature(graph: BaseGraph, *, log: bool = True) -> np.ndarray:
    """Node degrees (optionally log1p-compressed), by node index."""
    degrees = graph.out_degree_vector()
    return np.log1p(degrees) if log else degrees


def mean_neighbor_degree(graph: BaseGraph, *, log: bool = True) -> np.ndarray:
    """Average degree of each node's neighbours (0 for isolated nodes).

    This is the "hub proximity" feature: nodes adjacent to hubs score high.
    The ``p < 0`` regime of D2PR rewards exactly this property, which is
    why Group C significances carry it.
    """
    degrees = graph.out_degree_vector()
    out = np.zeros(graph.number_of_nodes, dtype=float)
    for i in range(graph.number_of_nodes):
        nbrs = graph.neighbor_indices(i)
        if nbrs:
            out[i] = float(degrees[nbrs].mean())
    return np.log1p(out) if log else out


def max_neighbor_degree(graph: BaseGraph, *, log: bool = True) -> np.ndarray:
    """Largest neighbour degree per node (0 for isolated nodes)."""
    degrees = graph.out_degree_vector()
    out = np.zeros(graph.number_of_nodes, dtype=float)
    for i in range(graph.number_of_nodes):
        nbrs = graph.neighbor_indices(i)
        if nbrs:
            out[i] = float(degrees[nbrs].max())
    return np.log1p(out) if log else out
