"""Dataset registry: build any of the paper's eight data graphs by name.

The registry is the single entry point the experiment harness, examples and
tests use::

    from repro.datasets import load
    dg = load("imdb/actor-actor", scale=0.5, seed=42)

``scale`` multiplies node counts (1.0 = the library's default laptop-scale
sizes); ``seed`` pins the generator.  :func:`load_all` materialises all
eight graphs, optionally restricted to an application group.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.datasets.base import DataGraph
from repro.datasets.dblp import build_article_article, build_author_author
from repro.datasets.epinions import (
    build_commenter_commenter,
    build_product_product,
)
from repro.datasets.imdb import build_actor_actor, build_movie_movie
from repro.datasets.lastfm import build_artist_artist, build_listener_listener
from repro.datasets.reference import GRAPH_NAMES, PAPER_GROUPS
from repro.errors import DatasetError

__all__ = ["load", "load_all", "graph_names", "groups"]

_BUILDERS: dict[str, Callable[..., DataGraph]] = {
    "imdb/movie-movie": build_movie_movie,
    "imdb/actor-actor": build_actor_actor,
    "dblp/article-article": build_article_article,
    "dblp/author-author": build_author_author,
    "lastfm/listener-listener": build_listener_listener,
    "lastfm/artist-artist": build_artist_artist,
    "epinions/commenter-commenter": build_commenter_commenter,
    "epinions/product-product": build_product_product,
}

# The registry and the reference table must agree; fail at import time if a
# builder was added without reference metadata or vice versa.
assert set(_BUILDERS) == set(GRAPH_NAMES), "registry out of sync with reference"


def graph_names() -> tuple[str, ...]:
    """Canonical names of the eight data graphs."""
    return GRAPH_NAMES


def groups() -> dict[str, str]:
    """Application-group assignment (paper §4.3) per graph name."""
    return dict(PAPER_GROUPS)


def load(
    name: str,
    *,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> DataGraph:
    """Build the data graph ``name`` at the given scale.

    Parameters
    ----------
    name:
        One of :func:`graph_names`, e.g. ``"epinions/product-product"``.
    scale:
        Node-count multiplier; 1.0 is the library default size, values in
        (0, 1) give faster test-scale graphs.
    seed:
        RNG seed; ``None`` uses each dataset's fixed default so that plain
        ``load(name)`` is deterministic.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise DatasetError(f"unknown data graph {name!r}; known: {known}") from None
    if seed is None:
        return builder(scale)
    return builder(scale, seed)


def load_all(
    *,
    scale: float = 1.0,
    seed_offset: int = 0,
    group: str | None = None,
) -> Iterator[DataGraph]:
    """Yield all data graphs (optionally one application group).

    ``seed_offset`` shifts every dataset's default seed, giving independent
    replicates for robustness experiments while staying deterministic.
    """
    if group is not None and group not in ("A", "B", "C"):
        raise DatasetError(f"group must be 'A', 'B' or 'C', got {group!r}")
    for name in GRAPH_NAMES:
        if group is not None and PAPER_GROUPS[name] != group:
            continue
        if seed_offset:
            base_seed = abs(hash((name, seed_offset))) % (2**31)
            yield load(name, scale=scale, seed=base_seed)
        else:
            yield load(name, scale=scale)
