"""Dataset abstraction: a data graph plus its application significance.

The paper's unit of evaluation is a *(graph, significance)* pair — e.g. the
actor-actor graph together with "average user rating of the movies each
actor played in".  :class:`DataGraph` bundles the two with the metadata the
experiment harness needs (which application group the paper assigns it to,
whether the weighted variant is meaningful, provenance notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.graph.base import Graph
from repro.graph.stats import GraphStatistics, graph_statistics

__all__ = ["DataGraph", "SIGNIFICANCE_ATTR"]

#: Node-attribute name under which every dataset stores its significance.
SIGNIFICANCE_ATTR = "significance"


@dataclass
class DataGraph:
    """A data graph with application-specific node significances.

    Attributes
    ----------
    name:
        Canonical graph name, e.g. ``"imdb/actor-actor"``.
    graph:
        The (undirected, weighted) projection graph.  Edge weights count
        shared affiliations; experiments on unweighted variants simply
        ignore them.
    group:
        The paper's application group: ``"A"`` (degree penalisation helps),
        ``"B"`` (conventional PageRank ideal) or ``"C"`` (degree boosting
        helps).
    significance_label:
        Human description of the significance semantics (e.g. "average user
        rating of the actor's movies").
    edge_weight_label:
        What the projection weights count (e.g. "# of common movies") —
        the paper quotes these in Figures 9–11.
    dataset:
        Source dataset family: ``imdb``, ``dblp``, ``lastfm``, ``epinions``.
    """

    name: str
    graph: Graph
    group: str
    significance_label: str
    edge_weight_label: str
    dataset: str
    notes: str = ""
    _significance_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.group not in ("A", "B", "C"):
            raise DatasetError(
                f"group must be 'A', 'B' or 'C', got {self.group!r}"
            )
        if self.graph.number_of_nodes == 0:
            raise DatasetError(f"data graph {self.name!r} is empty")

    def significance_vector(self) -> np.ndarray:
        """Per-node significance aligned with graph node indices.

        Raises
        ------
        DatasetError
            If any node lacks the significance attribute (datasets must
            attach it to every node).
        """
        if self._significance_cache is None:
            values = self.graph.node_attr_array(SIGNIFICANCE_ATTR)
            if np.isnan(values).any():
                missing = int(np.isnan(values).sum())
                raise DatasetError(
                    f"{self.name}: {missing} nodes lack the "
                    f"{SIGNIFICANCE_ATTR!r} attribute"
                )
            self._significance_cache = values
        return self._significance_cache

    def statistics(self) -> GraphStatistics:
        """Table 3 row for this graph."""
        return graph_statistics(self.graph, name=self.name)

    @property
    def expected_optimal_p_sign(self) -> int:
        """Sign of the optimal de-coupling weight the paper reports.

        +1 for Group A (penalisation), 0 for Group B, -1 for Group C.
        """
        return {"A": 1, "B": 0, "C": -1}[self.group]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DataGraph {self.name!r} group={self.group} "
            f"nodes={self.graph.number_of_nodes} "
            f"edges={self.graph.number_of_edges}>"
        )
