"""Synthetic Last.fm (hetrec2011) substitute.

The paper builds

* a **listener-listener** graph from the explicit friendship relation
  (weight = # of shared friends) whose significance is the listener's total
  listening activity — application *Group C*, and
* an **artist-artist** graph (edge = shared listener, weight = # of shared
  listeners) whose significance is the number of times the artist was
  listened to — also *Group C*.

Both graphs reward connectivity *and hub proximity*: social listeners near
well-connected friends discover and play more music; artists sharing
audiences with superstars get discovered through them.  The hub-proximity
component is what makes degree boosting (``p < 0``) outperform conventional
PageRank, and the heavy popularity tails create the dominant high-degree
neighbours behind the paper's flat ``p < 0`` plateau (Table 3: artist-artist
has the largest median neighbour-degree spread, 998.5).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.affiliation import AffiliationConfig, generate_affiliation
from repro.datasets.base import SIGNIFICANCE_ATTR, DataGraph
from repro.datasets.significance import blend, counts_from_scores
from repro.datasets.structure import degree_feature, mean_neighbor_degree
from repro.errors import ParameterError
from repro.graph.base import Graph
from repro.graph.generators import as_rng, barabasi_albert

__all__ = ["build_lastfm", "build_listener_listener", "build_artist_artist"]


def _scaled(n: int, scale: float) -> int:
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    return max(int(round(n * scale)), 10)


def _shared_friend_weights(friendship: Graph) -> Graph:
    """Re-weight friendship edges by the number of shared friends + 1.

    The paper's weighted listener-listener experiments use "# of shared
    friends" as the edge weight; the +1 keeps edges between friends with
    no common friends at positive weight.
    """
    weighted = Graph()
    weighted.add_nodes_from(friendship.nodes())
    # For a binary symmetric adjacency, sum_k A[u, k] * A[v, k] counts the
    # common neighbours of u and v.  Computing it as row-slices multiplied
    # elementwise (chunked over edges) only materialises the rows of the
    # edge endpoints, never the full A @ A product, whose common-neighbour
    # counts for *all* pairs would blow up on hub-heavy graphs.
    rows, cols, _ = friendship.edge_arrays()
    if rows.size:
        adjacency = friendship.to_csr(weighted=False)
        chunk = 65_536
        shared_parts = []
        for start in range(0, rows.shape[0], chunk):
            r = rows[start : start + chunk]
            c = cols[start : start + chunk]
            counts = adjacency[r].multiply(adjacency[c]).sum(axis=1)
            shared_parts.append(np.asarray(counts).ravel())
        shared = np.concatenate(shared_parts)
        weighted.add_edges_arrays(rows, cols, shared + 1.0)
    return weighted


def build_listener_listener(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7301
) -> DataGraph:
    """Listener friendship graph; significance = total listening activity.

    Application Group C: social hubs (and their friends) listen more, so
    degree boosting helps.
    """
    rng = as_rng(seed)
    n = _scaled(700, scale)
    friendship = barabasi_albert(n, 6, seed=rng, prefix="listener")
    graph = _shared_friend_weights(friendship)
    activity_score = blend(
        (1.1, degree_feature(graph)),
        (0.9, mean_neighbor_degree(graph)),  # hub proximity drives discovery
        (0.8, rng.normal(0.0, 1.0, size=n)),  # taste intensity
    )
    activity = counts_from_scores(
        activity_score, rng, base=800.0, spread=1.0, noise_sigma=0.35
    )
    for idx, node in enumerate(graph.nodes()):
        graph.set_node_attr(node, SIGNIFICANCE_ATTR, float(activity[idx]))
    return DataGraph(
        name="lastfm/listener-listener",
        graph=graph,
        group="C",
        significance_label="total listening activity of the listener",
        edge_weight_label="# of shared friends",
        dataset="lastfm",
        notes=(
            "Synthetic substitute for hetrec2011 Last.fm friendships; "
            "preferential attachment plus social-discovery coupling."
        ),
    )


def build_artist_artist(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7302
) -> DataGraph:
    """Artist-artist graph: edge weight = # of shared listeners.

    Significance: number of times the artist has been listened to.
    Application Group C.
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(700, scale),
        n_venues=_scaled(750, scale),
        mean_memberships=9.0,
        member_degree_coupling=0.3,  # eclectic listeners follow more artists
        venue_popularity_sigma=1.4,  # superstar economy: huge popularity tail
        quality_match=0.3,
        venue_quality_popularity_corr=0.6,  # popular artists well-regarded
        membership_dispersion=0.5,
        member_prefix="listener",
        venue_prefix="artist",
    )
    sample = generate_affiliation(config, rng)
    graph = sample.venue_projection()

    hub_proximity = mean_neighbor_degree(graph)
    order = np.array(
        [graph.index_of(name) for name in sample.venue_names], dtype=int
    )
    listen_score = blend(
        (1.2, np.log1p(sample.venue_sizes)),  # audience size
        (1.4, hub_proximity[order]),  # shared audiences with superstars
        (0.5, sample.venue_quality),
    )
    listens = counts_from_scores(
        listen_score, rng, base=5000.0, spread=1.2, noise_sigma=0.4
    )
    for name, count in zip(sample.venue_names, listens):
        graph.set_node_attr(name, SIGNIFICANCE_ATTR, float(count))
    return DataGraph(
        name="lastfm/artist-artist",
        graph=graph,
        group="C",
        significance_label="# of times the artist has been listened",
        edge_weight_label="# of shared listeners",
        dataset="lastfm",
        notes=(
            "Synthetic substitute for hetrec2011 Last.fm listening data; "
            "superstar popularity tail creates the hub-dominated structure."
        ),
    )


def build_lastfm(
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[DataGraph, DataGraph]:
    """Both Last.fm graphs (friendship + artist projection)."""
    if seed is None:
        return build_listener_listener(scale), build_artist_artist(scale)
    rng = as_rng(seed)
    return build_listener_listener(scale, rng), build_artist_artist(scale, rng)
