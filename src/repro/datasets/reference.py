"""Reference numbers quoted from the paper, for comparison and testing.

Two tables are transcribed:

* :data:`PAPER_TABLE3` — the dataset statistics of Table 3 (we reproduce
  the *orderings* of these columns at laptop scale, not the absolute
  values; see DESIGN.md §2).
* :data:`PAPER_GROUPS` — the application-group assignment of every data
  graph, i.e. the sign of the optimal de-coupling weight reported in
  Figures 2–4.
* :data:`PAPER_TABLE1` — Spearman correlations between PageRank ranks and
  degree ranks quoted in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperTable3Row",
    "PAPER_TABLE3",
    "PAPER_GROUPS",
    "PAPER_TABLE1",
    "GRAPH_NAMES",
]


@dataclass(frozen=True)
class PaperTable3Row:
    """One row of the paper's Table 3."""

    name: str
    nodes: int
    edges: int
    average_degree: float
    degree_std: float
    median_neighbor_degree_std: float


#: Table 3 of the paper, verbatim.
PAPER_TABLE3: dict[str, PaperTable3Row] = {
    row.name: row
    for row in (
        PaperTable3Row("imdb/movie-movie", 191_602, 4_465_272, 23.30, 51.86, 2.89),
        PaperTable3Row("imdb/actor-actor", 32_208, 2_493_574, 77.42, 67.15, 114.41),
        PaperTable3Row("dblp/article-article", 8_808, 951_798, 108.06, 171.25, 309.92),
        PaperTable3Row("dblp/author-author", 47_252, 310_250, 6.57, 8.89, 6.39),
        PaperTable3Row("lastfm/listener-listener", 1_892, 25_434, 13.44, 17.31, 22.37),
        PaperTable3Row("lastfm/artist-artist", 17_626, 2_640_150, 149.79, 299.66, 998.53),
        PaperTable3Row(
            "epinions/commenter-commenter", 6_703, 2_395_176, 425.05, 438.97, 609.39
        ),
        PaperTable3Row(
            "epinions/product-product", 13_384, 2_355_460, 175.99, 224.12, 202.78
        ),
    )
}

#: Application groups from §4.3 (sign of the optimal de-coupling weight).
PAPER_GROUPS: dict[str, str] = {
    "imdb/actor-actor": "A",
    "epinions/commenter-commenter": "A",
    "epinions/product-product": "A",
    "imdb/movie-movie": "B",
    "dblp/author-author": "B",
    "dblp/article-article": "C",
    "lastfm/listener-listener": "C",
    "lastfm/artist-artist": "C",
}

#: Table 1: Spearman correlation between PageRank ranks and degree ranks.
#: (The paper's table header mislabels the movie graph's source as DBLP;
#: the text makes clear it is the IMDB co-contributor graph.)
PAPER_TABLE1: dict[str, float] = {
    "lastfm/listener-listener": 0.988,
    "dblp/article-article": 0.997,
    "imdb/movie-movie": 0.848,
}

#: Canonical ordering of the eight data graphs.
GRAPH_NAMES: tuple[str, ...] = tuple(PAPER_GROUPS)
