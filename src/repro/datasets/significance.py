"""Application-specific significance models.

The paper's eight applications measure node significance in four flavours:

* bounded **ratings** (movie ratings, product ratings — 1 to 5 stars),
* heavy-tailed **counts** (citations, listening counts),
* **trust endorsements** received (Epinions commenters),
* **activity totals** (Last.fm listeners).

The helpers here turn latent z-scores from the affiliation model into these
observable quantities, with controlled noise so correlations are strong but
not degenerate.  All helpers take an explicit RNG for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "zscore",
    "ratings_from_scores",
    "counts_from_scores",
    "blend",
]


def zscore(values: np.ndarray) -> np.ndarray:
    """Standardise ``values`` to zero mean / unit variance.

    A constant vector maps to all-zeros instead of dividing by zero.
    """
    values = np.asarray(values, dtype=np.float64)
    std = values.std()
    if std == 0.0:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def blend(*components: tuple[float, np.ndarray]) -> np.ndarray:
    """Weighted sum of standardised components.

    Each ``(weight, values)`` pair is z-scored before weighting, so the
    weights express relative influence regardless of the raw scales.

    Examples
    --------
    >>> a = np.array([1.0, 2.0, 3.0]); b = np.array([3.0, 2.0, 1.0])
    >>> np.allclose(blend((1.0, a), (1.0, b)), 0.0)
    True
    """
    if not components:
        raise ParameterError("blend requires at least one component")
    total = None
    for weight, values in components:
        part = float(weight) * zscore(values)
        total = part if total is None else total + part
    return total


def ratings_from_scores(
    scores: np.ndarray,
    rng: np.random.Generator,
    *,
    lo: float = 1.0,
    hi: float = 5.0,
    noise_sigma: float = 0.3,
    steepness: float = 0.8,
) -> np.ndarray:
    """Map z-scores to bounded average ratings via a noisy logistic squash.

    Mimics "average user rating" significances: approximately monotone in
    the latent score, compressed at the extremes (a 4.8-rated movie and a
    4.9-rated movie are barely distinguishable), with per-item noise from
    finite numbers of raters.
    """
    if hi <= lo:
        raise ParameterError(f"need hi > lo, got lo={lo}, hi={hi}")
    if noise_sigma < 0:
        raise ParameterError("noise_sigma must be >= 0")
    z = zscore(np.asarray(scores, dtype=np.float64))
    noisy = z + rng.normal(0.0, noise_sigma, size=z.shape)
    squashed = 1.0 / (1.0 + np.exp(-steepness * noisy))
    return lo + (hi - lo) * squashed


def counts_from_scores(
    scores: np.ndarray,
    rng: np.random.Generator,
    *,
    base: float = 20.0,
    spread: float = 1.0,
    noise_sigma: float = 0.4,
) -> np.ndarray:
    """Map z-scores to heavy-tailed non-negative counts (citations, plays).

    ``count = round(base · exp(spread · z + noise))`` — lognormal around a
    quality-driven mean, which reproduces the skew of citation and
    listening-count distributions.
    """
    if base <= 0:
        raise ParameterError("base must be > 0")
    if noise_sigma < 0:
        raise ParameterError("noise_sigma must be >= 0")
    z = zscore(np.asarray(scores, dtype=np.float64))
    noisy = spread * z + rng.normal(0.0, noise_sigma, size=z.shape)
    return np.round(base * np.exp(noisy)).astype(float)
