"""Synthetic dataset substrate: the paper's eight data graphs.

See DESIGN.md §2 for the substitution rationale (paper datasets → synthetic
generative equivalents).
"""

from repro.datasets.affiliation import (
    AffiliationConfig,
    AffiliationSample,
    generate_affiliation,
)
from repro.datasets.base import SIGNIFICANCE_ATTR, DataGraph
from repro.datasets.dblp import build_article_article, build_author_author, build_dblp
from repro.datasets.epinions import (
    build_commenter_commenter,
    build_epinions,
    build_product_product,
)
from repro.datasets.imdb import build_actor_actor, build_imdb, build_movie_movie
from repro.datasets.lastfm import (
    build_artist_artist,
    build_lastfm,
    build_listener_listener,
)
from repro.datasets.reference import (
    GRAPH_NAMES,
    PAPER_GROUPS,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PaperTable3Row,
)
from repro.datasets.perturb import (
    add_random_edges,
    drop_edges,
    noisy_significance,
    perturbed_copy,
    rewire_edges,
)
from repro.datasets.registry import graph_names, groups, load, load_all
from repro.datasets.trust_network import build_trust_network
from repro.datasets.significance import (
    blend,
    counts_from_scores,
    ratings_from_scores,
    zscore,
)

__all__ = [
    "DataGraph",
    "SIGNIFICANCE_ATTR",
    "AffiliationConfig",
    "AffiliationSample",
    "generate_affiliation",
    "load",
    "load_all",
    "graph_names",
    "groups",
    "build_imdb",
    "build_movie_movie",
    "build_actor_actor",
    "build_dblp",
    "build_article_article",
    "build_author_author",
    "build_lastfm",
    "build_listener_listener",
    "build_artist_artist",
    "build_epinions",
    "build_commenter_commenter",
    "build_product_product",
    "GRAPH_NAMES",
    "PAPER_GROUPS",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PaperTable3Row",
    "zscore",
    "blend",
    "ratings_from_scores",
    "counts_from_scores",
    "drop_edges",
    "add_random_edges",
    "rewire_edges",
    "noisy_significance",
    "perturbed_copy",
    "build_trust_network",
]
