"""Synthetic Epinions / mTrust substitute.

The paper builds

* a **commenter-commenter** graph (edge = both commented on a product,
  weight = # of shared products) whose significance is the number of trust
  statements the commenter received — application *Group A*, and
* a **product-product** graph (edge = shared commenter, weight = # of
  shared commenters) whose significance is the product's average rating —
  the paper's most extreme *Group A* case: conventional PageRank is
  *negatively* correlated with significance, and over-penalisation never
  hurts (Figure 2(c)).

Mechanisms encoded:

* Commenters have a fixed attention budget: careful reviewers write few,
  deep reviews and earn trust (``member_degree_coupling < 0``, trust driven
  by quality with heavy noise so moderate penalisation beats extreme
  penalisation).
* "The larger the number of comments a product has, the more likely it is
  that the comments are negative" (§4.3.1, Figure 5): the product's rating
  *decreases monotonically* in comment volume with comparatively little
  noise — that tight monotone inversion is exactly what keeps the
  correlation from deteriorating when degrees are over-penalised.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.affiliation import AffiliationConfig, generate_affiliation
from repro.datasets.base import SIGNIFICANCE_ATTR, DataGraph
from repro.datasets.significance import blend, counts_from_scores, ratings_from_scores
from repro.errors import ParameterError
from repro.graph.generators import as_rng

__all__ = [
    "build_epinions",
    "build_commenter_commenter",
    "build_product_product",
]


def _scaled(n: int, scale: float) -> int:
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    return max(int(round(n * scale)), 8)


def build_commenter_commenter(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7401
) -> DataGraph:
    """Commenter-commenter graph: edge weight = # of shared products.

    Significance: # of trust statements the commenter received.
    Application Group A (degree penalisation helps, peak at p ≈ 0.5).
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(600, scale),
        n_venues=_scaled(700, scale),
        mean_memberships=11.0,
        member_degree_coupling=-0.4,  # attention budget
        venue_popularity_sigma=0.8,
        quality_match=0.7,  # careful reviewers pick related, decent products
        venue_quality_popularity_corr=-0.2,
        membership_dispersion=0.55,
        member_prefix="commenter",
        venue_prefix="product",
    )
    sample = generate_affiliation(config, rng)
    trust_score = blend(
        (1.0, sample.member_quality),
        (0.5, sample.mean_venue_quality_per_member()),
    )
    trust = counts_from_scores(
        trust_score, rng, base=15.0, spread=0.85, noise_sigma=1.0
    )
    graph = sample.member_projection()
    for name, count in zip(sample.member_names, trust):
        if graph.has_node(name):
            graph.set_node_attr(name, SIGNIFICANCE_ATTR, float(count))
    return DataGraph(
        name="epinions/commenter-commenter",
        graph=graph,
        group="A",
        significance_label="# of trust statements the commenter received",
        edge_weight_label="# of shared products",
        dataset="epinions",
        notes=(
            "Synthetic substitute for Epinions/mTrust; the attention-budget "
            "mechanism anti-correlates commenting volume and earned trust."
        ),
    )


def build_product_product(
    scale: float = 1.0, seed: int | np.random.Generator | None = 7402
) -> DataGraph:
    """Product-product graph: edge weight = # of shared commenters.

    Significance: the product's average rating.  The paper's strongest
    Group A case — correlation at ``p = 0`` is negative and stays high once
    degrees are penalised, without deteriorating for large ``p``.
    """
    rng = as_rng(seed)
    config = AffiliationConfig(
        n_members=_scaled(600, scale),
        n_venues=_scaled(700, scale),
        mean_memberships=11.0,
        member_degree_coupling=-0.3,
        venue_popularity_sigma=0.9,  # pile-on products
        quality_match=0.2,
        venue_quality_popularity_corr=-0.4,  # pile-ons tend worse
        membership_dispersion=0.5,
        member_prefix="commenter",
        venue_prefix="product",
    )
    sample = generate_affiliation(config, rng)
    comment_counts = sample.venue_sizes
    rating_score = blend(
        (-1.1, np.log1p(comment_counts)),  # pile-ons are bad news
        (0.5, sample.venue_quality),
    )
    ratings = ratings_from_scores(rating_score, rng, noise_sigma=0.7)
    graph = sample.venue_projection()
    for name, rating in zip(sample.venue_names, ratings):
        if graph.has_node(name):
            graph.set_node_attr(name, SIGNIFICANCE_ATTR, float(rating))
    return DataGraph(
        name="epinions/product-product",
        graph=graph,
        group="A",
        significance_label="average rating of the product",
        edge_weight_label="# of shared commenters",
        dataset="epinions",
        notes=(
            "Synthetic substitute for Epinions/mTrust; monotone negative "
            "comment-volume/rating coupling reproduces the negative "
            "correlation of conventional PageRank at p = 0."
        ),
    )


def build_epinions(
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[DataGraph, DataGraph]:
    """Both Epinions projections (commenter-commenter, product-product)."""
    if seed is None:
        return build_commenter_commenter(scale), build_product_product(scale)
    rng = as_rng(seed)
    return build_commenter_commenter(scale, rng), build_product_product(scale, rng)
