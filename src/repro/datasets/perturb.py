"""Graph and significance perturbation for robustness experiments.

The paper reports point estimates on fixed snapshots.  A production system
needs to know how stable the tuned de-coupling weight is when the data
shifts: edges appear/disappear (new movies, deleted reviews) and the
significance signal is re-measured with noise (new ratings arrive).

These utilities inject controlled perturbations while preserving the graph
invariants the library relies on (no self-loops, positive weights,
significance on every node), and power the ``ext-robustness`` experiment.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SIGNIFICANCE_ATTR, DataGraph
from repro.errors import ParameterError
from repro.graph.base import Graph
from repro.graph.generators import as_rng

__all__ = [
    "drop_edges",
    "add_random_edges",
    "rewire_edges",
    "noisy_significance",
    "perturbed_copy",
]


def drop_edges(
    graph: Graph,
    fraction: float,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Return a copy with a random ``fraction`` of the edges removed."""
    if not 0.0 <= fraction < 1.0:
        raise ParameterError(f"fraction must be in [0, 1), got {fraction}")
    rng = as_rng(seed)
    rows, cols, weights = graph.edge_arrays()
    keep_mask = rng.random(rows.shape[0]) >= fraction
    out = Graph()
    for node in graph.nodes():
        out.add_node(node, **graph.node_attrs(node))
    out.add_edges_arrays(rows[keep_mask], cols[keep_mask], weights[keep_mask])
    return out


def add_random_edges(
    graph: Graph,
    count: int,
    seed: int | np.random.Generator | None = None,
    *,
    max_tries_factor: int = 20,
) -> Graph:
    """Return a copy with ``count`` random new edges (weight 1).

    Sampling retries on duplicates/self-loops; gives up (returning fewer
    additions) only on pathological near-complete graphs.
    """
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    rng = as_rng(seed)
    out = graph.copy()
    nodes = out.nodes()
    n = len(nodes)
    if n < 2:
        return out
    added = 0
    tries = 0
    budget = max_tries_factor * max(count, 1)
    while added < count and tries < budget:
        tries += 1
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        u, v = nodes[int(i)], nodes[int(j)]
        if out.has_edge(u, v):
            continue
        out.add_edge(u, v)
        added += 1
    return out


def rewire_edges(
    graph: Graph,
    fraction: float,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Rewire a fraction of edges to random endpoints (degree-destroying).

    Each selected edge ``(u, v)`` is replaced by ``(u, w)`` for a uniformly
    random ``w`` — the standard noise model for testing how much a result
    depends on precise wiring.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ParameterError(f"fraction must be in [0, 1], got {fraction}")
    rng = as_rng(seed)
    edges = list(graph.edges())
    nodes = graph.nodes()
    n = len(nodes)
    out = Graph()
    for node in nodes:
        out.add_node(node, **graph.node_attrs(node))
    for u, v, w in edges:
        if rng.random() < fraction and n > 2:
            for _ in range(10):  # retry collisions a few times
                candidate = nodes[int(rng.integers(0, n))]
                if candidate != u and not out.has_edge(u, candidate):
                    v = candidate
                    break
        if not out.has_edge(u, v):
            out.add_edge(u, v, weight=w)
    return out


def noisy_significance(
    significance: np.ndarray,
    relative_sigma: float,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Return ``significance`` with multiplicative lognormal noise.

    ``relative_sigma`` is the noise scale in log space; 0 returns a copy.
    Signs are preserved (noise is multiplicative on the magnitude).
    """
    if relative_sigma < 0:
        raise ParameterError(
            f"relative_sigma must be >= 0, got {relative_sigma}"
        )
    significance = np.asarray(significance, dtype=np.float64)
    if relative_sigma == 0.0:
        return significance.copy()
    rng = as_rng(seed)
    factors = np.exp(rng.normal(0.0, relative_sigma, size=significance.shape))
    return significance * factors


def perturbed_copy(
    data_graph: DataGraph,
    *,
    drop_fraction: float = 0.0,
    add_count: int = 0,
    rewire_fraction: float = 0.0,
    significance_sigma: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> DataGraph:
    """Apply a combination of perturbations to a :class:`DataGraph`.

    Operations are applied in the order drop → add → rewire, then the
    significance attribute is re-noised.  Returns a new ``DataGraph`` with
    the same metadata.
    """
    rng = as_rng(seed)
    graph = data_graph.graph
    if drop_fraction:
        graph = drop_edges(graph, drop_fraction, rng)
    if add_count:
        graph = add_random_edges(graph, add_count, rng)
    if rewire_fraction:
        graph = rewire_edges(graph, rewire_fraction, rng)
    if graph is data_graph.graph:
        graph = graph.copy()

    if significance_sigma:
        original = data_graph.significance_vector()
        noisy = noisy_significance(original, significance_sigma, rng)
        for idx, node in enumerate(data_graph.graph.nodes()):
            if graph.has_node(node):
                graph.set_node_attr(node, SIGNIFICANCE_ATTR, float(noisy[idx]))

    return DataGraph(
        name=data_graph.name,
        graph=graph,
        group=data_graph.group,
        significance_label=data_graph.significance_label,
        edge_weight_label=data_graph.edge_weight_label,
        dataset=data_graph.dataset,
        notes=data_graph.notes + " [perturbed]",
    )
