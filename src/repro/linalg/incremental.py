"""Incremental rank maintenance: residual-correction updates after deltas.

A converged score vector ``x`` of the old system becomes, after a graph
delta replaces the transition ``P`` with ``P'``, an *approximate* solution
of the new system

.. math::

    \\vec r = \\alpha \\hat P'^T \\vec r + (1 - \\alpha) \\vec t

(``\\hat P'`` the dangling-augmented transition).  Its defect is the
residual

.. math::

    \\vec b = (1-\\alpha)\\vec t + \\alpha \\hat P'^T \\vec x - \\vec x
            = \\alpha (\\hat P' - \\hat P)^T \\vec x + O(tol),

which is supported only on the out-neighbourhood of the rows the delta
touched — for a small delta, a sparse vector.  The correction
``e = x' - x`` solves the *linear* system ``e = α·P̂'ᵀ·e + b``, so it can
be computed by the same Gauss–Southwell residual propagation as
:func:`~repro.linalg.push.forward_push`, generalised to **signed**
residual mass: pushing node ``u`` settles ``res[u]`` into the correction
and forwards ``α·res[u]`` along row ``u`` of ``P'`` — no transpose view is
ever needed, which also means an update never pays the ``P.T.tocsr()``
rebuild a cold solve does.

Certificate: because each push removes ``|res[u]|`` and re-injects at most
``α·|res[u]|``, the remaining signed mass ``Σ|res|`` bounds the L1 error
of ``x + q + res`` by ``Σ|res|·α/(1−α)``.  The solver stops at
``Σ|res| ≤ tol`` over the *pushable* residual; the dense background
inherited from the previous solve's own truncation error is frozen as
"dust" (the exact old-system residual, mass ≤ ~``tol``, plus the
``tol/n``-floor split, mass ≤ ``tol``) rather than chased around the
whole graph, so the certified L1 distance from the exact new fixed point
is ``≤ 3·tol·α/(1−α)`` — the same O(tol) class as a cold power
iteration's ``tol·α/(1−α)`` guarantee at the same tolerance (see the
inline notes in :func:`incremental_update`).

When the correction de-localises (large scattered deltas, tiny α,
``dangling="uniform"`` spraying mass), the solver falls back to
warm-started power iteration through the same operator bundle, exactly
like forward push — callers always converge; the win degrades gracefully
toward the warm-start-only speedup.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, ParameterError
from repro.linalg.operator import DANGLING_STRATEGIES, LinearOperatorBundle
from repro.linalg.push import _THETA_FRACTION
from repro.linalg.solvers import (
    PageRankResult,
    _validate_common,
    power_iteration,
)
from repro.telemetry.trace import record_result

__all__ = ["incremental_update", "residual_vector"]


def residual_vector(
    bundle: LinearOperatorBundle,
    x: np.ndarray,
    teleport: np.ndarray,
    alpha: float,
    dangling: str,
) -> np.ndarray:
    """Defect of ``x`` in the system defined by ``bundle``.

    ``(1−α)t + α·(P̂ᵀx) − x`` with the standard dangling-mass handling;
    zero (up to the old solve's tolerance) iff ``x`` is the fixed point.
    Computed through the **free CSC transpose view** — evaluating the
    residual never triggers the CSR transpose conversion.
    """
    spread = bundle.t_csc @ x
    if bundle.has_dangling:
        mass = float(x[bundle.dangle_mask].sum())
        if mass > 0.0:
            target = bundle.dangling_target(dangling, teleport)
            if target is None:  # "self": mass stays in place
                spread = spread + np.where(bundle.dangle_mask, x, 0.0)
            else:
                spread = spread + mass * target
    return alpha * spread + (1.0 - alpha) * teleport - x


def _finish(
    x: np.ndarray,
    q: np.ndarray,
    res: np.ndarray,
    *,
    epochs: int,
    converged: bool,
    history: list[float],
    method: str,
) -> PageRankResult:
    scores = x + q + res
    np.maximum(scores, 0.0, out=scores)
    total = scores.sum()
    if total > 0.0:
        scores = scores / total
    else:  # pragma: no cover - degenerate correction
        scores = x.copy()
    return record_result(
        PageRankResult(
            scores=scores,
            iterations=epochs,
            converged=converged,
            residuals=history,
            method=method,
        )
    )


def _fallback(
    bundle: LinearOperatorBundle,
    teleport: np.ndarray,
    x: np.ndarray,
    q: np.ndarray,
    res: np.ndarray,
    *,
    alpha: float,
    tol: float,
    max_iter: int,
    dangling: str,
    raise_on_failure: bool,
    epochs: int,
    history: list[float],
    cause: str,
) -> PageRankResult:
    """Finish with power iteration warm-started from the partial update."""
    guess = np.maximum(x + q + res, 0.0)
    result = power_iteration(
        None,
        alpha=alpha,
        teleport=teleport,
        tol=tol,
        max_iter=max(max_iter, 1),
        dangling=dangling,
        raise_on_failure=raise_on_failure,
        operator=bundle,
        x0=guess if guess.sum() > 0.0 else None,
    )
    return record_result(
        PageRankResult(
            scores=result.scores,
            iterations=epochs + result.iterations,
            converged=result.converged,
            residuals=history + result.residuals,
            method="incremental_fallback",
        ),
        fallback=cause,
        push_epochs=epochs,
    )


def incremental_update(
    transition: sparse.spmatrix | None,
    previous: np.ndarray,
    *,
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    dangling: str = "teleport",
    tol: float = 1e-10,
    max_iter: int = 1000,
    frontier_cap: float = 0.2,
    operator: LinearOperatorBundle | None = None,
    baseline_residual: np.ndarray | None = None,
    raise_on_failure: bool = False,
) -> PageRankResult:
    """Update ``previous`` scores to the fixed point of a new transition.

    Parameters
    ----------
    transition:
        The **new** (post-delta) row-stochastic matrix ``P'`` (may be
        ``None`` when ``operator`` is given — e.g. a graph-cached bundle
        refreshed by :meth:`~repro.graph.base.BaseGraph.apply_delta`).
    previous:
        The converged scores of the pre-delta system, solved with the
        same ``(alpha, teleport, dangling)``.  Any non-negative vector
        with positive mass is accepted; the closer it is to the new
        fixed point, the less work the update does.
    alpha, teleport, dangling, tol, max_iter:
        The query parameters — identical semantics (and identical
        fixed point) to :func:`~repro.linalg.solvers.power_iteration`.
    frontier_cap:
        Fraction of the matrix's stored entries one push epoch may
        stream (the nnz of the active frontier's rows) before the
        solver concludes the delta's influence is global — an epoch
        that streams a sweep's worth of entries contracts no faster
        than a power sweep — and falls back to warm-started power
        iteration.  ``0`` forces the fallback immediately.
    operator:
        Pre-built bundle of the new transition.
    baseline_residual:
        The residual of ``previous`` on the **old** (pre-delta) system,
        i.e. ``residual_vector(old_bundle, previous, t, alpha,
        dangling)`` — :func:`repro.core.engine.update_scores` computes
        it from the still-cached old bundle before applying the delta.
        When given, this dense inherited background (total mass ≤ the
        old solve's tolerance) is frozen wholesale and subtracted from
        the working residual, leaving exactly the delta-induced part —
        sparse by construction, for *any* dangling configuration — so
        the push never mistakes the old solve's truncation dust for
        correction work.  Without it, only the per-entry ``tol/n`` floor
        separates background from signal, which is enough for strongly
        localized deltas but floods the frontier near convergence when
        the background mass is comparable to ``tol``.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning an
        unconverged result.

    Returns
    -------
    PageRankResult
        ``method`` is ``"incremental_push"`` (localized convergence,
        certified L1 distance ≤ ``tol·α/(1−α)`` — the cold power
        iteration guarantee) or ``"incremental_fallback"``
        (finished by warm-started power iteration); ``iterations``
        counts push epochs (plus fallback sweeps) and ``residuals`` the
        remaining signed residual mass per epoch.
    """
    bundle, t = _validate_common(transition, alpha, teleport, operator)
    n = bundle.n
    if dangling not in DANGLING_STRATEGIES:
        raise ParameterError(
            f"unknown dangling strategy {dangling!r}; "
            f"expected one of {DANGLING_STRATEGIES}"
        )
    if not 0.0 <= frontier_cap <= 1.0:
        raise ParameterError(
            f"frontier_cap must be in [0, 1], got {frontier_cap}"
        )
    x = np.asarray(previous, dtype=np.float64)
    if x.shape != (n,):
        raise ParameterError(
            f"previous scores must have shape ({n},), got {x.shape}"
        )
    total = x.sum()
    if total <= 0.0 or (x < 0).any():
        raise ParameterError(
            "previous scores must be non-negative with positive mass"
        )
    x = x / total

    res = residual_vector(bundle, x, t, alpha, dangling)
    q = np.zeros(n)
    # The previous solve was itself only tol-accurate, so ``res`` carries
    # a *dense* inherited background (total mass ≲ tol, per-entry ≲
    # tol/n) on top of the (sparse) delta-induced defect.  Chasing that
    # background would mean re-polishing the whole graph — exactly the
    # work the incremental path exists to avoid — so it is split off as
    # frozen "dust": never pushed, never counted against the stopping
    # rule, added back into the final estimate unchanged.  The split is
    # exact when the caller supplies the old system's residual
    # (``baseline_residual``; the difference is the pure delta-induced
    # part) and magnitude-based otherwise (entries ≤ tol/n can never sum
    # past tol).  Dust mass is ≤ ~2·tol either way, so with the push
    # stopping at Σ|res| ≤ tol the final certified L1 distance from the
    # exact fixed point is ≤ 3·tol·α/(1−α) — the same O(tol) class as a
    # cold power iteration's tol·α/(1−α) certificate at the same tol.
    if baseline_residual is not None:
        base = np.asarray(baseline_residual, dtype=np.float64)
        if base.shape != (n,):
            raise ParameterError(
                f"baseline_residual must have shape ({n},), "
                f"got {base.shape}"
            )
        res = res - base
    else:
        base = None
    floor = tol / n
    small = np.abs(res) <= floor
    dust = np.where(small, res, 0.0)
    res = res - dust
    if base is not None:
        dust = dust + base
    sum_abs = float(np.abs(res).sum())
    history: list[float] = [sum_abs]
    stop_at = tol
    if sum_abs <= stop_at:
        return _finish(
            x, q, res + dust,
            epochs=0, converged=True, history=history,
            method="incremental_push",
        )

    if dangling == "uniform" and bundle.has_dangling:
        # One dangling push densifies the correction; go straight to the
        # solver the frontier check would fall back to anyway.
        return _fallback(
            bundle, t, x, q, res + dust,
            alpha=alpha, tol=tol, max_iter=max_iter, dangling=dangling,
            raise_on_failure=raise_on_failure, epochs=0, history=history,
            cause="uniform_dangling",
        )

    mat = bundle.mat
    row_nnz = np.diff(mat.indptr)
    dangle_mask = bundle.dangle_mask
    # Fall back when one epoch would stream more than frontier_cap of the
    # stored entries: at that point a push epoch costs a comparable
    # matrix stream to a full power sweep while contracting no faster,
    # so warm-started power iteration wins.  (A *row-count* cap would
    # misfire: a wide frontier of low-degree rows is still far cheaper
    # than a sweep.)
    frontier_limit = frontier_cap * mat.nnz
    epochs = 0
    converged = False
    while epochs < max_iter:
        abs_res = np.abs(res)
        nnz = np.count_nonzero(abs_res)
        if nnz == 0:
            converged = True
            break
        theta = _THETA_FRACTION * sum_abs / nnz
        active = np.flatnonzero(abs_res >= theta)
        if int(row_nnz[active].sum()) > frontier_limit:
            return _fallback(
                bundle, t, x, q, res + dust,
                alpha=alpha, tol=tol, max_iter=max_iter - epochs,
                dangling=dangling, raise_on_failure=raise_on_failure,
                epochs=epochs, history=history, cause="frontier_cap",
            )
        epochs += 1

        if dangling == "self":
            # Closed form, as in forward push but for the correction
            # system: a self-looping dangling node's signed residual
            # settles geometrically into its own correction,
            # Σ_k α^k · res = res / (1−α).
            self_d = active[dangle_mask[active]]
            if self_d.size:
                q[self_d] += res[self_d] / (1.0 - alpha)
                res[self_d] = 0.0
                active = active[~dangle_mask[active]]
                if active.size == 0:
                    sum_abs = float(np.abs(res).sum())
                    history.append(sum_abs)
                    if sum_abs <= stop_at:
                        converged = True
                        break
                    continue

        r_act = res[active].copy()
        res[active] = 0.0
        q[active] += r_act
        # One restricted sparse·dense product over the active rows of the
        # *new* matrix: res += α · Σ_u res_u · P'[u, :].
        sub = mat[active]
        res += alpha * (sub.T @ r_act)
        if dangling == "teleport":
            d_mass = float(r_act[dangle_mask[active]].sum())
            if d_mass != 0.0:
                res += alpha * d_mass * t
        sum_abs = float(np.abs(res).sum())
        history.append(sum_abs)
        if sum_abs <= stop_at:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"incremental update did not reach tol={tol} within "
            f"{max_iter} epochs (remaining residual mass={sum_abs:.3e})",
            iterations=epochs,
            residual=sum_abs,
        )
    return _finish(
        x, q, res + dust,
        epochs=epochs, converged=converged, history=history,
        method="incremental_push",
    )
