"""Numerical substrate: transition builders, cached operators and solvers."""

from repro.linalg.batch import BatchResult, power_iteration_batch
from repro.linalg.incremental import incremental_update, residual_vector
from repro.linalg.operator import LinearOperatorBundle
from repro.linalg.push import forward_push
from repro.linalg.solvers import (
    DANGLING_STRATEGIES,
    PageRankResult,
    direct_solve,
    extrapolated_power_iteration,
    gauss_seidel,
    patch_dangling,
    power_iteration,
    validate_stochastic_rows,
)
from repro.linalg.transition import (
    blended_transition,
    connection_strength_transition,
    dangling_rows,
    degree_decoupled_transition,
    row_normalize,
    segment_softmax_weights,
    uniform_transition,
)

__all__ = [
    "PageRankResult",
    "BatchResult",
    "LinearOperatorBundle",
    "power_iteration",
    "power_iteration_batch",
    "extrapolated_power_iteration",
    "forward_push",
    "incremental_update",
    "residual_vector",
    "gauss_seidel",
    "direct_solve",
    "patch_dangling",
    "validate_stochastic_rows",
    "DANGLING_STRATEGIES",
    "row_normalize",
    "uniform_transition",
    "connection_strength_transition",
    "degree_decoupled_transition",
    "blended_transition",
    "dangling_rows",
    "segment_softmax_weights",
]
