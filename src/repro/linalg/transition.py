"""Transition-matrix builders.

All builders return **row-stochastic** sparse matrices ``P`` where
``P[i, j]`` is the probability of the random surfer stepping from node ``i``
to node ``j``.  The paper writes its equations column-stochastically
(``T_D(j, i)`` is the probability of moving *from* ``v_i`` *to* ``v_j``);
the two conventions are transposes of each other and the solvers in
:mod:`repro.linalg.solvers` multiply by ``P.T`` accordingly (the transpose
views are derived once per matrix and cached by
:class:`repro.linalg.operator.LinearOperatorBundle`, never per solve).

The core builder is :func:`degree_decoupled_transition`, Equation (1) of the
paper:

.. math::

    T_D(j, i) = \\frac{\\theta(v_j)^{-p}}
                      {\\sum_{v_k \\in N(v_i)} \\theta(v_k)^{-p}}

where ``theta`` is the degree (undirected), the out-degree (directed) or the
total out-weight (weighted graphs).

Numerical stability
-------------------
``theta^(-p)`` overflows float64 once ``|p| * log10(theta)`` exceeds ~308.
With degrees in the hundreds and the desideratum asking for ``p → ±∞``
behaviour, the naive formula is unusable.  All weights are therefore
computed in log space with a per-source-row max-shift (the standard
log-sum-exp trick), which is exact up to floating-point rounding for any
real ``p``.  The ablation benchmark ``bench_ablation_logspace`` demonstrates
where the naive formula breaks.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ParameterError

__all__ = [
    "row_normalize",
    "uniform_transition",
    "connection_strength_transition",
    "degree_decoupled_transition",
    "blended_transition",
    "dangling_rows",
    "segment_softmax_weights",
]


def _as_csr(adjacency: sparse.spmatrix) -> sparse.csr_matrix:
    mat = sparse.csr_matrix(adjacency, dtype=np.float64)
    if mat.shape[0] != mat.shape[1]:
        raise ParameterError(
            f"adjacency must be square, got shape {mat.shape}"
        )
    mat.sort_indices()
    return mat


def dangling_rows(adjacency: sparse.spmatrix) -> np.ndarray:
    """Boolean mask of rows with no out-going entries (dangling nodes)."""
    mat = _as_csr(adjacency)
    return np.diff(mat.indptr) == 0


def row_normalize(adjacency: sparse.spmatrix) -> sparse.csr_matrix:
    """Scale every non-empty row to sum to 1 (empty rows stay empty)."""
    mat = _as_csr(adjacency).copy()
    if mat.nnz == 0:
        return mat
    # reduceat cannot handle empty segments (their start index duplicates
    # the next row's, or equals nnz and falls out of bounds), so reduce
    # over the non-empty rows only and scatter the sums back.
    lengths = np.diff(mat.indptr)
    nonempty = lengths > 0
    row_sums = np.zeros(lengths.shape[0])
    row_sums[nonempty] = np.add.reduceat(mat.data, mat.indptr[:-1][nonempty])
    with np.errstate(invalid="ignore", divide="ignore"):
        inv = np.where(row_sums > 0.0, 1.0 / row_sums, 0.0)
    mat.data *= np.repeat(inv, lengths)
    return mat


def uniform_transition(adjacency: sparse.spmatrix) -> sparse.csr_matrix:
    """Conventional unweighted PageRank transition.

    Every existing edge from a node gets probability ``1 / out_degree``,
    ignoring stored weights.  This is the paper's ``p = 0`` case.
    """
    mat = _as_csr(adjacency).copy()
    mat.data = np.ones_like(mat.data)
    return row_normalize(mat)


def connection_strength_transition(
    adjacency: sparse.spmatrix,
) -> sparse.csr_matrix:
    """Weighted conventional PageRank transition (paper's ``T_conn``).

    Out-edges are normalised proportionally to their weights:
    ``T_conn(j, i) = w(i→j) / Σ_h w(i→h)``.
    """
    return row_normalize(_as_csr(adjacency))


def segment_softmax_weights(
    log_theta_per_entry: np.ndarray,
    indptr: np.ndarray,
    p: float,
) -> np.ndarray:
    """Stabilised ``theta^(-p)`` weights normalised within each CSR row.

    Given ``log(theta)`` of the *destination* of every stored entry and the
    CSR ``indptr`` delimiting rows, return weights proportional to
    ``exp(-p * log_theta)`` that sum to 1 within each non-empty row.

    This is the log-sum-exp trick applied per CSR segment, so the result is
    finite and correctly normalised for any real ``p`` — including the
    desideratum limits where ``p → ±∞`` concentrates all mass on the
    extreme-degree neighbour.
    """
    if log_theta_per_entry.shape[0] == 0:
        return log_theta_per_entry.astype(np.float64)
    scores = -p * log_theta_per_entry
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    starts = np.asarray(indptr[:-1])[nonempty]
    # reduceat cannot handle empty segments; reduce over non-empty rows
    # only and scatter back (empty rows contribute no entries anyway).
    row_max = np.zeros(lengths.shape[0])
    row_max[nonempty] = np.maximum.reduceat(scores, starts)
    shifted = scores - np.repeat(row_max, lengths)
    weights = np.exp(shifted)
    row_sums = np.ones(lengths.shape[0])
    row_sums[nonempty] = np.add.reduceat(weights, starts)
    weights /= np.repeat(row_sums, lengths)
    return weights


def degree_decoupled_transition(
    adjacency: sparse.spmatrix,
    p: float,
    *,
    theta: np.ndarray | None = None,
    clamp_min: float = 1.0,
) -> sparse.csr_matrix:
    """Degree de-coupled transition matrix — Equation (1) of the paper.

    Parameters
    ----------
    adjacency:
        Sparse adjacency with rows as sources.  Only the sparsity pattern is
        used unless ``theta`` is derived from weights by the caller.
    p:
        The degree de-coupling weight.  ``p = 0`` reproduces the uniform
        transition; ``p > 0`` penalises high-``theta`` destinations;
        ``p < 0`` boosts them.
    theta:
        Per-node positive "size" used for weighting: degree for undirected
        graphs, out-degree for directed graphs, total out-weight for
        weighted graphs.  Defaults to the row-count of non-zeros
        (out-degree) of ``adjacency``.
    clamp_min:
        Destinations with ``theta < clamp_min`` are clamped up to
        ``clamp_min`` for weighting purposes.  The paper's formula is
        undefined for ``outdeg = 0`` destinations (``0^-p``); clamping to 1
        treats sinks as degree-1 nodes, which keeps them reachable without
        letting them dominate (see DESIGN.md §5.3).

    Returns
    -------
    scipy.sparse.csr_matrix
        Row-stochastic matrix with the sparsity pattern of ``adjacency``.
    """
    if not np.isfinite(p):
        raise ParameterError(f"p must be finite, got {p}")
    if clamp_min <= 0.0:
        raise ParameterError(f"clamp_min must be > 0, got {clamp_min}")
    mat = _as_csr(adjacency).copy()
    n = mat.shape[0]
    if theta is None:
        theta_vec = np.diff(mat.indptr).astype(np.float64)
    else:
        theta_vec = np.asarray(theta, dtype=np.float64)
        if theta_vec.shape != (n,):
            raise ParameterError(
                f"theta must have shape ({n},), got {theta_vec.shape}"
            )
        if (theta_vec < 0).any():
            raise ParameterError("theta entries must be non-negative")
    log_theta = np.log(np.maximum(theta_vec, clamp_min))
    mat.data = segment_softmax_weights(log_theta[mat.indices], mat.indptr, p)
    return mat


def blended_transition(
    adjacency: sparse.spmatrix,
    p: float,
    beta: float,
    *,
    theta: np.ndarray | None = None,
    clamp_min: float = 1.0,
) -> sparse.csr_matrix:
    """Weighted-graph transition: ``β·T_conn + (1-β)·T_D`` (paper §3.2.3).

    ``beta = 1`` is the conventional weighted PageRank (connection strength
    only); ``beta = 0`` is full degree de-coupling.  ``theta`` defaults to
    the total out-weight of each node, the paper's ``Θ(v)``.
    """
    if not 0.0 <= beta <= 1.0:
        raise ParameterError(f"beta must be in [0, 1], got {beta}")
    mat = _as_csr(adjacency)
    if theta is None:
        # Θ(v) = Σ w(v → ·): total out-weight.
        theta = np.asarray(mat.sum(axis=1)).ravel()
    decoupled = degree_decoupled_transition(
        mat, p, theta=theta, clamp_min=clamp_min
    )
    if beta == 0.0:
        return decoupled
    strength = connection_strength_transition(mat)
    if beta == 1.0:
        return strength
    blended = beta * strength + (1.0 - beta) * decoupled
    return sparse.csr_matrix(blended)
