"""Cached solver-operator views of a transition matrix.

Every single-query solver needs the same derived objects of the transition
``P`` on every call: the CSR-converted transpose ``P.T`` (the matvec
operand), the CSC transpose view (linear-system solvers), the dangling-row
mask and the dangling redistribution target.  Before this module each
solver re-derived them per call — ``P.T.tocsr()`` alone costs hundreds of
milliseconds at 1M nodes / 20M edges, re-paid on *every* ``power_iteration``
call even though the transition itself was cached on the graph.

:class:`LinearOperatorBundle` memoises those views per transition matrix:

* views are built **lazily** on first use and cached on the bundle, so a
  solver that never touches a view never pays for it;
* :meth:`LinearOperatorBundle.of` attaches the bundle to the matrix object
  itself, so repeated solves against the *same* matrix object — exactly
  what the graph's mutation-counter matrix cache hands out — share one
  bundle with zero extra bookkeeping, and the bundle's lifetime is the
  matrix's lifetime (a graph mutation rebuilds the transition, which
  abandons the old bundle with it);
* graph-level callers go through :meth:`repro.graph.base.BaseGraph.
  operator_bundle`, which keys the bundle on the graph's mutation-aware
  cache so it invalidates exactly like the transition caches.

Cached views are shared between callers and must be treated as read-only —
the same copy-before-mutate contract as the graph matrix cache
(``docs/performance.md``).
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy import sparse

from repro.errors import ParameterError

__all__ = [
    "DANGLING_STRATEGIES",
    "LinearOperatorBundle",
    "dangling_target",
    "patch_dangling",
]

DANGLING_STRATEGIES = ("teleport", "uniform", "self")

#: Attribute under which :meth:`LinearOperatorBundle.of` memoises the bundle
#: on the matrix object itself.
_BUNDLE_ATTR = "_repro_operator_bundle"

#: Entries kept in the per-bundle patched-matrix memo before the oldest is
#: evicted.  The patched matrix depends on ``(strategy, teleport)``, so the
#: memo is keyed by a digest of the teleport vector; the cap keeps callers
#: that sweep many distinct teleports from accumulating dense rows.
_PATCHED_CAP = 8


def dangling_target(
    strategy: str, teleport: np.ndarray, n: int
) -> np.ndarray | None:
    """Redistribution target for dangling-row mass, or ``None`` for "self".

    ``"teleport"`` returns the caller's (normalised) teleport vector,
    ``"uniform"`` an even spread, ``"self"`` keeps the mass in place (the
    solvers handle that in-loop).
    """
    if strategy == "teleport":
        return teleport
    if strategy == "uniform":
        return np.full(n, 1.0 / n)
    if strategy == "self":
        return None  # handled in-loop: mass stays put
    raise ParameterError(
        f"unknown dangling strategy {strategy!r}; "
        f"expected one of {DANGLING_STRATEGIES}"
    )


def patch_dangling(
    transition: sparse.spmatrix,
    teleport: np.ndarray | None = None,
    *,
    dangling: str = "teleport",
) -> sparse.csr_matrix:
    """Return ``P`` with dangling rows replaced by an explicit distribution.

    This densifies only the dangling rows, enabling solvers that need a
    fully stochastic matrix (Gauss–Seidel, direct solve).  Intended for the
    small graphs those solvers target.
    """
    mat = sparse.csr_matrix(transition, dtype=np.float64).copy()
    n = mat.shape[0]
    if teleport is None:
        teleport = np.full(n, 1.0 / n)
    else:
        teleport = np.asarray(teleport, dtype=np.float64)
        teleport = teleport / teleport.sum()
    dangle_mask = np.diff(mat.indptr) == 0
    if not dangle_mask.any():
        return mat
    target = dangling_target(dangling, teleport, n)
    rows = np.flatnonzero(dangle_mask)
    if target is None:  # "self"
        fix = sparse.csr_matrix(
            (np.ones(rows.size), (rows, rows)), shape=(n, n)
        )
    else:
        data = np.tile(target, rows.size)
        indices = np.tile(np.arange(n), rows.size)
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[rows + 1] = n
        indptr = np.cumsum(indptr)
        fix = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
    return sparse.csr_matrix(mat + fix)


def _digest(vec: np.ndarray) -> bytes:
    return hashlib.sha1(
        np.ascontiguousarray(vec, dtype=np.float64).tobytes()
    ).digest()


class LinearOperatorBundle:
    """Lazily memoised solver views of one row-stochastic transition ``P``.

    Built from (and permanently tied to) one transition matrix; all views
    are derived on first access and cached for the bundle's lifetime, so
    the bundle must only ever wrap matrices that are not mutated afterwards
    — which is the existing contract for everything the graph matrix cache
    hands out.

    Views
    -----
    ``mat``
        The canonical ``csr_matrix`` (float64) of the transition.
    ``t_csr``
        ``P.T`` converted to CSR — the operand of every power-iteration
        matvec.  This property is the *only* place in the library that
        performs the CSC→CSR transpose conversion.
    ``t_csc``
        ``P.T`` as the free CSC view (shares the CSR's buffers).
    ``dangle_mask`` / ``dangle_idx`` / ``has_dangling``
        Dangling-row (no out-edges) bookkeeping shared by every solver.
    """

    __slots__ = (
        "_mat",
        "_mat_f32",
        "_t_csr",
        "_dangle_mask",
        "_dangle_idx",
        "_uniform",
        "_patched",
        "_fingerprint",
    )

    def __init__(self, transition: sparse.spmatrix) -> None:
        if (
            sparse.issparse(transition)
            and transition.format == "csr"
            and transition.dtype == np.float64
        ):
            # Keep the caller's object: graph caches hand out canonical
            # CSR float64 matrices and the bundle must alias, not copy.
            mat = transition
        else:
            mat = sparse.csr_matrix(transition, dtype=np.float64)
        if mat.shape[0] != mat.shape[1]:
            raise ParameterError(
                f"transition must be square, got {mat.shape}"
            )
        if mat.shape[0] == 0:
            raise ParameterError("transition matrix must be non-empty")
        self._mat = mat
        # Fingerprint of the wrapped matrix: scipy's sparse setitem
        # replaces the index/data arrays, so a changed buffer identity
        # (or nnz) reveals structural in-place edits, and the value
        # checksum catches the sneakier failure of mutating `.data`
        # through the same buffer (same sparsity pattern) — which used
        # to serve a stale cached transpose/float32 copy.  `of` rebuilds
        # on any mismatch.  The checksum is O(nnz) in the sum plus a
        # fixed-size sampled digest, so compensating edits confined to
        # unsampled positions remain theoretically undetectable — the
        # wrap-only-immutable-matrices contract still stands; the
        # fingerprint is a guard rail, not a licence to mutate.
        self._fingerprint = self._fingerprint_of(mat)
        self._mat_f32: sparse.csr_matrix | None = None
        self._t_csr: sparse.csr_matrix | None = None
        self._dangle_mask: np.ndarray | None = None
        self._dangle_idx: np.ndarray | None = None
        self._uniform: np.ndarray | None = None
        # (strategy, teleport-digest) -> patched CSR / CSC pair, capped.
        self._patched: dict[tuple[str, bytes], tuple] = {}

    @staticmethod
    def _fingerprint_of(mat: sparse.csr_matrix) -> tuple:
        """Cheap identity + value checksum of a CSR matrix.

        Buffer identities and ``nnz`` detect structural edits; the exact
        data sum plus a SHA-1 of ≤ 65 strided samples detects in-place
        value mutation through the same buffers.
        """
        data = mat.data
        if data.size:
            stride = max(1, data.size // 64)
            sample = np.ascontiguousarray(data[::stride])
            value_sum = float(data.sum())
            digest = hashlib.sha1(sample.tobytes()).digest()
        else:
            value_sum = 0.0
            digest = b""
        return (id(data), id(mat.indices), mat.nnz, value_sum, digest)

    @classmethod
    def of(
        cls, transition: "sparse.spmatrix | LinearOperatorBundle"
    ) -> "LinearOperatorBundle":
        """Return the memoised bundle of ``transition`` (building one once).

        The bundle is attached to the matrix object itself, so every call
        with the same object — e.g. a transition held in a graph's matrix
        cache — returns the same bundle, and the bundle dies with the
        matrix.  Matrices that reject attribute assignment simply get a
        fresh (uncached) bundle.  A fingerprint mismatch — structural
        setitem *or* in-place value mutation of ``.data`` (see
        :meth:`_fingerprint_of`) — rebuilds instead of serving stale
        derived views.
        """
        if isinstance(transition, cls):
            return transition
        bundle = getattr(transition, _BUNDLE_ATTR, None)
        if (
            isinstance(bundle, cls)
            and bundle._fingerprint == cls._fingerprint_of(bundle._mat)
        ):
            return bundle
        bundle = cls(transition)
        try:
            setattr(transition, _BUNDLE_ATTR, bundle)
        except AttributeError:  # pragma: no cover - exotic matrix types
            pass
        return bundle

    @classmethod
    def resolve(
        cls,
        transition: "sparse.spmatrix | None",
        operator: "LinearOperatorBundle | None",
    ) -> "LinearOperatorBundle":
        """Resolve a solver's ``(transition, operator)`` argument pair.

        The one shared entry point for every solver: with no ``operator``
        the memoised bundle of ``transition`` is used; with both given the
        shapes must agree — a mismatched pair means the caller wired up
        the wrong graph's cached bundle, and silently solving the wrong
        system is exactly the failure this check exists to turn into an
        exception.
        """
        if operator is None:
            if transition is None:
                raise ParameterError(
                    "either a transition matrix or an operator bundle "
                    "is required"
                )
            return cls.of(transition)
        if transition is not None and transition.shape != operator.shape:
            raise ParameterError(
                f"operator bundle shape {operator.shape} does not match "
                f"transition shape {transition.shape}"
            )
        return operator

    # ------------------------------------------------------------------
    # shape / matrix views
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes (rows/columns of the transition)."""
        return self._mat.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self._mat.shape

    @property
    def mat(self) -> sparse.csr_matrix:
        """The canonical float64 CSR of ``P`` (read-only by contract)."""
        return self._mat

    @property
    def t_csr(self) -> sparse.csr_matrix:
        """``P.T`` in CSR form — built once, reused by every solve."""
        if self._t_csr is None:
            # The cached construction site: the one transpose conversion
            # the whole single-query pipeline performs per matrix.
            self._t_csr = self._mat.T.tocsr()
        return self._t_csr

    def seed_transpose_from(
        self,
        old_bundle: "LinearOperatorBundle | object",
        correction: sparse.spmatrix,
    ) -> bool:
        """Patch the cached ``P.T`` from a predecessor bundle's transpose.

        The streaming-refresh fast path: when this bundle wraps
        ``old.mat + correction`` (the invariant of the graph's
        delta-aware cache refresh, see ``graph/delta.py``) and the old
        bundle had already built its transpose, the new transpose is
        exactly ``old.t_csr + correction.T`` — one sparse merge over the
        stored entries plus an O(correction-nnz) conversion, instead of
        the full CSC→CSR transpose rebuild the first post-delta power
        sweep used to pay.  Entry values match the lazy rebuild exactly:
        both sides add the same float pairs the forward patch added.

        Returns ``True`` when the transpose is (or already was) seeded;
        ``False`` when the predecessor never built its transpose or a
        consistency check fails — in either case the lazy rebuild on
        first access still applies, so this method can never serve a
        wrong view, only decline to pre-build one.
        """
        if self._t_csr is not None:
            return True
        if not isinstance(old_bundle, LinearOperatorBundle):
            return False
        old_t = old_bundle._t_csr
        if old_t is None or old_bundle.shape != self.shape:
            return False
        patched = (old_t + correction.T.tocsr()).tocsr()
        patched.eliminate_zeros()
        if patched.nnz != self._mat.nnz:  # pragma: no cover - defensive
            return False
        self._t_csr = patched
        return True

    @property
    def t_csc(self) -> sparse.csc_matrix:
        """``P.T`` as the free CSC view of the CSR buffers."""
        return self._mat.T

    @property
    def mat_f32(self) -> sparse.csr_matrix:
        """Float32 copy of ``P`` (the mixed-precision sweep operand)."""
        if self._mat_f32 is None:
            self._mat_f32 = self._mat.astype(np.float32)
        return self._mat_f32

    # ------------------------------------------------------------------
    # dangling bookkeeping
    # ------------------------------------------------------------------
    @property
    def dangle_mask(self) -> np.ndarray:
        """Boolean mask of rows with no out-edges (read-only)."""
        if self._dangle_mask is None:
            mask = np.diff(self._mat.indptr) == 0
            mask.setflags(write=False)
            self._dangle_mask = mask
        return self._dangle_mask

    @property
    def dangle_idx(self) -> np.ndarray:
        """Indices of dangling rows (read-only)."""
        if self._dangle_idx is None:
            idx = np.flatnonzero(self.dangle_mask)
            idx.setflags(write=False)
            self._dangle_idx = idx
        return self._dangle_idx

    @property
    def has_dangling(self) -> bool:
        return self.dangle_idx.size > 0

    def dangling_target(
        self, strategy: str, teleport: np.ndarray
    ) -> np.ndarray | None:
        """Per-call dangling target; the uniform spread is cached."""
        if strategy == "uniform":
            if self._uniform is None:
                uniform = np.full(self.n, 1.0 / self.n)
                uniform.setflags(write=False)
                self._uniform = uniform
            return self._uniform
        return dangling_target(strategy, teleport, self.n)

    # ------------------------------------------------------------------
    # patched views (Gauss–Seidel / direct solve)
    # ------------------------------------------------------------------
    def _patched_pair(
        self, strategy: str, teleport: np.ndarray
    ) -> tuple[sparse.csr_matrix, sparse.csc_matrix | None]:
        # Only the "teleport" strategy's patched rows depend on the
        # teleport vector; "uniform" and "self" share one entry so that
        # teleport sweeps cannot thrash the cap.
        key = (
            strategy,
            _digest(teleport) if strategy == "teleport" else b"",
        )
        pair = self._patched.get(key)
        if pair is None:
            if len(self._patched) >= _PATCHED_CAP:
                self._patched.pop(next(iter(self._patched)))
            patched = patch_dangling(self._mat, teleport, dangling=strategy)
            pair = [patched, None]
            self._patched[key] = pair
        return pair

    def patched(
        self, strategy: str, teleport: np.ndarray
    ) -> sparse.csr_matrix:
        """``P`` with dangling rows densified (memoised per teleport)."""
        return self._patched_pair(strategy, teleport)[0]

    def patched_csc(
        self, strategy: str, teleport: np.ndarray
    ) -> sparse.csc_matrix:
        """CSC conversion of :meth:`patched` (memoised alongside it)."""
        pair = self._patched_pair(strategy, teleport)
        if pair[1] is None:
            pair[1] = pair[0].tocsc()
        return pair[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = [
            name
            for name, value in (
                ("t_csr", self._t_csr),
                ("dangle", self._dangle_mask),
            )
            if value is not None
        ]
        return (
            f"<LinearOperatorBundle n={self.n} nnz={self._mat.nnz} "
            f"built={built}>"
        )
