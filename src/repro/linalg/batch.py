"""Batched power iteration: many PageRank-style systems in one pass.

The paper's evaluation protocol — the ``p`` sweep, the α and β grids,
per-seed personalised queries — is *many* stationary solves over one graph.
Systems that share a transition matrix differ only in their teleport vector
(and possibly α), so instead of K independent matvec loops the whole family
can be advanced together as one ``n × K`` dense score block:

.. math::

    X \\leftarrow \\operatorname{diag-free}\\;
        \\alpha_k (P^T X)_{:,k} + (1 - \\alpha_k) t_k

One CSR·dense multiply per sweep replaces K CSR·vector multiplies.  Because
sparse matvec is memory-bound, the batched multiply touches every stored
nonzero once per sweep *for all columns at once*, which is where the
measured speedup comes from (``tools/bench_perf.py``, ``ppr_batch``).

Semantics match :func:`repro.linalg.solvers.power_iteration` column by
column (the test-suite pins agreement to 1e-12 across all dangling
strategies):

* **per-column convergence masking** — a column whose L1 residual drops
  below ``tol`` freezes and leaves the active block, so late stragglers
  don't force converged systems to keep iterating;
* **shared dangling handling** — the dangling-row mask and target are
  computed once for the whole batch; with ``dangling="teleport"`` each
  column redistributes its dangling mass through its *own* teleport vector,
  exactly like the sequential solver;
* **warm starting** — ``warm_start`` seeds the initial block (an ``(n,)``
  guess broadcast to all columns, or a full ``(n, K)`` block, e.g. the
  scores of the previous point of a smooth parameter grid), and
  ``warm_start="chain"`` solves the columns left-to-right with column
  ``k+1`` starting from column ``k``'s solution — the right mode when the
  columns themselves form a smooth grid and iteration count, not matmul
  throughput, dominates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, ParameterError
from repro.linalg.operator import LinearOperatorBundle
from repro.linalg.solvers import (
    DANGLING_STRATEGIES,
    PageRankResult,
)
from repro.telemetry.trace import record_solver

__all__ = ["BatchResult", "power_iteration_batch"]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched stationary-distribution computation.

    Attributes
    ----------
    scores:
        ``(n, K)`` matrix; column ``k`` is the stationary vector of system
        ``k`` (each column sums to 1).
    iterations:
        ``(K,)`` sweeps performed per column (a converged column stops
        counting at its convergence sweep).
    converged:
        ``(K,)`` boolean convergence flags.
    residuals:
        Per-column L1 residual history (list of K lists).
    method:
        Name of the solver that produced the result.
    """

    scores: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    residuals: list[list[float]] = field(default_factory=list)
    method: str = "power_iteration_batch"

    @property
    def n_queries(self) -> int:
        """Number of systems in the batch (K)."""
        return self.scores.shape[1]

    @property
    def all_converged(self) -> bool:
        """Whether every column reached tolerance."""
        return bool(self.converged.all())

    @property
    def final_residuals(self) -> np.ndarray:
        """Last recorded residual per column (0.0 when none recorded)."""
        return np.array(
            [hist[-1] if hist else 0.0 for hist in self.residuals]
        )

    def column(self, k: int) -> PageRankResult:
        """View column ``k`` as a standalone :class:`PageRankResult`."""
        if not 0 <= k < self.n_queries:
            raise ParameterError(
                f"column index {k} out of range for batch of "
                f"{self.n_queries} queries"
            )
        return PageRankResult(
            scores=self.scores[:, k].copy(),
            iterations=int(self.iterations[k]),
            converged=bool(self.converged[k]),
            residuals=list(self.residuals[k]),
            method=self.method,
        )


def _normalize_column(vec: np.ndarray, n: int, what: str) -> np.ndarray:
    vec = np.asarray(vec, dtype=np.float64)
    if vec.shape != (n,):
        raise ParameterError(
            f"{what} must have shape ({n},), got {vec.shape}"
        )
    if (vec < 0).any():
        raise ParameterError(f"{what} entries must be non-negative")
    total = vec.sum()
    if total <= 0.0:
        raise ParameterError(f"{what} must have positive mass")
    return vec / total


def _teleport_block(
    teleports: np.ndarray | Sequence[np.ndarray | None] | None,
    n: int,
    n_queries: int | None,
) -> np.ndarray:
    """Build the normalised ``(n, K)`` teleport block."""
    if teleports is None:
        k = 1 if n_queries is None else n_queries
        return np.full((n, k), 1.0 / n)
    if isinstance(teleports, np.ndarray):
        arr = np.asarray(teleports, dtype=np.float64)
        if arr.ndim == 1:
            col = _normalize_column(arr, n, "teleport column")
            k = 1 if n_queries is None else n_queries
            return np.repeat(col[:, None], k, axis=1)
        if arr.ndim != 2 or arr.shape[0] != n:
            raise ParameterError(
                f"teleports must have shape ({n}, K), got {arr.shape}"
            )
        block = np.empty_like(arr)
        for k in range(arr.shape[1]):
            block[:, k] = _normalize_column(
                arr[:, k], n, f"teleport column {k}"
            )
        return block
    # Sequence of per-column specs; each entry may be None (uniform).
    cols = list(teleports)
    if not cols:
        raise ParameterError("teleports sequence must be non-empty")
    block = np.empty((n, len(cols)))
    uniform = np.full(n, 1.0 / n)
    for k, spec in enumerate(cols):
        if spec is None:
            block[:, k] = uniform
        else:
            block[:, k] = _normalize_column(
                np.asarray(spec), n, f"teleport column {k}"
            )
    return block


def _alpha_vector(alphas: float | Sequence[float] | np.ndarray, k: int) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(alphas, dtype=np.float64))
    if arr.ndim != 1:
        raise ParameterError(f"alphas must be scalar or 1-D, got shape {arr.shape}")
    if arr.shape[0] == 1:
        arr = np.repeat(arr, k)
    if arr.shape[0] != k:
        raise ParameterError(
            f"alphas length {arr.shape[0]} does not match batch width {k}"
        )
    bad = ~((arr >= 0.0) & (arr < 1.0))
    if bad.any():
        first = int(np.flatnonzero(bad)[0])
        raise ParameterError(
            f"alpha must be in [0, 1), got {arr[first]} (column {first})"
        )
    return arr


def _initial_block(
    warm_start: np.ndarray | str | None,
    teleport_block: np.ndarray,
) -> np.ndarray:
    n, k = teleport_block.shape
    if warm_start is None:
        return teleport_block.copy()
    arr = np.asarray(warm_start, dtype=np.float64)
    if arr.ndim == 1:
        col = _normalize_column(arr, n, "warm_start")
        return np.repeat(col[:, None], k, axis=1)
    if arr.shape != (n, k):
        raise ParameterError(
            f"warm_start must have shape ({n},) or ({n}, {k}), "
            f"got {arr.shape}"
        )
    block = np.empty_like(arr)
    for j in range(k):
        block[:, j] = _normalize_column(arr[:, j], n, f"warm_start column {j}")
    return block


#: Column-chunk width for the dense block.  Keeps the sweep loop's hot
#: working set a few score-blocks wide and sits at the measured
#: throughput sweet spot of scipy's sparse·dense kernel from 100k to 1M
#: nodes (wider blocks lose to TLB pressure on the randomly-indexed dense
#: rows, narrower ones amortise the matrix stream less).  Note that the
#: batch's inputs/outputs (teleport block, score matrix) are still full
#: ``(n, K)`` arrays — chunking bounds the per-sweep working set, not the
#: per-call allocation; split very large query sets across calls.
_CHUNK = 16

#: L1 residual at which the mixed-precision path hands a column from the
#: float32 phase to the float64 polish.  Above the float32 rounding floor
#: of the L1 residual with margin, so columns don't bounce on float32
#: noise just short of the switch; the stall guard in
#: :func:`_pooled_loop` promotes a column early if its float32 residual
#: bottoms out sooner anyway.
_MIXED_SWITCH_TOL = 1e-6


def _pooled_loop(
    mat_t: sparse.spmatrix,
    dangle_idx: np.ndarray,
    dangling: str,
    x_full: np.ndarray,
    ta_full: np.ndarray,
    tb_full: np.ndarray,
    al_full: np.ndarray,
    tol: float,
    max_iter: int,
    residuals: list[list[float]],
    iterations: np.ndarray,
    scores: np.ndarray,
    converged: np.ndarray | None,
    stall_factor: float | None = None,
    chunk_size: int = _CHUNK,
) -> None:
    """Advance every column of the batch to ``tol`` with a pooled scheduler.

    At most ``chunk_size`` columns iterate at a time (one contiguous dense
    block: one sparse·dense multiply plus a few in-place passes per
    sweep).  A column leaves the pool when its L1 residual drops below
    ``tol`` — or, when ``stall_factor`` is set (the float32 phase), when
    its residual stops improving by that factor (the float32 rounding
    floor) — or when it exhausts its ``max_iter`` budget.  Finished
    columns are compacted out and **pending columns are refilled in**
    once the pool thins below half width, so the sparse·dense multiply
    keeps running at an efficient block width even when per-column
    convergence times are spread out (the tail would otherwise iterate at
    near-matvec rates).

    The per-column arithmetic matches ``power_iteration`` operation for
    operation — pool composition never affects a column's values — so
    full-precision results agree with the sequential solver to round-off
    (pinned at 1e-12 by the equivalence suite).  ``iterations``
    accumulates sweeps per column across calls (phases).
    """
    n, k = x_full.shape
    if k == 0:
        return
    has_dangling = dangle_idx.size > 0
    dtype = x_full.dtype

    next_fill = min(k, chunk_size)
    cols = np.arange(next_fill)
    xa = np.ascontiguousarray(x_full[:, :next_fill])
    ta = np.ascontiguousarray(ta_full[:, :next_fill])
    tb = np.ascontiguousarray(tb_full[:, :next_fill])
    al = al_full[:next_fill].copy()
    prev_res = np.full(cols.shape[0], np.inf)

    while cols.size:
        spread = mat_t @ xa
        if has_dangling:
            if dangling == "self":
                spread[dangle_idx] += xa[dangle_idx]
            else:
                mass = (
                    xa[dangle_idx]
                    .sum(axis=0, dtype=np.float64)
                    .astype(dtype, copy=False)
                )
                if dangling == "teleport":
                    spread += ta * mass
                else:  # "uniform"
                    spread += (mass / n).astype(dtype, copy=False)
        spread *= al
        spread += tb
        # Normalise each column to kill accumulated round-off drift.  All
        # reductions accumulate in float64 even during the float32 phase:
        # a float32 sum over 10^6 entries drifts at ~1e-4 relative, which
        # would inject a scale error along the teleport direction that the
        # float64 polish then burns α-rate sweeps to remove.
        spread /= spread.sum(axis=0, dtype=np.float64).astype(
            dtype, copy=False
        )
        # Residual pass reuses the previous iterate's buffer in place.
        np.subtract(xa, spread, out=xa)
        np.abs(xa, out=xa)
        res = xa.sum(axis=0, dtype=np.float64)
        iterations[cols] += 1
        for col, value in zip(cols, res):
            residuals[col].append(float(value))
        xa = spread
        done = res < tol
        if stall_factor is not None:
            done |= res > prev_res * stall_factor  # hit the fp32 floor
        done |= iterations[cols] >= max_iter  # budget exhausted
        refill = (
            next_fill < k
            and (cols.size - int(done.sum())) <= chunk_size // 2
        )
        if done.any() or refill:
            if done.any():
                finished = cols[done]
                if converged is not None:
                    converged[finished] = res[done] < tol
                scores[:, finished] = xa[:, done]
                keep = ~done
                cols = cols[keep]
                # Boolean fancy indexing along axis 1 compacts into fresh
                # contiguous arrays.
                xa = xa[:, keep]
                ta = ta[:, keep]
                tb = tb[:, keep]
                al = al[keep]
                res = res[keep]
            if refill:
                take = min(chunk_size - cols.size, k - next_fill)
                new = np.arange(next_fill, next_fill + take)
                next_fill += take
                cols = np.concatenate([cols, new])
                xa = np.concatenate([xa, x_full[:, new]], axis=1)
                ta = np.concatenate([ta, ta_full[:, new]], axis=1)
                tb = np.concatenate([tb, tb_full[:, new]], axis=1)
                al = np.concatenate([al, al_full[new]])
                res = np.concatenate(
                    [res, np.full(take, np.inf, dtype=res.dtype)]
                )
        prev_res = res


def _alpha_family(
    mat_t: sparse.spmatrix,
    dangle_idx: np.ndarray,
    dangling: str,
    teleport: np.ndarray,
    alphas: np.ndarray,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[list[float]]]:
    """Solve a whole α-family against one teleport with one matvec per sweep.

    Power iteration started from ``t`` is exactly the truncated Neumann
    series: ``x_K(α) = (1−α)·Σ_{k<K} α^k v_k + α^K v_K`` with
    ``v_k = M̂^k t`` — the same vector sequence for *every* α.  So when a
    batch's columns share their teleport vector (an α grid, the shape of
    every parameter sweep), the matrix needs to be streamed **once per
    sweep for the whole family**: advance ``v`` with a single sparse
    matvec and reconstruct each α's iterate with a few vector passes.
    Per-column residuals, convergence masking and iteration counts keep
    the exact power-iteration semantics (the reconstruction *is* the
    power-iteration iterate, so results match the sequential solver to
    round-off).
    """
    n = teleport.shape[0]
    k = alphas.shape[0]
    scores = np.empty((n, k))
    iterations = np.zeros(k, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)
    residuals: list[list[float]] = [[] for _ in range(k)]
    has_dangling = dangle_idx.size > 0

    cols = np.arange(k)
    al = alphas.copy()
    alpha_pow = np.ones(k)  # α^{sweep-1} per active column
    v = teleport.copy()  # v_{sweep-1}
    series = np.zeros((n, k))  # Σ_{j<sweep-1} α^j v_j per active column
    x_prev = np.repeat(teleport[:, None], k, axis=1)  # x_0(α) = t

    for sweep in range(1, max_iter + 1):
        w = mat_t @ v
        if has_dangling:
            if dangling == "self":
                w[dangle_idx] += v[dangle_idx]
            else:
                mass = float(v[dangle_idx].sum())
                if dangling == "teleport":
                    w += mass * teleport
                else:  # "uniform"
                    w += mass / n
        # v is mass-preserving analytically; renormalise for round-off.
        w /= w.sum()
        series += v[:, None] * alpha_pow
        alpha_pow = alpha_pow * al
        v = w
        x_new = (1.0 - al) * series + v[:, None] * alpha_pow
        x_new /= x_new.sum(axis=0)
        res = np.abs(x_new - x_prev).sum(axis=0)
        iterations[cols] += 1
        for col, value in zip(cols, res):
            residuals[col].append(float(value))
        x_prev = x_new
        done = (res < tol) | (iterations[cols] >= max_iter)
        if done.any():
            finished = cols[done]
            converged[finished] = res[done] < tol
            scores[:, finished] = x_new[:, done]
            keep = ~done
            cols = cols[keep]
            if cols.size == 0:
                break
            series = series[:, keep]
            x_prev = x_prev[:, keep]
            al = al[keep]
            alpha_pow = alpha_pow[keep]
    return scores, iterations, converged, residuals


def _iterate_block(
    mat_t: sparse.spmatrix,
    mat_t32: sparse.spmatrix | None,
    dangle_idx: np.ndarray,
    dangling: str,
    teleport_block: np.ndarray,
    alphas: np.ndarray,
    x0: np.ndarray,
    tol: float,
    max_iter: int,
    chunk_size: int = _CHUNK,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[list[float]]]:
    """Solve the whole batch via the pooled scheduler (one or two phases).

    When ``mat_t32`` is given (``precision="mixed"``) the batch first
    iterates in float32 — halving both the matrix stream and the dense
    block traffic — until each column reaches the float32 switch
    tolerance (or its rounding floor), then finishes with standard
    float64 sweeps against the full-precision matrix until the true L1
    residual drops below ``tol``.  Convergence is therefore always
    certified in float64 at the requested tolerance; the shared
    ``max_iter`` budget spans both phases.
    """
    n, k = teleport_block.shape
    scores = np.empty((n, k))
    iterations = np.zeros(k, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)
    residuals: list[list[float]] = [[] for _ in range(k)]

    ta_full = np.ascontiguousarray(teleport_block)
    al_full = alphas.copy()
    # (1 − α)·t is constant across sweeps: precompute it once per batch.
    tb_full = ta_full * (1.0 - al_full)
    x_full = np.ascontiguousarray(x0)

    if mat_t32 is not None and tol < _MIXED_SWITCH_TOL:
        # The float32 phase writes its final iterates into `f32_scores`;
        # every column then re-enters the float64 loop from that iterate.
        f32_scores = np.empty((n, k), dtype=np.float32)
        _pooled_loop(
            mat_t32, dangle_idx, dangling,
            x_full.astype(np.float32),
            ta_full.astype(np.float32),
            tb_full.astype(np.float32),
            al_full.astype(np.float32),
            _MIXED_SWITCH_TOL, max_iter, residuals, iterations,
            f32_scores, None, stall_factor=0.95, chunk_size=chunk_size,
        )
        x_full = np.ascontiguousarray(f32_scores.astype(np.float64))
        # Column sums drifted at float32 scale: renormalise before the
        # float64 polish (power_iteration renormalises every sweep anyway).
        x_full /= x_full.sum(axis=0)

    _pooled_loop(
        mat_t, dangle_idx, dangling,
        x_full, ta_full, tb_full, al_full,
        tol, max_iter, residuals, iterations,
        scores, converged, chunk_size=chunk_size,
    )
    return scores, iterations, converged, residuals


def power_iteration_batch(
    transition: sparse.spmatrix,
    teleports: np.ndarray | Sequence[np.ndarray | None] | None = None,
    *,
    alphas: float | Sequence[float] | np.ndarray = 0.85,
    n_queries: int | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    dangling: str = "teleport",
    warm_start: np.ndarray | str | None = None,
    precision: str = "double",
    raise_on_failure: bool = False,
    operator: LinearOperatorBundle | None = None,
) -> BatchResult:
    """Solve ``r_k = α_k·P.T·r_k + (1−α_k)·t_k`` for all columns at once.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` shared by every system in the batch.
    teleports:
        Teleport specification per system: ``None`` (uniform for all
        columns), an ``(n,)`` vector (broadcast), an ``(n, K)`` matrix, or
        a sequence of per-column vectors where individual entries may be
        ``None`` (uniform).  Columns are normalised independently.
    alphas:
        Residual probability, a scalar (broadcast) or one value per column.
    n_queries:
        Batch width when neither ``teleports`` nor ``alphas`` determines it
        (e.g. many uniform-teleport solves at one α).
    tol, max_iter:
        L1 convergence tolerance and iteration budget, applied per column.
    dangling:
        One of ``"teleport"`` (default), ``"uniform"``, ``"self"`` — shared
        by the whole batch; ``"teleport"`` uses each column's own vector.
    warm_start:
        ``None`` (cold start from each column's teleport vector), an
        ``(n,)`` or ``(n, K)`` initial guess, or the string ``"chain"`` to
        solve columns sequentially with column ``k+1`` seeded from column
        ``k``'s solution (for smooth parameter grids).
    precision:
        ``"double"`` (default) iterates entirely in float64 and matches
        :func:`~repro.linalg.solvers.power_iteration` column-by-column to
        1e-12.  ``"mixed"`` runs the bulk of the sweeps in float32 —
        halving the matrix stream and the dense-block traffic — then
        polishes each column with float64 sweeps against the
        full-precision matrix until the true L1 residual is below
        ``tol``; results stay within tolerance-level distance of the
        double-precision answer, at a large throughput gain on big graphs
        (``BENCH_core.json``).
    raise_on_failure:
        Raise :class:`ConvergenceError` if any column fails to converge.
    operator:
        Pre-built :class:`~repro.linalg.operator.LinearOperatorBundle` of
        ``transition``; when omitted the memoised bundle of the matrix
        object is used (shared with the single-query solvers), so the
        canonical CSR — and the float32 copy in mixed mode — is derived
        once per matrix, not per call.

    Returns
    -------
    BatchResult
    """
    bundle = LinearOperatorBundle.resolve(transition, operator)
    mat = bundle.mat
    n = bundle.n
    if dangling not in DANGLING_STRATEGIES:
        raise ParameterError(
            f"unknown dangling strategy {dangling!r}; "
            f"expected one of {DANGLING_STRATEGIES}"
        )
    if n_queries is not None and n_queries < 1:
        raise ParameterError(f"n_queries must be >= 1, got {n_queries}")

    # Infer the batch width K from whichever argument pins it: an explicit
    # n_queries, a 2-D / per-column teleports spec, or a vector of alphas.
    if teleports is not None and not isinstance(teleports, np.ndarray):
        teleports = list(teleports)
    t_width: int | None = None
    if isinstance(teleports, np.ndarray) and teleports.ndim == 2:
        t_width = teleports.shape[1]
    elif isinstance(teleports, list):
        t_width = len(teleports)
    alpha_arr = np.atleast_1d(np.asarray(alphas, dtype=np.float64))
    a_width = alpha_arr.shape[0] if alpha_arr.shape[0] > 1 else None
    k = n_queries or t_width or a_width or 1
    if t_width is not None and t_width != k:
        raise ParameterError(
            f"teleports imply batch width {t_width}, but the batch is {k} wide"
        )
    teleport_block = _teleport_block(teleports, n, k)
    alphas_vec = _alpha_vector(alphas, k)

    if precision not in ("double", "mixed"):
        raise ParameterError(
            f"precision must be 'double' or 'mixed', got {precision!r}"
        )
    dangle_idx = bundle.dangle_idx
    # P.T as a free CSC view: scipy multiplies CSC·dense directly, so the
    # batch never pays a CSR transpose conversion (the per-call cost the
    # sequential solvers now amortise through the same operator bundle).
    mat_t = bundle.t_csc

    chain = isinstance(warm_start, str)
    if chain and warm_start != "chain":
        raise ParameterError(
            f"warm_start must be None, an array or 'chain', got {warm_start!r}"
        )

    family = (
        not chain
        and warm_start is None
        and k >= 2
        and bool((teleport_block == teleport_block[:, :1]).all())
    )
    # The float32 matrix copy only pays for the block path with a tight
    # enough tolerance; the family path is single-matvec-dominated and a
    # loose tolerance converges before the float32 phase would hand off,
    # so both run in float64 throughout (and are labelled accordingly).
    use_mixed = (
        precision == "mixed" and not family and tol < _MIXED_SWITCH_TOL
    )
    mat_t32 = bundle.mat_f32.T if use_mixed else None
    if family:
        # Every column shares its teleport (an α grid): one shared power
        # sequence reconstructs all columns at single-matvec cost.
        scores, iterations, converged, residuals = _alpha_family(
            mat_t,
            dangle_idx,
            dangling,
            np.ascontiguousarray(teleport_block[:, 0]),
            alphas_vec,
            tol,
            max_iter,
        )
    elif chain:
        # Sequential cascade: column k+1 starts from column k's solution.
        scores = np.empty((n, k))
        iterations = np.zeros(k, dtype=np.int64)
        converged = np.zeros(k, dtype=bool)
        residuals: list[list[float]] = []
        prev: np.ndarray | None = None
        for j in range(k):
            x0 = (
                teleport_block[:, j : j + 1].copy()
                if prev is None
                else prev[:, None].copy()
            )
            col_scores, col_iter, col_conv, col_res = _iterate_block(
                mat_t,
                mat_t32,
                dangle_idx,
                dangling,
                teleport_block[:, j : j + 1],
                alphas_vec[j : j + 1],
                x0,
                tol,
                max_iter,
            )
            scores[:, j] = col_scores[:, 0]
            iterations[j] = col_iter[0]
            converged[j] = col_conv[0]
            residuals.append(col_res[0])
            prev = col_scores[:, 0]
    else:
        x0 = _initial_block(warm_start, teleport_block)
        scores, iterations, converged, residuals = _iterate_block(
            mat_t,
            mat_t32,
            dangle_idx,
            dangling,
            teleport_block,
            alphas_vec,
            x0,
            tol,
            max_iter,
        )

    if raise_on_failure and not converged.all():
        failed = np.flatnonzero(~converged)
        worst = max(residuals[int(j)][-1] for j in failed)
        raise ConvergenceError(
            f"{failed.size} of {k} batched systems did not reach tol={tol} "
            f"within {max_iter} iterations (worst residual={worst:.3e})",
            iterations=int(iterations.max()),
            residual=float(worst),
        )
    method = "power_iteration_batch"
    if chain:
        method += "_chain"
    if family:
        method += "_family"
    elif use_mixed:
        method += "_mixed"
    finals = [r[-1] for r in residuals if r]
    record_solver(
        method,
        columns=int(k),
        iterations=int(iterations.max(initial=0)),
        residual=float(max(finals)) if finals else None,
        converged=bool(converged.all()),
        converged_columns=int(converged.sum()),
    )
    return BatchResult(
        scores=scores,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
        method=method,
    )
