"""Stationary-distribution solvers for PageRank-style systems.

All solvers compute the fixed point of

.. math::

    \\vec r = \\alpha T \\vec r + (1 - \\alpha) \\vec t

where ``T`` is column-stochastic.  Internally the library stores the
row-stochastic transpose ``P`` (``T = P.T``), so the iteration multiplies by
``P.T``.

Three interchangeable solvers are provided; they agree on the fixed point
(cross-checked by the test-suite and ``bench_ablation_solvers``):

* :func:`power_iteration` — the production path: O(nnz) per sweep, handles
  dangling nodes without densifying, tracks residual history.
* :func:`gauss_seidel` — in-place sweeps on the linear system
  ``(I − αT) r = (1−α) t``; each sweep is Python-loop bound, so it is kept
  as an independent verification path for small graphs.
* :func:`direct_solve` — sparse LU on the same linear system; exact up to
  round-off, cubic-ish memory growth, small graphs only.

Dangling nodes
--------------
Rows of ``P`` with no out-edges would leak probability mass.  The standard
fix (and our default, ``dangling="teleport"``) redistributes the dangling
mass through the teleportation vector every step.  ``dangling="uniform"``
spreads it evenly over all nodes and ``dangling="self"`` keeps the surfer in
place; both alternatives exist for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.errors import ConvergenceError, ParameterError
from repro.linalg.operator import (
    DANGLING_STRATEGIES,
    LinearOperatorBundle,
    patch_dangling,
)

__all__ = [
    "PageRankResult",
    "power_iteration",
    "extrapolated_power_iteration",
    "gauss_seidel",
    "direct_solve",
    "patch_dangling",
    "validate_stochastic_rows",
    "DANGLING_STRATEGIES",
]


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of a stationary-distribution computation.

    Attributes
    ----------
    scores:
        The stationary probability vector (sums to 1).
    iterations:
        Number of sweeps performed (0 for the direct solver).
    converged:
        Whether the residual dropped below tolerance.
    residuals:
        L1 residual after each sweep (empty for the direct solver).
    method:
        Name of the solver that produced the result.
    """

    scores: np.ndarray
    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)
    method: str = "power_iteration"

    @property
    def final_residual(self) -> float:
        """Last recorded residual, or 0.0 when none were recorded."""
        return self.residuals[-1] if self.residuals else 0.0

    def ranking(self) -> np.ndarray:
        """Node indices sorted by decreasing score (ties by index)."""
        # numpy's stable mergesort keeps index order within equal scores.
        return np.argsort(-self.scores, kind="stable")


def _validate_common(
    transition: sparse.spmatrix | None,
    alpha: float,
    teleport: np.ndarray | None,
    operator: LinearOperatorBundle | None = None,
) -> tuple[LinearOperatorBundle, np.ndarray]:
    """Resolve the cached operator bundle and the normalised teleport.

    ``operator`` short-circuits matrix canonicalisation entirely; otherwise
    the bundle is looked up on (or attached to) ``transition`` via
    :meth:`LinearOperatorBundle.of`, so repeated solves against the same
    matrix object — what the graph matrix cache hands out — share one
    bundle and never re-derive transpose/dangling views.
    """
    bundle = LinearOperatorBundle.resolve(transition, operator)
    n = bundle.n
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    if teleport is None:
        t = np.full(n, 1.0 / n)
    else:
        t = np.asarray(teleport, dtype=np.float64)
        if t.shape != (n,):
            raise ParameterError(
                f"teleport must have shape ({n},), got {t.shape}"
            )
        if (t < 0).any():
            raise ParameterError("teleport entries must be non-negative")
        total = t.sum()
        if total <= 0.0:
            raise ParameterError("teleport vector must have positive mass")
        t = t / total
    return bundle, t


def _normalise_x0(x0: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Validate and unit-normalise a warm-start iterate (shared by solvers)."""
    x = np.asarray(x0, dtype=np.float64)
    if x.shape != t.shape:
        raise ParameterError(f"x0 must have shape {t.shape}, got {x.shape}")
    total = x.sum()
    if not total > 0.0 or (x < 0).any():
        raise ParameterError(
            "x0 must be a non-negative vector with positive mass"
        )
    return x / total


def validate_stochastic_rows(
    transition: sparse.spmatrix, *, atol: float = 1e-9
) -> None:
    """Raise :class:`ParameterError` unless each row sums to 1 or 0.

    Rows summing to 0 are dangling nodes, which the solvers handle; any
    other row sum means the caller built a broken transition matrix.
    """
    mat = sparse.csr_matrix(transition)
    sums = np.asarray(mat.sum(axis=1)).ravel()
    bad = ~(np.isclose(sums, 1.0, atol=atol) | np.isclose(sums, 0.0, atol=atol))
    if bad.any():
        first = int(np.flatnonzero(bad)[0])
        raise ParameterError(
            f"row {first} of transition sums to {sums[first]!r}; "
            "expected 1.0 (stochastic) or 0.0 (dangling)"
        )


def power_iteration(
    transition: sparse.spmatrix | None,
    *,
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    dangling: str = "teleport",
    raise_on_failure: bool = False,
    operator: LinearOperatorBundle | None = None,
    x0: np.ndarray | None = None,
) -> PageRankResult:
    """Solve ``r = α·P.T·r + (1−α)·t`` by power iteration.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` (``P[i, j]`` = probability i→j).
    alpha:
        Residual probability (the paper's α; ``1 − α`` is the teleportation
        probability).
    teleport:
        Teleportation distribution ``t``; defaults to uniform.  Normalised
        automatically.
    tol:
        L1 convergence tolerance between successive iterates.
    max_iter:
        Iteration budget.
    dangling:
        One of ``"teleport"`` (default), ``"uniform"``, ``"self"``.
    raise_on_failure:
        When ``True``, raise :class:`ConvergenceError` instead of returning
        a result flagged ``converged=False``.
    operator:
        Pre-built :class:`~repro.linalg.operator.LinearOperatorBundle` of
        ``transition``; when omitted the memoised bundle of the matrix
        object is used, so repeated calls against a cached matrix never
        re-derive the ``P.T`` CSR conversion or the dangling mask.  The
        memoisation assumes ``transition`` is never mutated *in place*
        between calls (the contract of every cached matrix in this
        library); build a fresh matrix instead of editing ``.data``.
    x0:
        Optional warm-start iterate (normalised automatically); defaults
        to the teleport vector.  A warm-started solve converges to the
        same fixed point but stops at the first iterate within ``tol``.

    Returns
    -------
    PageRankResult
    """
    bundle, t = _validate_common(transition, alpha, teleport, operator)
    dangle_mask = bundle.dangle_mask
    has_dangling = bundle.has_dangling
    dangle_target = bundle.dangling_target(dangling, t)

    mat_t = bundle.t_csr  # we repeatedly need P.T @ x
    x = t.copy() if x0 is None else _normalise_x0(x0, t)
    residuals: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        spread = mat_t @ x
        if has_dangling:
            mass = float(x[dangle_mask].sum())
            if mass > 0.0:
                if dangle_target is None:  # "self": mass stays in place
                    spread = spread + np.where(dangle_mask, x, 0.0)
                else:
                    spread = spread + mass * dangle_target
        x_new = alpha * spread + (1.0 - alpha) * t
        # Normalise to kill accumulated round-off drift.
        x_new /= x_new.sum()
        residual = float(np.abs(x_new - x).sum())
        residuals.append(residual)
        x = x_new
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"power iteration did not reach tol={tol} "
            f"within {max_iter} iterations (residual={residuals[-1]:.3e})",
            iterations=iterations,
            residual=residuals[-1],
        )
    return PageRankResult(
        scores=x,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
        method="power_iteration",
    )


def extrapolated_power_iteration(
    transition: sparse.spmatrix | None,
    *,
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
    dangling: str = "teleport",
    extrapolate_every: int = 10,
    raise_on_failure: bool = False,
    operator: LinearOperatorBundle | None = None,
) -> PageRankResult:
    """Power iteration with periodic Aitken Δ² extrapolation.

    Every ``extrapolate_every`` sweeps the last three iterates are combined
    component-wise via Aitken's Δ² formula, which cancels the dominant
    geometric error term (ratio ≈ α).  Component-wise Aitken is known to
    be erratic, so each accelerated guess is *trial-evaluated*: one power
    step is applied and the guess is accepted only when its residual beats
    the current one (costing one extra matvec per attempt).  The solver
    therefore never converges slower than plain power iteration by more
    than the trial overhead, and wins on slow-mixing graphs at large α
    (``bench_ablation_extrapolation`` measures both regimes).
    """
    if extrapolate_every < 3:
        raise ParameterError(
            f"extrapolate_every must be >= 3, got {extrapolate_every}"
        )
    bundle, t = _validate_common(transition, alpha, teleport, operator)
    dangle_mask = bundle.dangle_mask
    has_dangling = bundle.has_dangling
    dangle_target = bundle.dangling_target(dangling, t)

    mat_t = bundle.t_csr

    def step(vec: np.ndarray) -> np.ndarray:
        spread = mat_t @ vec
        if has_dangling:
            mass = float(vec[dangle_mask].sum())
            if mass > 0.0:
                if dangle_target is None:
                    spread = spread + np.where(dangle_mask, vec, 0.0)
                else:
                    spread = spread + mass * dangle_target
        out = alpha * spread + (1.0 - alpha) * t
        return out / out.sum()

    x = t.copy()
    history: list[np.ndarray] = [x]
    residuals: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        x_new = step(x)
        residual = float(np.abs(x_new - x).sum())
        residuals.append(residual)
        x = x_new
        history.append(x)
        if len(history) > 3:
            history.pop(0)
        if residual < tol:
            converged = True
            break
        if iterations % extrapolate_every == 0 and len(history) == 3:
            x0, x1, x2 = history
            d1 = x1 - x0
            d2 = x2 - 2.0 * x1 + x0
            # Component-wise Aitken; guard divisions by ~0 curvature.
            safe = np.abs(d2) > 1e-300
            accel = x2.copy()
            accel[safe] = x0[safe] - d1[safe] * d1[safe] / d2[safe]
            if np.isfinite(accel).all() and (accel > 0).all():
                accel_sum = accel.sum()
                if accel_sum > 0:
                    accel /= accel_sum
                    # Trial step: accept only if it beats the current
                    # residual (keeps the erratic Aitken guess safe).
                    trial = step(accel)
                    trial_residual = float(np.abs(trial - accel).sum())
                    if trial_residual < residual:
                        x = trial
                        residuals.append(trial_residual)
                        history = [x]
                        if trial_residual < tol:
                            converged = True
                            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"extrapolated power iteration did not reach tol={tol} "
            f"within {max_iter} iterations",
            iterations=iterations,
            residual=residuals[-1],
        )
    return PageRankResult(
        scores=x,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
        method="extrapolated_power_iteration",
    )


def gauss_seidel(
    transition: sparse.spmatrix | None,
    *,
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 200,
    dangling: str = "teleport",
    raise_on_failure: bool = False,
    operator: LinearOperatorBundle | None = None,
    x0: np.ndarray | None = None,
) -> PageRankResult:
    """Solve ``(I − α·P.T) r = (1−α) t`` with forward Gauss–Seidel sweeps.

    Dangling rows of ``P`` are patched first (see :func:`patch_dangling`).
    Each sweep updates ``r[j]`` in place using the freshest values.  Sweeps
    are Python-loop bound, so this solver exists as an independent
    verification path for small/medium graphs, not as the production path.
    ``x0`` optionally warm-starts the sweeps (normalised automatically);
    the fixed point is unchanged.
    """
    bundle, t = _validate_common(transition, alpha, teleport, operator)
    n = bundle.n
    # Row j of the system matrix involves column j of P: iterate on the
    # bundle's memoised patched-CSC view (dangling rows densified once per
    # (strategy, teleport) instead of per call).
    csc = bundle.patched_csc(dangling, t)
    x = t.copy() if x0 is None else _normalise_x0(x0, t)
    b = (1.0 - alpha) * t
    residuals: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        delta = 0.0
        for j in range(n):
            start, end = csc.indptr[j], csc.indptr[j + 1]
            rows = csc.indices[start:end]
            vals = csc.data[start:end]
            acc = 0.0
            diag = 0.0
            for r_idx, v in zip(rows, vals):
                if r_idx == j:
                    diag = v
                else:
                    acc += v * x[r_idx]
            new_val = (b[j] + alpha * acc) / (1.0 - alpha * diag)
            delta += abs(new_val - x[j])
            x[j] = new_val
        residuals.append(delta)
        if delta < tol:
            converged = True
            break

    x = x / x.sum()
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"Gauss-Seidel did not reach tol={tol} within {max_iter} sweeps",
            iterations=iterations,
            residual=residuals[-1],
        )
    return PageRankResult(
        scores=x,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
        method="gauss_seidel",
    )


def direct_solve(
    transition: sparse.spmatrix | None,
    *,
    alpha: float = 0.85,
    teleport: np.ndarray | None = None,
    dangling: str = "teleport",
    operator: LinearOperatorBundle | None = None,
) -> PageRankResult:
    """Solve ``(I − α·P.T) r = (1−α) t`` with a sparse LU factorisation.

    Exact (up to round-off); memory-hungry on large graphs because of fill-in
    during factorisation.  Used as the ground-truth oracle in tests and the
    solver ablation.
    """
    bundle, t = _validate_common(transition, alpha, teleport, operator)
    n = bundle.n
    # The patched matrix comes from the bundle's memo; its transpose is the
    # free CSC view of the patched CSR, so no conversion happens per call.
    patched = bundle.patched(dangling, t)
    system = sparse.identity(n, format="csc") - alpha * patched.T
    rhs = (1.0 - alpha) * t
    x = sparse_linalg.spsolve(system, rhs)
    x = np.asarray(x, dtype=np.float64)
    x = x / x.sum()
    return PageRankResult(
        scores=x,
        iterations=0,
        converged=True,
        residuals=[],
        method="direct_solve",
    )
