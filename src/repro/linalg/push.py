"""Gauss–Southwell forward push: localized single-seed PageRank/D2PR.

Power iteration touches every stored nonzero of the transition on every
sweep, regardless of where the probability mass actually lives.  For a
*personalised* query — teleport concentrated on one seed (or a handful) —
most of the stationary mass sits within a few hops of the seeds, clustered
around high-degree nodes (exactly the localisation regime the PageRank
tail literature describes, cf. Volkovich et al.), so the full matrix
stream is mostly wasted work.

:func:`forward_push` solves the same fixed point

.. math::

    \\vec r = \\alpha P^T \\vec r + (1 - \\alpha) \\vec t

by *residual propagation* instead: maintain a settled estimate ``q`` and a
residual vector ``res`` with the invariant ``r = q + solve(res)``.
Initially ``q = 0, res = t``; *pushing* a node ``u`` settles
``(1−α)·res[u]`` into ``q[u]`` and forwards ``α·res[u]`` along ``u``'s
out-edges (row ``u`` of ``P`` — the push direction needs **no transpose at
all**).  Because ``solve`` preserves L1 mass, the total remaining residual
``Σ res`` *is* the exact L1 distance to the true solution — a built-in
certificate: the solver stops when ``Σ res ≤ tol``.

This implementation pushes **epoch-wise and vectorised** (a batched
Gauss–Southwell): each epoch selects every node whose residual exceeds an
adaptive threshold (a fraction of the mean active residual) and propagates
them with one restricted sparse·dense product over just those rows.  The
mass argument guarantees each epoch shrinks ``Σ res`` by at least
``(1−c)(1−α)`` relative (``c`` the threshold fraction), so epochs are
bounded by the same α-rate as power iteration while touching only the hot
frontier instead of all ``nnz`` — the win grows with graph size for
localized queries (``tools/bench_perf.py``, ``single_query``).

When the premise fails — the frontier stops being sparse (uniform-ish
teleports, very small α, ``dangling="uniform"`` spraying mass everywhere)
— the solver *falls back* to :func:`~repro.linalg.solvers.power_iteration`
through the same cached operator bundle, warm-started from ``q + res``, so
callers always get a correctly-converged result.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import replace

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, ParameterError
from repro.linalg.operator import DANGLING_STRATEGIES, LinearOperatorBundle
from repro.linalg.solvers import PageRankResult, power_iteration
from repro.telemetry.trace import record_result

__all__ = ["forward_push"]

#: Fraction of the mean active residual used as the per-epoch push
#: threshold.  Mass below the threshold is < c·Σres, so every epoch pushes
#: at least (1−c) of the residual mass and Σres contracts by a factor of at
#: most α + c·(1−α) — α-rate epochs with a sparse frontier.
_THETA_FRACTION = 0.25


def _seed_arrays(
    seeds: "int | np.ndarray | Mapping[int, float] | Sequence[int] | tuple",
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalise a seed spec into ``(indices, weights)`` with Σweights = 1.

    Accepts a single index, a sequence of indices (equal weights,
    duplicates accumulate), a ``{index: weight}`` mapping, an
    ``(indices, weights)`` pair of arrays, or a dense ``(n,)`` teleport
    vector (sparsified on its nonzero support).
    """
    def as_index_array(values) -> np.ndarray:
        arr = np.asarray(values)
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            raise ParameterError(
                "seed indices must have integer dtype, "
                f"got {arr.dtype}"
            )
        return arr.astype(np.int64).ravel()

    if isinstance(seeds, (int, np.integer)):
        idx = np.array([int(seeds)], dtype=np.int64)
        w = np.array([1.0])
    elif isinstance(seeds, Mapping):
        idx = as_index_array(list(seeds.keys()))
        w = np.fromiter(
            (float(v) for v in seeds.values()), dtype=np.float64,
            count=len(seeds),
        )
    elif (
        isinstance(seeds, tuple)
        and len(seeds) == 2
        and (np.ndim(seeds[0]) > 0 or np.ndim(seeds[1]) > 0)
    ):
        # An explicit (indices, weights) pair; a plain tuple of scalar
        # indices like (3, 5) falls through to the sequence branch.
        idx = as_index_array(seeds[0])
        w = np.asarray(seeds[1], dtype=np.float64).ravel()
        if idx.shape != w.shape:
            raise ParameterError(
                "seed (indices, weights) arrays must have equal length, "
                f"got {idx.shape} and {w.shape}"
            )
    else:
        arr = np.asarray(seeds)
        if arr.ndim == 1 and arr.shape == (n,):
            if np.issubdtype(arr.dtype, np.integer):
                # Could be n seed indices or an integer one-hot teleport —
                # guessing silently produces wrong scores, so refuse.
                raise ParameterError(
                    f"a length-{n} integer seed array is ambiguous on a "
                    f"{n}-node graph: pass a float teleport vector, an "
                    "(indices, weights) pair, or a {index: weight} mapping"
                )
            # A dense teleport vector: push on its support.
            idx = np.flatnonzero(arr)
            w = np.asarray(arr, dtype=np.float64)[idx]
        else:
            if arr.size and not np.issubdtype(arr.dtype, np.integer):
                # Catches wrong-length dense teleports (and float "index"
                # lists) instead of silently truncating them to indices.
                raise ParameterError(
                    "seed index arrays must have integer dtype; a dense "
                    f"teleport vector must have length {n}, got a "
                    f"{arr.dtype} array of shape {arr.shape}"
                )
            idx = arr.astype(np.int64).ravel()
            w = np.ones(idx.shape[0])
    if idx.size == 0:
        raise ParameterError("at least one seed node is required")
    if (idx < 0).any() or (idx >= n).any():
        bad = int(idx[(idx < 0) | (idx >= n)][0])
        raise ParameterError(f"seed index {bad} out of range for n={n}")
    if (w < 0).any():
        raise ParameterError("seed weights must be non-negative")
    # Accumulate duplicates, then drop zero-weight seeds.
    dense_w = np.bincount(idx, weights=w, minlength=n)
    idx = np.flatnonzero(dense_w)
    w = dense_w[idx]
    total = w.sum()
    if total <= 0.0:
        raise ParameterError("seed weights must have positive total mass")
    return idx, w / total


def _fallback(
    bundle: LinearOperatorBundle,
    teleport: np.ndarray,
    q: np.ndarray,
    res: np.ndarray,
    *,
    alpha: float,
    tol: float,
    max_iter: int,
    dangling: str,
    raise_on_failure: bool,
    epochs: int,
    history: list[float],
    cause: str,
) -> PageRankResult:
    """Finish with power iteration (same bundle), warm-started from q+res."""
    guess = q + res
    x0 = guess if guess.sum() > 0.0 else None
    result = power_iteration(
        None,
        alpha=alpha,
        teleport=teleport,
        tol=tol,
        max_iter=max_iter,
        dangling=dangling,
        raise_on_failure=raise_on_failure,
        operator=bundle,
        x0=x0,
    )
    return record_result(
        replace(
            result,
            iterations=epochs + result.iterations,
            residuals=history + result.residuals,
            method="forward_push_fallback",
        ),
        fallback=cause,
        push_epochs=epochs,
    )


def forward_push(
    transition: sparse.spmatrix | None,
    seeds,
    *,
    alpha: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 1000,
    dangling: str = "teleport",
    frontier_cap: float = 0.2,
    operator: LinearOperatorBundle | None = None,
    raise_on_failure: bool = False,
) -> PageRankResult:
    """Personalised PageRank/D2PR via vectorised Gauss–Southwell push.

    Parameters
    ----------
    transition:
        Row-stochastic matrix ``P`` (may be ``None`` when ``operator`` is
        given).
    seeds:
        Teleport support: a node index, a sequence of indices, a
        ``{index: weight}`` mapping, an ``(indices, weights)`` pair, or a
        dense ``(n,)`` teleport vector (sparsified).  The normalised seed
        distribution is both the teleport vector and — under the default
        ``dangling="teleport"`` — the dangling redistribution target.
    alpha:
        Residual probability.
    tol:
        L1 accuracy: on convergence the *unnormalised* estimate is within
        ``tol`` of the true solution in L1 (the remaining residual mass is
        the exact error — a certificate, not a heuristic); the returned
        scores are renormalised to sum to 1, adding at most ~``tol``
        relative distortion.
    max_iter:
        Epoch budget (one epoch = one batched push of the active frontier).
    dangling:
        ``"teleport"`` (default) and ``"self"`` stay sparse and are handled
        natively (``"self"`` in closed form: a self-looping dangling node's
        residual settles entirely into its own score).  ``"uniform"``
        sprays dangling mass over all nodes, which destroys frontier
        sparsity, so graphs with dangling rows fall back to power
        iteration under it.
    frontier_cap:
        Fraction of ``n`` the active frontier may reach before the solver
        concludes the query is not localized and falls back to
        warm-started power iteration.  ``0`` forces the fallback
        immediately (useful for testing).
    operator:
        Pre-built :class:`~repro.linalg.operator.LinearOperatorBundle`;
        when omitted the memoised bundle of ``transition`` is used.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning an
        unconverged result.

    Returns
    -------
    PageRankResult
        ``method`` is ``"forward_push"`` (native convergence) or
        ``"forward_push_fallback"`` (finished by power iteration);
        ``iterations`` counts epochs (plus fallback sweeps),
        ``residuals`` the per-epoch remaining residual mass.
    """
    bundle = LinearOperatorBundle.resolve(transition, operator)
    n = bundle.n
    if not 0.0 <= alpha < 1.0:
        raise ParameterError(f"alpha must be in [0, 1), got {alpha}")
    if dangling not in DANGLING_STRATEGIES:
        raise ParameterError(
            f"unknown dangling strategy {dangling!r}; "
            f"expected one of {DANGLING_STRATEGIES}"
        )
    if not 0.0 <= frontier_cap <= 1.0:
        raise ParameterError(
            f"frontier_cap must be in [0, 1], got {frontier_cap}"
        )
    seed_idx, seed_w = _seed_arrays(seeds, n)

    teleport = np.zeros(n)
    teleport[seed_idx] = seed_w

    mat = bundle.mat
    dangle_mask = bundle.dangle_mask
    q = np.zeros(n)
    res = teleport.copy()
    sum_res = 1.0
    history: list[float] = []
    frontier_limit = frontier_cap * n

    if dangling == "uniform" and bundle.has_dangling:
        # Dangling mass sprayed uniformly densifies the residual in one
        # step: push has no advantage, go straight to the solver it would
        # fall back to anyway.
        return _fallback(
            bundle, teleport, q, res,
            alpha=alpha, tol=tol, max_iter=max_iter, dangling=dangling,
            raise_on_failure=raise_on_failure, epochs=0, history=history,
            cause="uniform_dangling",
        )

    epochs = 0
    converged = False
    frontier_peak = 0
    while epochs < max_iter:
        # Adaptive Gauss–Southwell threshold: push everything holding at
        # least _THETA_FRACTION of the mean active residual.  The mean is
        # ≤ the max, so the active set is never empty while mass remains.
        nnz = np.count_nonzero(res)
        if nnz == 0:
            converged = True
            break
        theta = _THETA_FRACTION * sum_res / nnz
        active = np.flatnonzero(res >= theta)
        if active.size > frontier_limit:
            return _fallback(
                bundle, teleport, q, res,
                alpha=alpha, tol=tol, max_iter=max_iter - epochs,
                dangling=dangling, raise_on_failure=raise_on_failure,
                epochs=epochs, history=history, cause="frontier_cap",
            )
        if active.size > frontier_peak:
            frontier_peak = int(active.size)
        epochs += 1

        if dangling == "self":
            # Closed form: a dangling node keeps its walk mass in place,
            # so its residual settles geometrically into its own score —
            # Σ_k (1−α)α^k · res = res.  Settle it in one step.
            self_d = active[dangle_mask[active]]
            if self_d.size:
                q[self_d] += res[self_d]
                res[self_d] = 0.0
                active = active[~dangle_mask[active]]
                if active.size == 0:
                    sum_res = float(res.sum())
                    history.append(sum_res)
                    if sum_res <= tol:
                        converged = True
                        break
                    continue

        r_act = res[active].copy()
        res[active] = 0.0
        q[active] += (1.0 - alpha) * r_act
        # One restricted sparse·dense product over just the active rows:
        # res += α · Σ_u r_u · P[u, :].
        sub = mat[active]
        res += alpha * (sub.T @ r_act)
        if dangling == "teleport":
            d_mass = float(r_act[dangle_mask[active]].sum())
            if d_mass > 0.0:
                res[seed_idx] += alpha * d_mass * seed_w
        sum_res = float(res.sum())
        history.append(sum_res)
        if sum_res <= tol:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"forward push did not reach tol={tol} within {max_iter} "
            f"epochs (remaining residual mass={sum_res:.3e})",
            iterations=epochs,
            residual=sum_res,
        )
    total = q.sum()
    scores = q / total if total > 0.0 else teleport.copy()
    return record_result(
        PageRankResult(
            scores=scores,
            iterations=epochs,
            converged=converged,
            residuals=history,
            method="forward_push",
        ),
        frontier_peak=frontier_peak,
    )
