#!/usr/bin/env python
"""Trust and product-quality analysis on the Epinions-style graphs.

The paper's most striking finding lives here: on the product-product
graph, conventional PageRank is *negatively* correlated with product
quality — heavily-commented products attract pile-ons and low ratings —
so a recommender that ranks products by vanilla PageRank actively
promotes the wrong products.  Degree penalisation (p > 0) flips the
correlation positive and, uniquely for this graph, over-penalisation
never hurts (Figure 2c).

Also demonstrates the held-out tuning protocol from ``repro.recsys``:
``p`` is selected on half the catalogue and evaluated on the other half.

Run with::

    python examples/trust_analysis.py
"""

from __future__ import annotations

from repro import pagerank, spearman
from repro.datasets import load
from repro.recsys import holdout_tune

SCALE = 0.5


def negative_correlation_demo() -> None:
    dg = load("epinions/product-product", scale=SCALE)
    sig = dg.significance_vector()
    conventional = pagerank(dg.graph)
    corr = spearman(conventional.values, sig)
    print("--- The conventional-PageRank failure mode (Figure 2c) ---")
    print(f"    graph: {dg.name}, significance: {dg.significance_label}")
    print(f"    Spearman(PageRank, avg rating) = {corr:+.4f}  (negative!)")

    ranking = conventional.ranking()
    print("    top-5 products by conventional PageRank (their ratings):")
    for node in ranking[:5]:
        print(f"      {node}: rating {dg.graph.node_attr(node, 'significance'):.2f}")
    print("    bottom-5 products by conventional PageRank (their ratings):")
    for node in ranking[-5:]:
        print(f"      {node}: rating {dg.graph.node_attr(node, 'significance'):.2f}")
    print()


def holdout_demo(name: str) -> None:
    dg = load(name, scale=SCALE)
    result = holdout_tune(dg, train_fraction=0.5, seed=7)
    print(f"--- Held-out tuning on {name} ---")
    print(f"    selected p on training half: {result.best_p:+.1f}")
    print(
        f"    held-out Spearman: tuned D2PR {result.test_spearman_best:+.4f} "
        f"vs conventional {result.test_spearman_conventional:+.4f} "
        f"(gain {result.improvement:+.4f})"
    )
    print()


def main() -> None:
    print("Trust and product-quality analysis with D2PR\n")
    negative_correlation_demo()
    holdout_demo("epinions/product-product")
    holdout_demo("epinions/commenter-commenter")
    print(
        "Takeaway: when edge acquisition is cheap and noisy (comment\n"
        "pile-ons), degree is a negative quality signal; D2PR turns that\n"
        "knowledge into a one-parameter fix."
    )


if __name__ == "__main__":
    main()
