#!/usr/bin/env python
"""Quickstart: degree de-coupled PageRank in five minutes.

Builds the paper's Figure 1 example graph, shows how the de-coupling
weight ``p`` reshapes transition probabilities and rankings, and verifies
the desideratum of §3.1 numerically.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Graph,
    RankingService,
    d2pr,
    pagerank,
    transition_probabilities,
)
from repro.graph import GraphDelta, barabasi_albert


def main() -> None:
    # The paper's Figure 1 graph: A is connected to B (degree 2),
    # C (degree 3) and D (degree 1).
    graph = Graph.from_edges(
        [("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("C", "E"), ("C", "F")]
    )

    print("=== Transition probabilities from A (paper Figure 1) ===")
    for p in (0.0, 2.0, -2.0):
        probs = transition_probabilities(graph, "A", p)
        formatted = ", ".join(
            f"A->{dest}: {probs[dest]:.2f}" for dest in ("B", "C", "D")
        )
        print(f"  p = {p:+.0f}:  {formatted}")

    print()
    print("=== The desideratum of §3.1 ===")
    cases = [
        (-60.0, "p << -1: all mass to the highest-degree neighbour (C)"),
        (-1.0, "p = -1: proportional to neighbour degrees"),
        (0.0, "p =  0: conventional PageRank (uniform)"),
        (1.0, "p = +1: inversely proportional to degrees"),
        (60.0, "p >> +1: all mass to the lowest-degree neighbour (D)"),
    ]
    for p, label in cases:
        probs = transition_probabilities(graph, "A", p)
        spread = " ".join(f"{probs[d]:.3f}" for d in ("B", "C", "D"))
        print(f"  {label}\n      (B C D) = {spread}")

    print()
    print("=== Full rankings as p varies ===")
    conventional = pagerank(graph)
    print(f"  conventional PageRank: {conventional.ranking()}")
    for p in (-2.0, 2.0):
        scores = d2pr(graph, p)
        print(f"  D2PR p = {p:+.0f}:          {scores.ranking()}")

    print()
    print("=== Table 2 phenomenon: rank of a hub as p varies ===")
    social = barabasi_albert(150, 2, seed=1)
    degrees = social.degree_vector()
    hub = social.nodes()[int(np.argmax(degrees))]
    print(
        f"  On a 150-node preferential-attachment graph, the biggest hub "
        f"({hub}, degree {int(degrees.max())}) ranks:"
    )
    for p in (-4.0, -2.0, 0.0, 2.0, 4.0):
        rank = d2pr(social, p).rank_of(hub)
        print(f"    p = {p:+.0f}: rank {rank:3d} of 150")
    print(
        "  p < 0 pulls high-degree nodes to the top; p > 0 pushes them "
        "down — exactly the paper's Table 2."
    )

    print()
    print("=== Serving traffic: RankingService ===")
    service = RankingService(social)
    fresh = service.rank(method="d2pr", p=2.0, seeds=[hub], top_k=3)
    print(f"  personalised query: {fresh.plan.explain()}")
    print(f"  top-3 around the hub: {fresh.topk}")
    repeat = service.rank(method="d2pr", p=2.0, seeds=[hub], top_k=3)
    print(f"  same query again:   strategy={repeat.plan.strategy}")
    leaves = [n for n in social.nodes() if social.degree(n) == 2][:2]
    service.apply_delta(
        GraphDelta.insert(
            np.array([social.index_of(leaves[0])]),
            np.array([social.index_of(leaves[1])]),
        )
    )
    corrected = service.rank(method="d2pr", p=2.0, seeds=[hub], top_k=3)
    print(
        f"  after an edge edit: strategy={corrected.plan.strategy} "
        "(cached answer corrected, not re-solved)"
    )
    stats = service.stats()
    print(
        f"  stats: plan mix {stats['plan_mix']}, "
        f"hit rate {stats['hit_rate']:.2f}"
    )


if __name__ == "__main__":
    main()
