#!/usr/bin/env python
"""Link-farm attacks and the built-in spam resistance of D2PR.

The paper's related work (§2.2) surveys PageRank optimisation: colluding
nodes add edges to inflate a target's rank.  Degree de-coupling has an
inherent defence — every artificial edge raises the target's degree, and
under ``p > 0`` a higher degree *weakens* all transitions into the target.

The example also exercises the directed formulation (§3.2.2) on a
synthetic who-trusts-whom network, where out-degree is a signal of
non-discernment.

Run with::

    python examples/spam_defense.py
"""

from __future__ import annotations

import numpy as np

from repro import d2pr, spearman
from repro.core import rank_boost_from_farm
from repro.datasets import build_trust_network
from repro.graph import barabasi_albert


def farm_attack_demo() -> None:
    print("--- Link-farm attack on a 200-node social graph ---")
    graph = barabasi_albert(200, 2, seed=99)
    baseline = d2pr(graph, 0.0)
    target = baseline.ranking()[100]  # a thoroughly mediocre node
    farm_size = 20
    print(f"    target: {target}, farm size: {farm_size}")
    print("    p      rank before   rank after   boost")
    for p in (-1.0, 0.0, 0.5, 1.0, 2.0):
        attack = rank_boost_from_farm(graph, target, farm_size, p=p)
        print(
            f"    {p:+.1f}   {attack.rank_before:11d}   "
            f"{attack.rank_after:10d}   {attack.boost:+5d}"
        )
    print(
        "    -> under conventional PageRank the farm catapults the target "
        "up the ranking;\n"
        "       with degree penalisation the inflated degree works "
        "against it.\n"
    )


def directed_trust_demo() -> None:
    print("--- Directed trust network (paper §3.2.2) ---")
    graph = build_trust_network(400)
    sig = graph.node_attr_array("significance")
    out_corr = spearman(graph.out_degree_vector(), sig)
    in_corr = spearman(graph.in_degree_vector(), sig)
    print(f"    out-degree vs trustworthiness: {out_corr:+.3f}  (negative!)")
    print(f"    in-degree  vs trustworthiness: {in_corr:+.3f}")
    print("    correlation of D2PR ranks with audited trustworthiness:")
    best = (None, -np.inf)
    for p in (-2.0, -1.0, 0.0, 0.5, 1.0, 2.0):
        corr = spearman(d2pr(graph, p).values, sig)
        marker = ""
        if corr > best[1]:
            best = (p, corr)
        print(f"      p = {p:+.1f}: {corr:+.4f}{marker}")
    print(
        f"    -> best p = {best[0]:+.1f}: penalising users who spray "
        "trust statements\n"
        "       (high out-degree destinations) finds the genuinely "
        "trustworthy ones.\n"
    )


def main() -> None:
    print("Spam resistance and directed degree de-coupling\n")
    farm_attack_demo()
    directed_trust_demo()
    print(
        "Takeaway: the same parameter that matches application semantics\n"
        "also prices in manipulation — inflating your degree only helps\n"
        "while the application rewards high degrees."
    )


if __name__ == "__main__":
    main()
