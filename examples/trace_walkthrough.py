#!/usr/bin/env python
"""Observability walkthrough: tracing a request through the serving stack.

Drives a small traced query stream through a ``ServingFront``, then
walks one request's trace — admission wait, planning decision, the
solve (with the solver's own convergence record) and the cache commit —
and prints the slow-query log plus both exporter outputs.  See
``docs/observability.md`` for the span schema and metric families.

Run with::

    PYTHONPATH=src python examples/trace_walkthrough.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import Graph, RankingService
from repro.serving import RankRequest, ServingFront
from repro.telemetry import parse_prometheus


def _build_graph(n: int = 400, m: int = 4000, seed: int = 9) -> Graph:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, n, m)
    keep = rows != cols
    return Graph.from_arrays(rows[keep], cols[keep], num_nodes=n)


def _show_span(span, depth: int = 0) -> None:
    pad = "  " * depth
    ms = span.duration * 1e3
    print(f"{pad}{span.name}  ({ms:.2f} ms)")
    for key, value in span.annotations.items():
        if key == "solver":
            for record in value:
                print(f"{pad}  solver record: {record}")
        else:
            print(f"{pad}  {key} = {value}")
    for child in span.children:
        _show_span(child, depth + 1)


def main() -> None:
    graph = _build_graph()
    nodes = graph.nodes()
    rng = np.random.default_rng(1)

    # tracing=True samples every request; production deployments would
    # pass tracer=Tracer(sample_every=100) to bound the overhead.
    service = RankingService(graph, tracing=True, trace_capacity=64)
    with ServingFront(service, workers=3, capacity=128) as front:
        stream = [RankRequest(p=0.0, tol=1e-8)]  # one global rank
        stream += [  # and a burst of personalised queries
            RankRequest(p=0.0, seeds=(nodes[int(i)],), tol=1e-6)
            for i in rng.integers(0, len(nodes), 8)
        ]
        for request in stream:
            front.rank(request)
        service.poll()

        print("=== One traced request, span by span ===")
        traced = [
            t
            for t in service.tracer.traces()
            if t.root.find("solve") is not None
        ]
        _show_span(traced[0].root)

        print()
        print("=== Slow query log (threshold 1 ms) ===")
        for trace in service.tracer.slow_query_log(0.001):
            root = trace.root
            print(
                f"  {root.name}: {root.duration * 1e3:.2f} ms, "
                f"spans={[s.name for s in root.walk()]}"
            )

        print()
        print("=== Prometheus export (validated round-trip) ===")
        text = service.telemetry.to_prometheus()
        samples = parse_prometheus(text)
        print(f"  {len(samples)} samples across the stack; a few:")
        for line in text.splitlines():
            if line.startswith(
                ("serving_requests_total", "front_served_total",
                 "coalescer_flushes_total", "admission_admitted_total")
            ):
                print(f"    {line}")

        print()
        print("=== JSON export ===")
        doc = json.loads(service.telemetry.to_json())
        mix = doc["metrics"]["serving_plans_total"]["values"]
        print(f"  format: {doc['format']}")
        print(f"  plan mix: {mix}")
    service.close()


if __name__ == "__main__":
    main()
