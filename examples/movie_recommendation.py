#!/usr/bin/env python
"""Movie and actor recommendation on the IMDB-style data graphs.

Demonstrates the paper's central claim on the two IMDB projections:

* **movie-movie** (Group B) — movie ratings correlate positively with
  connectivity, so conventional PageRank (p = 0) already ranks movies well;
* **actor-actor** (Group A) — the budget effect makes prolific actors
  *less* significant, so moderate degree penalisation (p ≈ +1) produces
  visibly better actor rankings than conventional PageRank.

Run with::

    python examples/movie_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import pagerank, spearman
from repro.datasets import load
from repro.recsys import D2PRRecommender, RecommenderConfig, evaluate_scores

SCALE = 0.5


def show_graph_story(name: str, p_grid: tuple[float, ...]) -> None:
    dg = load(name, scale=SCALE)
    sig = dg.significance_vector()
    print(f"--- {name} (application group {dg.group}) ---")
    print(f"    significance: {dg.significance_label}")
    print(
        f"    {dg.graph.number_of_nodes} nodes, "
        f"{dg.graph.number_of_edges} edges"
    )

    rec = D2PRRecommender(config=RecommenderConfig()).fit(dg.graph)
    best_p, curve = rec.tune_p(sig, p_grid=p_grid)
    print("    correlation of D2PR ranks vs significance:")
    for p in p_grid:
        marker = "  <-- best" if p == best_p else ""
        print(f"      p = {p:+.1f}: {curve[p]:+.4f}{marker}")

    conventional = pagerank(dg.graph)
    print(
        f"    conventional PageRank correlation: "
        f"{spearman(conventional.values, sig):+.4f}"
    )

    tuned = rec.with_p(best_p)
    quality = evaluate_scores(tuned.scores, sig)
    print(
        f"    tuned D2PR (p = {best_p:+.1f}): "
        f"spearman {quality.spearman:+.3f}, "
        f"precision@10 {quality.precision_at_10:.2f}, "
        f"NDCG@10 {quality.ndcg_at_10:.3f}"
    )

    print("    top 5 recommendations (tuned):")
    for node, score in tuned.recommend(k=5):
        significance = dg.graph.node_attr(node, "significance")
        print(f"      {node}: score {score:.5f}, significance {significance:.2f}")
    print()


def main() -> None:
    np.set_printoptions(precision=4)
    print("Degree de-coupled PageRank for movie/actor recommendation\n")
    show_graph_story("imdb/movie-movie", (-2.0, -1.0, 0.0, 1.0, 2.0))
    show_graph_story("imdb/actor-actor", (-1.0, 0.0, 0.5, 1.0, 1.5, 2.0))

    print(
        "Takeaway: the two projections of the same dataset need opposite\n"
        "treatments of node degree — exactly the paper's argument for\n"
        "making the degree contribution a tunable parameter."
    )


if __name__ == "__main__":
    main()
