#!/usr/bin/env python
"""Citation analysis on the DBLP-style data graphs.

The two DBLP projections sit in *different* application groups:

* **author-author** (Group B) — expert authors collaborate widely, so the
  conventional random walk already matches average-citation significance;
* **article-article** (Group C) — visibility compounds through prolific
  co-authors, so *boosting* high-degree transitions (p < 0) tracks
  citation counts best, and the hub-dominated topology makes the p < 0
  region stable (the paper's plateau).

The example also reproduces the α–p interaction of the paper's §4.4: for
Group C graphs, longer walks (larger α) help while p < 0.

Run with::

    python examples/citation_analysis.py
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments import alpha_sweep, correlation_curve
from repro.graph import graph_statistics

SCALE = 0.5
P_GRID = tuple(x / 2 for x in range(-8, 9))  # -4.0 .. 4.0 step 0.5


def describe(name: str) -> None:
    dg = load(name, scale=SCALE)
    stats = graph_statistics(dg.graph, name)
    print(f"--- {name} (group {dg.group}) ---")
    print(
        f"    {stats.nodes} nodes, {stats.edges} edges, "
        f"avg degree {stats.average_degree:.1f}, "
        f"median neighbour-degree spread {stats.median_neighbor_degree_std:.1f}"
    )

    curve = correlation_curve(dg, ps=P_GRID)
    peak_p = curve.peak_p
    print(
        f"    best de-coupling weight: p = {peak_p:+.1f} "
        f"(corr {curve.peak_correlation:+.4f}); "
        f"conventional PageRank: {curve.at(0.0):+.4f}"
    )

    bar_scale = 40
    print("    correlation curve (p from -4 to +4):")
    for p, corr in zip(curve.ps, curve.correlations):
        bar = "#" * int(round(abs(corr) * bar_scale))
        sign = "-" if corr < 0 else "+"
        print(f"      p {p:+.1f}: {sign} {bar}")
    print()


def alpha_interaction(name: str) -> None:
    dg = load(name, scale=SCALE)
    print(f"--- alpha sweep on {name} (paper §4.4) ---")
    curves = alpha_sweep(dg, ps=(-2.0, -1.0, 0.0, 1.0), alphas=(0.5, 0.9))
    print("      p:        -2.0     -1.0      0.0     +1.0")
    for alpha, curve in curves.items():
        row = "  ".join(f"{c:+.4f}" for c in curve.correlations)
        print(f"      alpha={alpha}: {row}")
    low, high = curves[0.5], curves[0.9]
    if high.at(-1.0) > low.at(-1.0):
        print(
            "      -> longer walks (alpha = 0.9) help while degrees are "
            "boosted, as the paper reports for Group C.\n"
        )
    else:
        print("      -> see EXPERIMENTS.md for the measured deviation.\n")


def main() -> None:
    print("Citation analysis with degree de-coupled PageRank\n")
    describe("dblp/author-author")
    describe("dblp/article-article")
    alpha_interaction("dblp/article-article")
    print(
        "Takeaway: same dataset, two projections, two different optimal\n"
        "degree policies — authors need p = 0, articles prefer p < 0."
    )


if __name__ == "__main__":
    main()
