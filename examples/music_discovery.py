#!/usr/bin/env python
"""Music discovery on the Last.fm-style data graphs (weighted variant).

Shows the weighted-graph machinery of the paper's §3.2.3/§4.5: edge
weights (shared listeners / shared friends) can be blended with degree
de-coupling through the ``beta`` parameter, and for these Group C graphs
the best results come from degree *boosting* with low beta — pure
connection strength (beta = 1) is good but not optimal.

Also demonstrates seeded ("more like this artist") recommendations with
personalised D2PR.

Run with::

    python examples/music_discovery.py
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments import beta_sweep
from repro.recsys import D2PRRecommender, RecommenderConfig

SCALE = 0.5


def weighted_story(name: str) -> None:
    dg = load(name, scale=SCALE)
    print(f"--- {name} (weighted; edge weight = {dg.edge_weight_label}) ---")
    curves = beta_sweep(dg, ps=(-2.0, -1.0, 0.0, 1.0), betas=(0.0, 0.5, 1.0))
    print("      p:       -2.0     -1.0      0.0     +1.0")
    best = (None, -2.0)
    for beta, curve in curves.items():
        row = "  ".join(f"{c:+.4f}" for c in curve.correlations)
        print(f"      beta={beta}: {row}")
        if curve.peak_correlation > best[1]:
            best = ((beta, curve.peak_p), curve.peak_correlation)
    (beta, peak_p), corr = best
    print(
        f"      -> best setting: beta = {beta}, p = {peak_p:+.1f} "
        f"(corr {corr:+.4f}); beta = 1 (pure connection strength) "
        "is not the winner.\n"
    )


def discovery_demo() -> None:
    dg = load("lastfm/artist-artist", scale=SCALE)
    rec = D2PRRecommender(
        config=RecommenderConfig(p=-1.0, weighted=True, beta=0.25)
    ).fit(dg.graph)

    print("--- 'More like this' discovery (personalised D2PR) ---")
    top_artist = rec.recommend(k=1)[0][0]
    listens = dg.graph.node_attr(top_artist, "significance")
    print(f"    seed: {top_artist} (listen count {listens:.0f})")
    print("    artists sharing its audience:")
    for artist, score in rec.recommend_for([top_artist], k=5):
        listens = dg.graph.node_attr(artist, "significance")
        print(f"      {artist}: score {score:.5f}, listens {listens:.0f}")
    print()


def main() -> None:
    print("Music discovery with weighted degree de-coupled PageRank\n")
    weighted_story("lastfm/listener-listener")
    weighted_story("lastfm/artist-artist")
    discovery_demo()
    print(
        "Takeaway: connection strength alone (beta = 1) is a good signal,\n"
        "but blending in degree boosting finds popular-adjacent artists\n"
        "that pure strength misses — Figure 11 of the paper."
    )


if __name__ == "__main__":
    main()
