"""Ablation: transition-matrix de-coupling vs teleport-vector adjustment.

The related-work alternative ([2] in the paper) shifts the *teleport*
vector by degree instead of reshaping transitions.  On a Group A graph the
D2PR transition change aligns rankings with significance far better than
the teleport-only adjustment — the paper's argument for Equation (1).
"""

from __future__ import annotations

from conftest import run_once

from repro.core import d2pr, teleport_adjusted_pagerank
from repro.experiments import get_data_graph
from repro.metrics import spearman

SCALE = 0.4


def test_d2pr_transition_decoupling(benchmark):
    dg = get_data_graph("imdb/actor-actor", SCALE)
    sig = dg.significance_vector()
    scores = run_once(benchmark, lambda: d2pr(dg.graph, 1.0))
    d2pr_corr = spearman(scores.values, sig)
    teleport_corr = spearman(
        teleport_adjusted_pagerank(dg.graph, -1.0).values, sig
    )
    assert d2pr_corr > teleport_corr


def test_teleport_adjustment_baseline(benchmark):
    dg = get_data_graph("imdb/actor-actor", SCALE)
    scores = run_once(
        benchmark, lambda: teleport_adjusted_pagerank(dg.graph, -1.0)
    )
    assert scores.values.sum() > 0.99
