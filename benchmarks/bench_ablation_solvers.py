"""Ablation: solver choice (DESIGN.md §4).

Power iteration is the production solver; Gauss–Seidel and sparse LU are
verification paths.  This bench measures their relative cost on a real
data graph and asserts they agree on the fixed point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import d2pr
from repro.experiments import get_data_graph

SCALE = 0.25
P = 1.0


@pytest.fixture(scope="module")
def graph():
    return get_data_graph("imdb/movie-movie", SCALE).graph


@pytest.fixture(scope="module")
def reference(graph):
    return d2pr(graph, P, solver="direct").values


def test_solver_power(benchmark, graph, reference):
    scores = benchmark(lambda: d2pr(graph, P, solver="power", tol=1e-12))
    assert np.allclose(scores.values, reference, atol=1e-8)


def test_solver_gauss_seidel(benchmark, graph, reference):
    scores = benchmark.pedantic(
        lambda: d2pr(graph, P, solver="gauss_seidel", tol=1e-12),
        rounds=1,
        iterations=1,
    )
    assert np.allclose(scores.values, reference, atol=1e-8)


def test_solver_direct(benchmark, graph, reference):
    scores = benchmark.pedantic(
        lambda: d2pr(graph, P, solver="direct"), rounds=1, iterations=1
    )
    assert np.allclose(scores.values, reference, atol=1e-12)
