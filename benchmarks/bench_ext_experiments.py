"""Benchmarks for the extension experiments (DESIGN.md §4, ablation rows).

Each also asserts its experiment's headline finding, so a benchmark run
re-validates the extensions end to end.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.extensions import (
    ext_centrality,
    ext_covertime,
    ext_robustness,
    ext_spam,
)

EXT_SCALE = 0.4


def test_ext_centrality(benchmark):
    result = run_once(benchmark, ext_centrality, EXT_SCALE)
    for name, entry in result.data.items():
        d2pr_key = next(k for k in entry if k.startswith("D2PR"))
        assert entry[d2pr_key] > 0.3, name
    # Group A: tuned D2PR wins outright over every fixed measure
    entry = result.data["imdb/actor-actor"]
    d2pr_key = next(k for k in entry if k.startswith("D2PR"))
    assert entry[d2pr_key] == max(entry.values())


def test_ext_covertime(benchmark):
    result = run_once(benchmark, ext_covertime, EXT_SCALE)
    # degree boosting slows full coverage (hub-revisit effect)
    assert result.data["p=-2"] > result.data["p=0"]


def test_ext_spam(benchmark):
    result = run_once(benchmark, ext_spam, EXT_SCALE)
    assert result.data["p=0"]["boost"] > 0  # vanilla PR is gameable
    assert result.data["p=2"]["boost"] < result.data["p=0"]["boost"]


def test_ext_robustness(benchmark):
    result = run_once(benchmark, ext_robustness, EXT_SCALE)
    signs = {
        "imdb/actor-actor": 1,
        "dblp/author-author": 0,
        "lastfm/listener-listener": -1,
    }
    for name, entry in result.data.items():
        for scenario, values in entry.items():
            peak = values["peak_p"]
            if signs[name] > 0:
                assert peak > 0, (name, scenario)
            elif signs[name] < 0:
                assert peak < 0, (name, scenario)
            else:
                assert abs(peak) <= 0.5, (name, scenario)


def test_ext_directed(benchmark):
    from repro.experiments.extensions import ext_directed

    result = run_once(benchmark, ext_directed, EXT_SCALE)
    assert result.data["peak_p"] > 0
    assert result.data["out_degree_coupling"] < 0
