"""Benchmark + reproduction check for the paper's Figure 3 (Group B).

Group B (author-author, movie-movie): conventional PageRank (p = 0) is
(near-)optimal — the curve peaks in a tight band around zero and collapses
once degrees are penalised.  The exact argmax sits at 0.0 at the library's
full scale (asserted by the test-suite); at benchmark scale we allow the
half-step band the paper's own plots stay within.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure3


def test_figure3_group_b(benchmark, bench_scale):
    result = run_once(benchmark, figure3, bench_scale)
    for name, entry in result.data.items():
        assert -0.5 <= entry["peak_p"] <= 0.5, name
        assert entry["correlation_at_zero"] > 0, name
        # p = 0 within a hair of the best achievable correlation
        assert entry["correlation_at_zero"] >= max(entry["correlations"]) - 0.02
        corr = dict(zip(entry["ps"], entry["correlations"]))
        assert corr[2.0] < 0, name  # penalisation flips the sign
