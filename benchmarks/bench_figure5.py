"""Benchmark + reproduction check for the paper's Figure 5.

Figure 5: degree–significance correlations per graph explain the
grouping — negative for Group A, positive for B and C.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure5


def test_figure5_degree_significance(benchmark, bench_scale):
    result = run_once(benchmark, figure5, bench_scale)
    for name, entry in result.data.items():
        if entry["group"] == "A":
            assert entry["degree_significance"] < 0, name
        else:
            assert entry["degree_significance"] > 0, name
