"""Benchmark + reproduction check for the paper's Table 1.

Table 1: Spearman correlation between PageRank score ranks and degree
ranks on the listener, article and movie graphs (paper: 0.988 / 0.997 /
0.848).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, bench_scale):
    result = run_once(benchmark, table1, bench_scale)
    assert len(result.data) == 3
    # the premise of the paper: tight coupling on every graph
    for name, entry in result.data.items():
        assert entry["measured"] > 0.8, name
    # listener and article graphs: near-perfect coupling as in the paper
    assert result.data["lastfm/listener-listener"]["measured"] > 0.95
    assert result.data["dblp/article-article"]["measured"] > 0.95
