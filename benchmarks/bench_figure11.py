"""Benchmark + reproduction check for the paper's Figure 11.

Figure 11: Group C on weighted graphs, β sweep — the best overall
correlations come from β ∈ {0, 0.25} with degree boosting; connection
strength alone is good but not optimal.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import figure11


def test_figure11_beta_sweep_group_c(benchmark, bench_scale):
    result = run_once(benchmark, figure11, bench_scale)
    for name, entry in result.data.items():
        strength = np.asarray(entry["beta=1"]["correlations"])
        assert np.allclose(strength, strength[0], atol=1e-9), name
        assert entry["beta=0"]["peak_p"] < 0, name
        # de-coupling-heavy settings (beta <= 0.25) match or beat pure
        # connection strength; ties within epsilon count as matching,
        # reflecting the paper's "good, but not necessarily best" framing.
        decoupled_best = max(
            max(entry["beta=0"]["correlations"]),
            max(entry["beta=0.25"]["correlations"]),
        )
        assert decoupled_best >= strength.max() - 0.002, name
