"""Benchmark + reproduction check for the paper's Table 2.

Table 2: ranks of extreme-degree nodes across p ∈ {-4, -2, 0, 2, 4} —
high-degree nodes are pulled up for p < 0 and pushed down for p > 0.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, bench_scale):
    result = run_once(benchmark, table2, bench_scale)
    entries = sorted(result.data.values(), key=lambda e: -e["degree"])
    hubs, leaves = entries[:2], entries[-2:]
    for hub in hubs:
        assert hub["rank@p=-4"] <= hub["rank@p=0"] <= hub["rank@p=4"]
        assert hub["rank@p=-4"] < hub["rank@p=4"]
    for leaf in leaves:
        assert leaf["rank@p=-4"] > leaf["rank@p=4"]
