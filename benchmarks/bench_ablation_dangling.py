"""Ablation: dangling-node strategies (DESIGN.md §5.2).

Compares the three dangling policies on a directed graph with sinks:
``teleport`` (default), ``uniform`` and ``self``.  ``self`` concentrates
mass on the sinks; the other two agree under a uniform teleport vector.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import pagerank
from repro.graph import DiGraph, erdos_renyi


@pytest.fixture(scope="module")
def digraph_with_sinks():
    base = erdos_renyi(300, 0.03, seed=13)
    g = DiGraph()
    g.add_nodes_from(base.nodes())
    rng = np.random.default_rng(13)
    for u, v, _w in base.edges():
        if rng.random() < 0.5:
            g.add_edge(u, v)
        else:
            g.add_edge(v, u)
    # guarantee true sinks: nodes that only receive
    sources = rng.choice(g.number_of_nodes, size=30, replace=False)
    for i, src in enumerate(sources):
        g.add_edge(g.node_at(int(src)), f"sink{i % 10}")
    return g


@pytest.mark.parametrize("strategy", ["teleport", "uniform", "self"])
def test_dangling_strategy(benchmark, digraph_with_sinks, strategy):
    scores = benchmark(
        lambda: pagerank(digraph_with_sinks, dangling=strategy, tol=1e-10)
    )
    assert scores.values.sum() == pytest.approx(1.0)


def test_self_strategy_rewards_sinks(benchmark, digraph_with_sinks):
    sinks = [
        node
        for node in digraph_with_sinks.nodes()
        if digraph_with_sinks.out_degree(node) == 0
    ]
    assert sinks, "fixture must contain dangling nodes"
    spread = pagerank(digraph_with_sinks, dangling="teleport")
    kept = benchmark(lambda: pagerank(digraph_with_sinks, dangling="self"))
    sink_mass_kept = sum(kept[s] for s in sinks)
    sink_mass_spread = sum(spread[s] for s in sinks)
    assert sink_mass_kept > sink_mass_spread
