"""Benchmark + reproduction check for the paper's Figure 1.

Figure 1: transition probabilities from node A on the 6-node sample graph
for p ∈ {0, 2, -2} — must match the paper's printed values.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark):
    result = run_once(benchmark, figure1)
    data = result.data
    assert data["p=0"]["B"] == pytest.approx(1 / 3)
    assert data["p=2"]["B"] == pytest.approx(0.18, abs=0.01)
    assert data["p=2"]["C"] == pytest.approx(0.08, abs=0.01)
    assert data["p=2"]["D"] == pytest.approx(0.74, abs=0.01)
    assert data["p=-2"]["C"] == pytest.approx(0.64, abs=0.01)
