"""Benchmark + reproduction check for the paper's Figure 6.

Figure 6: Group A under α ∈ {0.5, 0.7, 0.75, 0.9} — the grouping (p > 0
optimal) is preserved for every residual probability.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure6


def test_figure6_alpha_sweep_group_a(benchmark, bench_scale):
    result = run_once(benchmark, figure6, bench_scale)
    for name, entry in result.data.items():
        for key, sweep in entry.items():
            if key == "ps":
                continue
            assert sweep["peak_p"] > 0, (name, key)
