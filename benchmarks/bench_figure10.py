"""Benchmark + reproduction check for the paper's Figure 10.

Figure 10: Group B on weighted graphs, β sweep — low β with p ≈ 0
performs well; β = 1 is flat in p.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import figure10


def test_figure10_beta_sweep_group_b(benchmark, bench_scale):
    result = run_once(benchmark, figure10, bench_scale)
    for name, entry in result.data.items():
        strength = np.asarray(entry["beta=1"]["correlations"])
        assert np.allclose(strength, strength[0], atol=1e-9), name
        assert -1.0 <= entry["beta=0"]["peak_p"] <= 0.5, name
        assert max(entry["beta=0"]["correlations"]) > 0, name
