"""Benchmark + reproduction check for the paper's Figure 7.

Figure 7: Group B under α ∈ {0.5, 0.7, 0.75, 0.9} — the peak stays in a
tight band around p = 0 for every residual probability.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure7


def test_figure7_alpha_sweep_group_b(benchmark, bench_scale):
    result = run_once(benchmark, figure7, bench_scale)
    for name, entry in result.data.items():
        for key, sweep in entry.items():
            if key == "ps":
                continue
            assert -1.0 <= sweep["peak_p"] <= 0.5, (name, key)
