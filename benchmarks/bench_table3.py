"""Benchmark + reproduction check for the paper's Table 3.

Table 3: data-graph statistics.  At laptop scale the *within-family
orderings* are the reproduction target (see DESIGN.md §2).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table3


def test_table3(benchmark, bench_scale):
    result = run_once(benchmark, table3, bench_scale)
    d = result.data
    assert len(d) == 8
    # density orderings within each dataset family, as in the paper
    assert (
        d["imdb/actor-actor"]["average_degree"]
        > d["imdb/movie-movie"]["average_degree"]
    )
    assert (
        d["dblp/article-article"]["average_degree"]
        > d["dblp/author-author"]["average_degree"]
    )
    assert (
        d["lastfm/artist-artist"]["average_degree"]
        > d["lastfm/listener-listener"]["average_degree"]
    )
    # Group C graphs: hub-dominated neighbourhoods (relative spread)
    def spread_ratio(name):
        return d[name]["median_neighbor_degree_std"] / max(
            d[name]["average_degree"], 1.0
        )

    assert spread_ratio("lastfm/artist-artist") > spread_ratio(
        "dblp/author-author"
    )
