"""Benchmark + reproduction check for the paper's Figure 8.

Figure 8: Group C under α ∈ {0.5, 0.7, 0.75, 0.9} — degree boosting
(p < 0) stays optimal for every residual probability, and larger α gives
the best correlations in the boosted regime.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure8


def test_figure8_alpha_sweep_group_c(benchmark, bench_scale):
    result = run_once(benchmark, figure8, bench_scale)
    for name, entry in result.data.items():
        for key, sweep in entry.items():
            if key == "ps":
                continue
            # article-article's p<0 plateau is nearly flat, so its argmax
            # can drift to +0.5 at reduced scale; the other graphs must
            # peak strictly below zero for every alpha.
            if name == "dblp/article-article":
                assert sweep["peak_p"] <= 0.5, (name, key)
            else:
                assert sweep["peak_p"] < 0, (name, key)
    # larger alpha helps in the boosted regime (paper §4.4), checked on
    # the friendship graph where the effect is strongest
    entry = result.data["lastfm/listener-listener"]
    ps = entry["ps"]
    idx = ps.index(-1.0)
    assert (
        entry["alpha=0.9"]["correlations"][idx]
        > entry["alpha=0.5"]["correlations"][idx]
    )
