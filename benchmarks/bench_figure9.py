"""Benchmark + reproduction check for the paper's Figure 9.

Figure 9: Group A on weighted graphs, β sweep — degree de-coupling
(β < 1) beats pure connection strength (β = 1), and the optimal p grows
as connection strength gets more weight.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import figure9


def test_figure9_beta_sweep_group_a(benchmark, bench_scale):
    result = run_once(benchmark, figure9, bench_scale)
    for name, entry in result.data.items():
        # beta = 1 ignores p entirely (flat curve)
        strength = np.asarray(entry["beta=1"]["correlations"])
        assert np.allclose(strength, strength[0], atol=1e-9), name
        # de-coupling reaches strictly higher correlation
        assert max(entry["beta=0"]["correlations"]) > strength.max(), name
    # optimal p grows with beta (paper §4.5)
    for name in ("imdb/actor-actor", "epinions/commenter-commenter"):
        entry = result.data[name]
        assert entry["beta=0.75"]["peak_p"] >= entry["beta=0"]["peak_p"], name
