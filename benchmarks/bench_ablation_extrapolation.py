"""Ablation: plain vs Aitken-extrapolated power iteration.

Measures both regimes the design doc calls out: fast-mixing graphs (where
the trial overhead makes extrapolation a wash) and slow-mixing barbell
graphs at large alpha (where it saves sweeps).  The safeguard guarantees
identical fixed points in all cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, barabasi_albert
from repro.linalg import (
    extrapolated_power_iteration,
    power_iteration,
    uniform_transition,
)


def _barbell() -> Graph:
    g = Graph()
    for off in (0, 1000):
        for i in range(25):
            for j in range(i + 1, 25):
                g.add_edge(off + i, off + j)
    path = [24] + [2000 + k for k in range(50)] + [1000]
    for a, b in zip(path, path[1:]):
        g.add_edge(a, b)
    return g


@pytest.fixture(scope="module")
def fast_mixing():
    return uniform_transition(barabasi_albert(300, 3, seed=3).to_csr(weighted=False))


@pytest.fixture(scope="module")
def slow_mixing():
    return uniform_transition(_barbell().to_csr(weighted=False))


def test_plain_power_fast_mixing(benchmark, fast_mixing):
    result = benchmark(lambda: power_iteration(fast_mixing, alpha=0.9, tol=1e-11))
    assert result.converged


def test_extrapolated_fast_mixing(benchmark, fast_mixing):
    result = benchmark(
        lambda: extrapolated_power_iteration(fast_mixing, alpha=0.9, tol=1e-11)
    )
    assert result.converged


def test_plain_power_slow_mixing(benchmark, slow_mixing):
    result = benchmark(
        lambda: power_iteration(slow_mixing, alpha=0.97, tol=1e-11, max_iter=50_000)
    )
    assert result.converged


def test_extrapolated_slow_mixing(benchmark, slow_mixing):
    plain = power_iteration(slow_mixing, alpha=0.97, tol=1e-11, max_iter=50_000)
    result = benchmark(
        lambda: extrapolated_power_iteration(
            slow_mixing, alpha=0.97, tol=1e-11, max_iter=50_000
        )
    )
    assert result.converged
    assert result.iterations <= plain.iterations
    assert np.allclose(result.scores, plain.scores, atol=1e-8)
