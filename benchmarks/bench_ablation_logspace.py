"""Ablation: log-space degree weighting (DESIGN.md §5.1).

The naive ``theta ** -p`` formula overflows float64 once
``|p| · log10(theta)`` passes ~308; the library computes the weights with
a per-row log-sum-exp.  This bench measures the stabilised path against a
naive vectorised implementation on the regime where the naive one still
works, and demonstrates the overflow point.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.experiments import get_data_graph
from repro.linalg import degree_decoupled_transition


@pytest.fixture(scope="module")
def adjacency():
    graph = get_data_graph("lastfm/artist-artist", 0.3).graph
    return graph.to_csr(weighted=False)


def _naive_transition(adjacency: sparse.csr_matrix, p: float) -> sparse.csr_matrix:
    """Textbook implementation: theta**-p, normalised per row."""
    mat = adjacency.copy().astype(float)
    theta = np.maximum(np.diff(mat.indptr).astype(float), 1.0)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        weights = theta[mat.indices] ** (-p)
        mat.data = weights
        row_sums = np.asarray(mat.sum(axis=1)).ravel()
        lengths = np.diff(mat.indptr)
        inv = np.where(row_sums > 0, 1.0 / row_sums, 0.0)
        mat.data *= np.repeat(inv, lengths)
    return mat


def test_logspace_transition(benchmark, adjacency):
    t = benchmark(lambda: degree_decoupled_transition(adjacency, 2.0))
    sums = np.asarray(t.sum(axis=1)).ravel()
    assert np.allclose(sums[sums > 0], 1.0)


def test_naive_transition_same_result_small_p(benchmark, adjacency):
    naive = benchmark(lambda: _naive_transition(adjacency, 2.0))
    stable = degree_decoupled_transition(adjacency, 2.0)
    assert np.allclose(naive.toarray(), stable.toarray(), atol=1e-12)


def test_naive_breaks_where_logspace_survives(benchmark, adjacency):
    """At |p| = 150 the naive weights overflow; log-space stays finite."""
    p = -150.0
    naive = _naive_transition(adjacency, p)
    stable = benchmark(lambda: degree_decoupled_transition(adjacency, p))
    assert not np.isfinite(naive.data).all()  # naive overflowed
    assert np.isfinite(stable.data).all()  # stabilised path did not
    sums = np.asarray(stable.sum(axis=1)).ravel()
    assert np.allclose(sums[sums > 0], 1.0)
