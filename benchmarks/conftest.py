"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at
``BENCH_SCALE`` (reduced from the library default so the full harness
finishes in minutes) and asserts the reproduction's shape claims, so a
benchmark run doubles as an end-to-end reproduction check.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: Dataset scale used by all experiment benchmarks.
BENCH_SCALE = 0.5


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round (experiments are heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
