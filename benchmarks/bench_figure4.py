"""Benchmark + reproduction check for the paper's Figure 4 (Group C).

Group C (article-article, listener-listener, artist-artist): degree
boosting (p < 0) is optimal, with a stable plateau on the negative side.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure4


def test_figure4_group_c(benchmark, bench_scale):
    result = run_once(benchmark, figure4, bench_scale)
    for name, entry in result.data.items():
        corr = dict(zip(entry["ps"], entry["correlations"]))
        # penalisation collapses the correlation
        assert corr[2.0] < corr[0.0] - 0.2, name
    # listener/artist peak strictly negative; article-article's plateau is
    # so flat that the argmax can sit anywhere in [-4, 0.5] at reduced
    # scale — the paper itself calls the gains "slight".
    assert result.data["lastfm/listener-listener"]["peak_p"] < 0
    assert result.data["lastfm/artist-artist"]["peak_p"] < 0
    assert result.data["dblp/article-article"]["peak_p"] <= 0.5
    # plateau stability for the hub-dominated graphs
    for name in ("dblp/article-article", "lastfm/artist-artist"):
        entry = result.data[name]
        corr = dict(zip(entry["ps"], entry["correlations"]))
        plateau = [corr[p] for p in (-4.0, -3.0, -2.0, -1.0)]
        assert max(plateau) - min(plateau) < 0.07, name
