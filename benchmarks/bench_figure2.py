"""Benchmark + reproduction check for the paper's Figure 2 (Group A).

Group A (actor-actor, commenter-commenter, product-product): degree
penalisation (p > 0) is optimal; product-product is negative at p = 0 and
stays stable when over-penalised.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure2


def test_figure2_group_a(benchmark, bench_scale):
    result = run_once(benchmark, figure2, bench_scale)
    for name, entry in result.data.items():
        assert entry["peak_p"] > 0, name
    assert result.data["epinions/product-product"]["correlation_at_zero"] < 0
    # stability plateau for product-product at large p (Figure 2c)
    entry = result.data["epinions/product-product"]
    corr = dict(zip(entry["ps"], entry["correlations"]))
    plateau = [corr[p] for p in (2.0, 3.0, 4.0)]
    assert max(plateau) - min(plateau) < 0.1
