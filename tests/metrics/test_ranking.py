"""Unit tests for repro.metrics.ranking."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    top_k_overlap,
)


class TestPrecisionRecall:
    def test_precision_basic(self):
        assert precision_at_k(["a", "b", "c", "d"], {"a", "c"}, 2) == 0.5
        assert precision_at_k(["a", "b", "c", "d"], {"a", "c"}, 4) == 0.5

    def test_precision_all_relevant(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_precision_short_ranking(self):
        assert precision_at_k(["a"], {"a"}, 5) == 1.0

    def test_precision_empty_ranking(self):
        assert precision_at_k([], {"a"}, 3) == 0.0

    def test_precision_invalid_k(self):
        with pytest.raises(ParameterError):
            precision_at_k(["a"], {"a"}, 0)

    def test_recall_basic(self):
        assert recall_at_k(["a", "b", "c"], {"a", "z"}, 3) == 0.5

    def test_recall_empty_relevant(self):
        assert recall_at_k(["a"], set(), 1) == 0.0

    def test_recall_complete(self):
        assert recall_at_k(["a", "b"], {"a", "b"}, 2) == 1.0


class TestNdcg:
    def test_perfect_ranking(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], gains, 3) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, 3) < 1.0

    def test_missing_items_gain_zero(self):
        gains = {"a": 1.0}
        value = ndcg_at_k(["x", "a"], gains, 2)
        assert 0.0 < value < 1.0

    def test_empty_gains(self):
        assert ndcg_at_k(["a", "b"], {}, 2) == 0.0

    def test_negative_gain_rejected(self):
        with pytest.raises(ParameterError):
            ndcg_at_k(["a"], {"a": -1.0}, 1)

    def test_order_within_k_matters(self):
        gains = {"a": 5.0, "b": 1.0}
        good = ndcg_at_k(["a", "b"], gains, 2)
        bad = ndcg_at_k(["b", "a"], gains, 2)
        assert good > bad


class TestTopKOverlap:
    def test_identical(self):
        assert top_k_overlap(["a", "b", "c"], ["c", "a", "b"], 3) == 1.0

    def test_disjoint(self):
        assert top_k_overlap(["a", "b"], ["x", "y"], 2) == 0.0

    def test_partial(self):
        assert top_k_overlap(["a", "b"], ["b", "c"], 2) == pytest.approx(1 / 3)

    def test_empty_both(self):
        assert top_k_overlap([], [], 4) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            top_k_overlap(["a"], ["a"], 0)


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(["a", "b"], {"a"}) == 1.0

    def test_third_position(self):
        assert reciprocal_rank(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_never_found(self):
        assert reciprocal_rank(["x", "y"], {"a"}) == 0.0

    def test_first_of_many(self):
        assert reciprocal_rank(["x", "b", "a"], {"a", "b"}) == pytest.approx(0.5)


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(["a", "b"], {"a", "b"}) == pytest.approx(1.0)

    def test_empty_relevant(self):
        assert average_precision(["a"], set()) == 0.0

    def test_never_retrieved(self):
        assert average_precision(["x", "y"], {"a"}) == 0.0

    def test_known_value(self):
        # relevant at positions 1 and 3: AP = (1/1 + 2/3) / 2
        value = average_precision(["a", "x", "b"], {"a", "b"})
        assert value == pytest.approx((1.0 + 2 / 3) / 2)

    def test_order_sensitivity(self):
        early = average_precision(["a", "x", "x2"], {"a"})
        late = average_precision(["x", "x2", "a"], {"a"})
        assert early > late
