"""Unit and property tests for repro.metrics.correlation, cross-checked
against scipy.stats (used strictly as an oracle)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.metrics import kendall, pearson, rank_data, spearman

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRankData:
    def test_simple(self):
        assert rank_data(np.array([30.0, 10.0, 20.0])).tolist() == [3.0, 1.0, 2.0]

    def test_average_ties(self):
        assert rank_data(np.array([10.0, 20.0, 20.0, 30.0])).tolist() == [
            1.0,
            2.5,
            2.5,
            4.0,
        ]

    def test_all_equal(self):
        ranks = rank_data(np.array([5.0, 5.0, 5.0]))
        assert ranks.tolist() == [2.0, 2.0, 2.0]

    def test_single_element(self):
        assert rank_data(np.array([42.0])).tolist() == [1.0]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_matches_scipy(self, values):
        ours = rank_data(np.array(values))
        theirs = scipy.stats.rankdata(values, method="average")
        assert np.allclose(ours, theirs)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=40))
    def test_ranks_sum_invariant(self, values):
        """Ranks always sum to n(n+1)/2 regardless of ties."""
        n = len(values)
        assert rank_data(np.array(values)).sum() == pytest.approx(n * (n + 1) / 2)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            pearson(np.ones(3), np.ones(4))

    def test_too_short_rejected(self):
        with pytest.raises(ParameterError):
            pearson(np.array([1.0]), np.array([2.0]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            pearson(np.array([1.0, np.nan]), np.array([1.0, 2.0]))

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(finite_floats, min_size=2, max_size=50),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_scipy(self, xs, seed):
        rng = np.random.default_rng(seed)
        x = np.array(xs)
        y = rng.normal(size=x.shape[0])
        if np.all(x == x[0]) or np.all(y == y[0]):
            assert pearson(x, y) == 0.0
        else:
            theirs = scipy.stats.pearsonr(x, y).statistic
            if np.isnan(theirs):
                # scipy can lose the signal to underflow where our
                # max-abs pre-scaling keeps it; just require boundedness.
                assert -1.0 <= pearson(x, y) <= 1.0
            else:
                assert pearson(x, y) == pytest.approx(theirs, abs=1e-7)


class TestSpearman:
    def test_monotone_transform_invariance(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_reversal(self):
        x = np.arange(6.0)
        assert spearman(x, x[::-1]) == pytest.approx(-1.0)

    def test_paper_formula_equivalence(self):
        """Spearman == Pearson applied to average-tie ranks (§4.2)."""
        rng = np.random.default_rng(5)
        x = rng.integers(0, 5, size=40).astype(float)  # heavy ties
        y = rng.integers(0, 5, size=40).astype(float)
        assert spearman(x, y) == pytest.approx(
            pearson(rank_data(x), rank_data(y))
        )

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(finite_floats, min_size=2, max_size=50),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_scipy(self, xs, seed):
        rng = np.random.default_rng(seed)
        x = np.array(xs)
        y = rng.normal(size=x.shape[0])
        ours = spearman(x, y)
        theirs = scipy.stats.spearmanr(x, y).statistic
        if np.isnan(theirs):  # scipy returns nan for constant input
            assert ours == 0.0
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_bounded(self, xs):
        rng = np.random.default_rng(0)
        y = rng.normal(size=len(xs))
        assert -1.0 <= spearman(np.array(xs), y) <= 1.0


class TestKendall:
    def test_perfect_agreement(self):
        x = np.arange(8.0)
        assert kendall(x, x * 3) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        x = np.arange(8.0)
        assert kendall(x, -x) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert kendall(np.ones(4), np.arange(4.0)) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(finite_floats, min_size=2, max_size=30),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_scipy_tau_b(self, xs, seed):
        rng = np.random.default_rng(seed)
        x = np.array(xs)
        y = rng.normal(size=x.shape[0])
        ours = kendall(x, y)
        theirs = scipy.stats.kendalltau(x, y).statistic
        if np.isnan(theirs):
            assert ours == 0.0
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_ties_handled(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 2.0, 3.0])
        theirs = scipy.stats.kendalltau(x, y).statistic
        assert kendall(x, y) == pytest.approx(theirs, abs=1e-9)
