"""Randomized parity: every registered method vs a dense NumPy reference.

Each registered method's production path (the engine's grouped solve for
the stochastic family, the descriptor's direct power method for the
spectral one) is checked against an independent dense-linear-algebra
reference on small random graphs — across Graph/DiGraph, weighted edges,
dangling nodes, dangling-strategy spellings and seed spellings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import RankQuery, build_teleport, solve_many
from repro.graph import DiGraph, Graph
from repro.methods import (
    adjacency_bundle,
    operator_for,
    resolve,
    spectral_radius,
)

SEEDS = [7, 21, 42]


def _random_graph(cls, seed, n=24, weighted=False, dangling=False):
    """Small random graph; ``dangling=True`` makes the last 3 nodes sinks."""
    rng = np.random.default_rng(seed)
    m = 5 * n
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, n, m)
    keep = rows != cols
    if dangling and cls is DiGraph:
        keep &= rows < n - 3
    weights = rng.uniform(0.5, 2.0, m) if weighted else None
    return cls.from_arrays(
        rows[keep],
        cols[keep],
        weights[keep] if weights is not None else None,
        num_nodes=n,
    )


def _dense_stochastic_reference(graph, group_key, alpha, teleport=None):
    """Dense linear solve of ``x = α·Tᵀx + (1−α)·t`` with dangling fix."""
    bundle = operator_for(graph, group_key)
    T = np.asarray(bundle.mat.todense(), dtype=np.float64)
    n = T.shape[0]
    t = (
        teleport
        if teleport is not None
        else np.full(n, 1.0 / n)
    )
    dangling = group_key[-1]
    sinks = np.flatnonzero(T.sum(axis=1) == 0.0)
    for i in sinks:
        if dangling == "teleport":
            T[i] = t
        elif dangling == "uniform":
            T[i] = 1.0 / n
        else:  # "self"
            T[i, i] = 1.0
    x = np.linalg.solve(np.eye(n) - alpha * T.T, (1.0 - alpha) * t)
    return x / x.sum()


STOCHASTIC = [
    ("pagerank", {}),
    ("d2pr", {"p": 1.5}),
    ("d2pr", {"p": -1.0}),
    ("fatigued", {"p": 0.5, "fatigue": 0.4}),
    ("fatigued", {"fatigue": 0.8}),
]


class TestStochasticParity:
    @pytest.mark.parametrize("cls", [Graph, DiGraph])
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name,extra", STOCHASTIC)
    def test_matches_dense_solve(self, cls, weighted, seed, name, extra):
        graph = _random_graph(
            cls, seed, weighted=weighted, dangling=True
        )
        kwargs = dict(extra)
        if weighted and name != "pagerank":
            kwargs["beta"] = 0.5
        query = RankQuery(
            method=name, weighted=weighted, alpha=0.9, **kwargs
        )
        scores = solve_many(graph, [query], tol=1e-13)[0]
        ref = _dense_stochastic_reference(graph, query.group_key, 0.9)
        assert np.abs(scores.values - ref).max() < 1e-9

    @pytest.mark.parametrize("dangling", ["teleport", "uniform", "self"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dangling_spellings(self, dangling, seed):
        graph = _random_graph(DiGraph, seed, dangling=True)
        query = RankQuery(method="d2pr", p=1.0, dangling=dangling)
        scores = solve_many(graph, [query], tol=1e-13)[0]
        ref = _dense_stochastic_reference(graph, query.group_key, 0.85)
        assert np.abs(scores.values - ref).max() < 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_spellings_agree(self, seed):
        graph = _random_graph(DiGraph, seed)
        nodes = graph.nodes()
        as_list = RankQuery(
            method="d2pr", p=1.0, teleport=[nodes[1], nodes[4]]
        )
        as_dict = RankQuery(
            method="d2pr", p=1.0, teleport={nodes[1]: 1.0, nodes[4]: 1.0}
        )
        listed, mapped = solve_many(graph, [as_list, as_dict], tol=1e-13)
        assert np.abs(listed.values - mapped.values).max() < 1e-12
        ref = _dense_stochastic_reference(
            graph,
            as_list.group_key,
            0.85,
            teleport=build_teleport(graph, [nodes[1], nodes[4]]),
        )
        assert np.abs(listed.values - ref).max() < 1e-9

    def test_mixed_method_batch_solves_every_query(self):
        graph = _random_graph(DiGraph, 11, dangling=True)
        queries = [
            RankQuery(method="pagerank"),
            RankQuery(method="d2pr", p=2.0),
            RankQuery(method="fatigued", fatigue=0.3),
            RankQuery(method="katz"),
            RankQuery(method="eigenvector"),
            RankQuery(method="hits"),
        ]
        results = solve_many(graph, queries, tol=1e-12)
        assert len(results) == len(queries)
        for scores in results:
            assert scores.values.sum() == pytest.approx(1.0)
            assert (scores.values >= 0.0).all()


class TestKatzParity:
    @pytest.mark.parametrize("cls", [Graph, DiGraph])
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_dense_linear_solve(self, cls, weighted, seed):
        graph = _random_graph(cls, seed, weighted=weighted)
        alpha = 0.5
        result = resolve("katz").solve(
            graph, ("katz", weighted), alpha=alpha, tol=1e-13
        )
        A = np.asarray(
            adjacency_bundle(graph, weighted=weighted).mat.todense()
        )
        lam = spectral_radius(graph, weighted=weighted)
        n = A.shape[0]
        t = np.full(n, 1.0 / n)
        ref = np.linalg.solve(
            np.eye(n) - (alpha / lam) * A.T, (1.0 - alpha) * t
        )
        ref /= ref.sum()
        assert np.abs(result.scores - ref).max() < 1e-9

    def test_seeded_katz_localizes_around_the_seed(self):
        graph = _random_graph(DiGraph, 3)
        nodes = graph.nodes()
        teleport = build_teleport(graph, {nodes[0]: 1.0})
        result = resolve("katz").solve(
            graph, ("katz", False), alpha=0.3, teleport=teleport, tol=1e-12
        )
        assert result.converged
        assert result.scores.argmax() == 0


class TestEigenvectorParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_dense_eig_on_connected_graph(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        # Ring + random chords: connected, aperiodic enough for eig.
        rows = list(range(n)) + list(rng.integers(0, n, 30))
        cols = [(i + 1) % n for i in range(n)] + list(
            rng.integers(0, n, 30)
        )
        rows, cols = np.asarray(rows), np.asarray(cols)
        keep = rows != cols
        graph = Graph.from_arrays(rows[keep], cols[keep], num_nodes=n)
        result = resolve("eigenvector").solve(
            graph, ("eigenvector", False), tol=1e-13
        )
        A = np.asarray(
            adjacency_bundle(graph, weighted=False).mat.todense()
        )
        eigvals, eigvecs = np.linalg.eigh(A)  # symmetric adjacency
        vec = np.abs(eigvecs[:, np.argmax(eigvals)])
        vec /= vec.sum()
        assert np.abs(result.scores - vec).max() < 1e-8

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eigen_certificate_holds_on_digraphs(self, seed):
        graph = _random_graph(DiGraph, seed)
        result = resolve("eigenvector").solve(
            graph, ("eigenvector", False), tol=1e-12
        )
        A = np.asarray(
            adjacency_bundle(graph, weighted=False).mat.todense()
        )
        x = result.scores
        ax = A.T @ x
        lam = ax.sum()
        assert lam > 0.0
        assert np.abs(ax - lam * x).sum() / lam < 1e-10


class TestHitsParity:
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_authorities_match_dense_eig_of_ata(self, seed, weighted):
        graph = _random_graph(DiGraph, seed, weighted=weighted)
        result = resolve("hits").solve(
            graph, ("hits", weighted), tol=1e-14, max_iter=5000
        )
        A = np.asarray(
            adjacency_bundle(graph, weighted=weighted).mat.todense()
        )
        M = A.T @ A  # authorities: dominant eigenvector of AᵀA
        eigvals, eigvecs = np.linalg.eigh(M)
        vec = np.abs(eigvecs[:, np.argmax(eigvals)])
        vec /= vec.sum()
        assert np.abs(result.scores - vec).max() < 1e-6


class TestDegenerateGraphs:
    @pytest.mark.parametrize("name", ["katz", "eigenvector", "hits"])
    def test_edgeless_graph_is_uniform_and_converged(self, name):
        graph = Graph()
        graph.add_nodes_from(["a", "b", "c"])
        result = resolve(name).solve(graph, (name, False), tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.scores, 1.0 / 3.0)
