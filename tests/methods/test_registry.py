"""Registry contract: menu, vocabularies, group keys, digests, flags."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.methods import (
    CERTIFICATES,
    MethodParams,
    family_method,
    method_names,
    resolve,
)


class TestRegistry:
    def test_method_menu(self):
        assert method_names() == (
            "pagerank", "d2pr", "fatigued", "katz", "eigenvector", "hits"
        )

    def test_unknown_method_lists_menu(self):
        with pytest.raises(ParameterError) as err:
            resolve("nosuch")
        for name in method_names():
            assert name in str(err.value)

    def test_family_method_accepts_group_key_tuples(self):
        key = resolve("d2pr").group_key(MethodParams(p=1.5))
        assert family_method(key).family == "d2pr"
        assert family_method("fatigued") is resolve("fatigued")
        with pytest.raises(ParameterError):
            family_method("nosuch")

    def test_certificates_are_known(self):
        for name in method_names():
            assert resolve(name).certificate in CERTIFICATES

    def test_group_keys_lead_with_family(self):
        for name in method_names():
            method = resolve(name)
            assert method.group_key(MethodParams())[0] == method.family

    def test_batchable_group_keys_end_with_dangling(self):
        # The engine and coalescer read dangling as group_key[-1].
        params = MethodParams(dangling="uniform")
        for name in method_names():
            method = resolve(name)
            if method.batchable:
                assert method.group_key(params)[-1] == "uniform"

    def test_capability_flags_partition_the_family(self):
        for name in ("pagerank", "d2pr", "fatigued"):
            method = resolve(name)
            assert method.batchable
            assert method.supports_push
            assert method.supports_incremental
            assert method.supports_sharding
        for name in ("katz", "eigenvector", "hits"):
            method = resolve(name)
            assert not method.batchable
            assert not method.supports_push
            assert not method.supports_incremental
            assert not method.supports_sharding


class TestVocabulary:
    @pytest.mark.parametrize(
        "name,field,value",
        [
            ("pagerank", "p", 1.0),
            ("pagerank", "fatigue", 0.5),
            ("d2pr", "fatigue", 0.5),
            ("katz", "p", 1.0),
            ("katz", "fatigue", 0.5),
            ("katz", "dangling", "self"),
            ("eigenvector", "alpha", 0.5),
            ("hits", "dangling", "self"),
        ],
    )
    def test_out_of_vocabulary_fields_rejected(self, name, field, value):
        with pytest.raises(ParameterError) as err:
            resolve(name).validate(MethodParams(**{field: value}))
        assert field in str(err.value)
        assert name in str(err.value)

    def test_seeds_rejected_on_global_eigen_measures(self):
        for name in ("eigenvector", "hits"):
            with pytest.raises(ParameterError, match="does not take seeds"):
                resolve(name).validate(MethodParams(has_seeds=True))
        # Katz is spectral but personalisable.
        resolve("katz").validate(MethodParams(has_seeds=True))

    def test_fatigue_domain_is_half_open(self):
        resolve("fatigued").validate(MethodParams(fatigue=0.99))
        for bad in (1.0, -0.1, float("nan")):
            with pytest.raises(ParameterError):
                resolve("fatigued").validate(MethodParams(fatigue=bad))

    def test_alpha_validated_only_when_in_vocabulary(self):
        with pytest.raises(ParameterError):
            resolve("katz").validate(MethodParams(alpha=1.0))
        # eigenvector has no alpha: a non-default value is out of vocab.
        with pytest.raises(ParameterError, match="does not take alpha"):
            resolve("eigenvector").validate(MethodParams(alpha=0.5))


class TestIdentity:
    def test_pagerank_is_the_p_zero_point_of_d2pr(self):
        params = MethodParams()
        pr, d2 = resolve("pagerank"), resolve("d2pr")
        assert pr.group_key(params) == d2.group_key(params)
        assert pr.digest_params(params) == d2.digest_params(params)

    def test_fatigue_enters_the_group_key(self):
        fat = resolve("fatigued")
        a = fat.group_key(MethodParams(fatigue=0.2))
        b = fat.group_key(MethodParams(fatigue=0.6))
        assert a != b

    def test_eigenvector_digest_is_empty(self):
        assert resolve("eigenvector").digest_params(MethodParams()) == ()

    def test_sort_keys_compare_across_families(self):
        # solve_many sorts heterogeneous group keys; the leading family
        # string must make every cross-family comparison well-defined.
        keys = [
            resolve(name).group_key(MethodParams())
            for name in method_names()
        ]
        sorted(keys, key=lambda k: family_method(k).sort_key(k))
