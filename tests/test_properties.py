"""Cross-cutting property-based tests on library invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph, d2pr, pagerank
from repro.graph import BipartiteGraph, erdos_renyi, project
from repro.metrics import rank_data, spearman


@st.composite
def bipartite_memberships(draw):
    """A random small two-mode membership structure."""
    n_left = draw(st.integers(min_value=1, max_value=8))
    n_right = draw(st.integers(min_value=1, max_value=6))
    memberships = {}
    for i in range(n_left):
        size = draw(st.integers(min_value=0, max_value=n_right))
        joined = draw(
            st.sets(
                st.integers(min_value=0, max_value=n_right - 1),
                min_size=min(size, n_right),
                max_size=min(size, n_right),
            )
        )
        memberships[i] = joined
    return n_left, n_right, memberships


@settings(max_examples=40, deadline=None)
@given(bipartite_memberships())
def test_projection_weight_equals_intersection(data):
    """Projection edge weights always count shared memberships exactly."""
    n_left, n_right, memberships = data
    b = BipartiteGraph()
    for i in range(n_left):
        b.add_left(f"L{i}")
    for j in range(n_right):
        b.add_right(f"R{j}")
    for i, joined in memberships.items():
        for j in joined:
            b.add_edge(f"L{i}", f"R{j}")
    g = project(b, "left")
    for i in range(n_left):
        for k in range(i + 1, n_left):
            shared = len(memberships[i] & memberships[k])
            if shared:
                assert g.edge_weight(f"L{i}", f"L{k}") == shared
            else:
                assert not g.has_edge(f"L{i}", f"L{k}")


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    edge_p=st.floats(min_value=0.1, max_value=0.7),
    p=st.floats(min_value=-4.0, max_value=4.0),
    seed=st.integers(min_value=0, max_value=9999),
)
def test_d2pr_invariant_under_node_relabelling(n, edge_p, p, seed):
    """Scores depend on structure only, not on node names or insertion
    order."""
    g = erdos_renyi(n, edge_p, seed=seed)
    renamed = Graph()
    mapping = {node: f"x-{node}" for node in g.nodes()}
    # insert nodes in reverse order to shuffle the internal indexing
    for node in reversed(g.nodes()):
        renamed.add_node(mapping[node])
    for u, v, w in g.edges():
        renamed.add_edge(mapping[u], mapping[v], weight=w)

    original = d2pr(g, p, tol=1e-12)
    relabelled = d2pr(renamed, p, tol=1e-12)
    for node in g.nodes():
        assert original[node] == pytest.approx(
            relabelled[mapping[node]], abs=1e-9
        )


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=25),
    edge_p=st.floats(min_value=0.2, max_value=0.8),
    seed=st.integers(min_value=0, max_value=9999),
    scale=st.floats(min_value=0.1, max_value=50.0),
)
def test_uniform_edge_weight_scaling_is_noop(n, edge_p, seed, scale):
    """Multiplying every edge weight by a constant changes nothing, in
    both the weighted-PageRank and the weighted-D2PR formulations."""
    g = erdos_renyi(n, edge_p, seed=seed)
    scaled = Graph()
    scaled.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        scaled.add_edge(u, v, weight=w * scale)
    a = pagerank(g, weighted=True, tol=1e-12).values
    b = pagerank(scaled, weighted=True, tol=1e-12).values
    assert np.allclose(a, b, atol=1e-8)
    c = d2pr(g, 1.5, beta=0.5, weighted=True, tol=1e-12).values
    d = d2pr(scaled, 1.5, beta=0.5, weighted=True, tol=1e-12).values
    assert np.allclose(c, d, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=40,
    )
)
def test_spearman_invariant_under_monotone_transform(values):
    """Spearman only sees ranks: exp() on one side changes nothing."""
    x = np.array(values)
    y = np.arange(len(values), dtype=float)
    a = spearman(x, y)
    b = spearman(rank_data(x), y)  # rank transform is monotone
    assert a == pytest.approx(b, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=20),
    edge_p=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=9999),
    alpha=st.floats(min_value=0.05, max_value=0.95),
)
def test_teleport_lower_bound(n, edge_p, seed, alpha):
    """Every node's score is at least (1-alpha)/n: the teleport floor."""
    g = erdos_renyi(n, edge_p, seed=seed)
    scores = pagerank(g, alpha=alpha, tol=1e-12)
    floor = (1.0 - alpha) / n
    assert (scores.values >= floor - 1e-9).all()
