"""Tests for the shard partitioner and its relabeling plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.shard import ShardPlan, intra_fraction, plan_shards


def _structure(graph):
    return graph.to_csr(weighted=False)


def _check_invariants(plan: ShardPlan, n: int, k: int):
    assert plan.n == n
    assert plan.n_shards == k
    # order/ranks are inverse permutations
    assert np.array_equal(np.sort(plan.order), np.arange(n))
    assert np.array_equal(plan.ranks[plan.order], np.arange(n))
    # bounds partition [0, n] and agree with assign
    assert plan.bounds[0] == 0 and plan.bounds[-1] == n
    assert (np.diff(plan.bounds) >= 0).all()
    for s in range(k):
        sl = plan.shard_slice(s)
        assert (plan.assign[plan.order[sl]] == s).all()
    assert int(plan.sizes.sum()) == n


@pytest.mark.parametrize("method", ["blocked", "labelprop", "auto"])
@pytest.mark.parametrize("k", [1, 3, 8])
def test_plan_invariants(community_digraph, method, k):
    plan = plan_shards(_structure(community_digraph), k, method=method)
    _check_invariants(plan, community_digraph.number_of_nodes, k)


def test_more_shards_than_nodes_clamps():
    import scipy.sparse as sp

    mat = sp.csr_matrix((np.ones(3), ([0, 1, 2], [1, 2, 0])), shape=(3, 3))
    plan = plan_shards(mat, 100)
    _check_invariants(plan, 3, 3)
    assert (plan.sizes == 1).all()


def test_zero_shards_rejected(community_digraph):
    with pytest.raises(ParameterError):
        plan_shards(_structure(community_digraph), 0)


def test_unknown_method_rejected(community_digraph):
    with pytest.raises(ParameterError):
        plan_shards(_structure(community_digraph), 4, method="metis")


def test_labelprop_recovers_communities(community_digraph):
    """Label propagation at the community count is near-perfectly intra."""
    mat = _structure(community_digraph)
    lp = plan_shards(mat, 4, method="labelprop")
    blocked = plan_shards(mat, 4, method="blocked")
    assert intra_fraction(mat, lp) >= intra_fraction(mat, blocked) - 1e-12
    assert intra_fraction(mat, lp) > 0.9


def test_permute_roundtrip(community_digraph):
    plan = plan_shards(_structure(community_digraph), 4)
    vec = np.random.default_rng(0).random(plan.n)
    assert np.array_equal(plan.unpermute(plan.permute(vec)), vec)


def test_shards_of_bounds(community_digraph):
    plan = plan_shards(_structure(community_digraph), 4)
    with pytest.raises(ParameterError):
        plan.shards_of(np.array([plan.n]))
    shards = plan.shards_of(np.arange(plan.n))
    assert set(shards.tolist()) == set(range(4))


def test_graph_shard_plan_cached(community_digraph):
    g = community_digraph
    p1 = g.shard_plan(4)
    p2 = g.shard_plan(4)
    assert p1 is p2
    assert g.shard_plan(2) is not p1
    # mutation drops the cached plan
    g.add_edge(0, 999999)
    assert g.shard_plan(4) is not p1
