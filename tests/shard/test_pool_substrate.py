"""The worker pool's segment substrates: shm (fork) vs mmap (any start).

``substrate="mmap"`` backs the packed shard segment with a
``repro_shard_*.mmap`` file instead of ``/dev/shm``, and workers attach
by *path* — which makes exec-style ``spawn`` workers possible.  The
contract: identical solves, identical pool protocol, independent memo
slots, and no files left behind (the package's autouse leak sentinel
covers both substrates).
"""

from __future__ import annotations

import glob
import os
import tempfile

import numpy as np
import pytest

from repro.core.d2pr import d2pr_operator
from repro.errors import ParameterError
from repro.shard.operator import ShardedOperator
from repro.shard.solver import sharded_solve

TOL = 1e-11
MATCH = 1e-8


def test_mmap_solve_matches_shm(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    try:
        serial = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=1,
        )
        shm = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=2,
        )
        mm = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=2,
            pool_substrate="mmap",
        )
        assert mm.converged
        assert np.abs(shm.scores - serial.scores).sum() < MATCH
        assert np.abs(mm.scores - serial.scores).sum() < MATCH
    finally:
        sharded.close()


def test_substrates_memoise_independently(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    try:
        shm_pool = sharded.pool(2)
        mmap_pool = sharded.pool(2, substrate="mmap")
        assert shm_pool is not mmap_pool
        assert shm_pool.substrate == "shm"
        assert mmap_pool.substrate == "mmap"
        assert sharded.pool(2) is shm_pool
        assert sharded.pool(2, substrate="mmap") is mmap_pool
        # The mmap segment is a recognisable temp file while alive.
        assert mmap_pool.segment_name.endswith(".mmap")
        assert os.path.exists(mmap_pool.segment_name)
    finally:
        sharded.close()
    assert not os.path.exists(mmap_pool.segment_name)


def test_mmap_pool_with_spawn_workers(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    try:
        pool = sharded.pool(2, substrate="mmap", start_method="spawn")
        assert pool.alive
        result = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=2,
            pool_substrate="mmap",
        )
        serial = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=1,
        )
        assert result.converged
        assert np.abs(result.scores - serial.scores).sum() < MATCH
    finally:
        sharded.close()


def test_shm_rejects_spawn(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    try:
        with pytest.raises(ParameterError, match="fork"):
            sharded.pool(2, substrate="shm", start_method="spawn")
    finally:
        sharded.close()


def test_unknown_substrate_rejected(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    try:
        with pytest.raises(ParameterError, match="substrate"):
            sharded.pool(2, substrate="tape")
    finally:
        sharded.close()


def test_close_removes_mmap_file(community_digraph):
    before = set(
        glob.glob(os.path.join(tempfile.gettempdir(), "repro_shard_*.mmap"))
    )
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    pool = sharded.pool(2, substrate="mmap")
    created = set(
        glob.glob(os.path.join(tempfile.gettempdir(), "repro_shard_*.mmap"))
    ) - before
    assert created == {pool.segment_name}
    pool.close()
    assert not os.path.exists(pool.segment_name)
    sharded.close()
