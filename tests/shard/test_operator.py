"""Tests for the block-partitioned operator views."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core.d2pr import d2pr_operator, d2pr_sharded_operator
from repro.errors import ParameterError
from repro.shard import DEFAULT_SIZE_FLOOR, ShardedOperator, plan_shards


def _sharded(graph, k=4, **kw):
    kw.setdefault("force", True)
    bundle = d2pr_operator(graph, 0.0)
    return ShardedOperator(bundle, n_shards=k, **kw)


def test_split_is_exact(community_digraph):
    """intra + ext scattered back equals the permuted solve operand."""
    op = _sharded(community_digraph)
    plan = op.plan
    a = op.bundle.t_csr  # A = P.T, original labels
    perm = a[plan.order][:, plan.order].tocsr()
    rebuilt = sparse.vstack(
        [
            op.ext[s]
            + sparse.hstack(
                [
                    sparse.csr_matrix(
                        (op.intra[s].shape[0], int(plan.bounds[s]))
                    ),
                    op.intra[s],
                    sparse.csr_matrix(
                        (
                            op.intra[s].shape[0],
                            plan.n - int(plan.bounds[s + 1]),
                        )
                    ),
                ],
                format="csr",
            )
            for s in range(op.n_shards)
        ],
        format="csr",
    )
    assert abs(perm - rebuilt).sum() < 1e-12


def test_ext_has_no_inshard_columns(community_digraph):
    op = _sharded(community_digraph)
    plan = op.plan
    for s in range(op.n_shards):
        lo, hi = int(plan.bounds[s]), int(plan.bounds[s + 1])
        ext = op.ext[s].tocoo()
        assert not ((ext.col >= lo) & (ext.col < hi)).any()


def test_dangling_bookkeeping(dangling_digraph):
    op = _sharded(dangling_digraph, k=3)
    plan = op.plan
    dangle = op.bundle.dangle_mask
    # permuted mask matches per-shard local indices
    for s in range(op.n_shards):
        lo = int(plan.bounds[s])
        local = op.local_dangle[s]
        original = plan.order[lo + local]
        assert dangle[original].all()
    assert sum(ld.size for ld in op.local_dangle) == int(dangle.sum())


def test_coarse_ctx_matches_dense(community_digraph):
    """Coupling column sums reproduce the dense cross-flow matrix."""
    op = _sharded(community_digraph)
    plan = op.plan
    k = op.n_shards
    rng = np.random.default_rng(5)
    x = rng.random(plan.n)
    dense = np.zeros((k, k))
    for s in range(k):
        # independent dense route: total mass arriving in shard s from
        # each source shard q is the coupling block restricted to q's
        # columns applied to the iterate
        for q in range(k):
            lo, hi = int(plan.bounds[q]), int(plan.bounds[q + 1])
            dense[s, q] = float(
                (op.ext[s][:, lo:hi] @ x[lo:hi]).sum()
            )
        assert np.isclose(
            dense[s].sum(), float(np.asarray(op.ext[s] @ x).sum())
        )
    fast = np.zeros((k, k))
    for s, (js, vs, qs) in enumerate(op.coarse_ctx):
        np.add.at(fast[s], qs, vs * x[js])
    assert np.allclose(fast, dense)


def test_size_floor_refusal_and_force(path_graph):
    bundle = d2pr_operator(path_graph, 0.0)
    with pytest.raises(ParameterError):
        ShardedOperator(bundle, n_shards=2)
    op = ShardedOperator(bundle, n_shards=2, force=True)
    assert op.n_shards == 2
    assert DEFAULT_SIZE_FLOOR > path_graph.number_of_nodes


def test_push_context_ghost_absorbs_leak(community_digraph):
    op = _sharded(community_digraph)
    local, ghost = op.push_context(1)
    ns = op.intra[1].shape[0]
    assert ghost == ns
    mat = local.mat
    assert mat.shape == (ns + 1, ns + 1)
    row_sums = np.asarray(mat.sum(axis=1)).ravel()
    # every non-ghost local row is stochastic (leak routed to ghost);
    # the ghost row is empty (dangling)
    assert np.allclose(row_sums[:ns], 1.0)
    assert row_sums[ns] == 0.0


def test_cached_sharded_operator(community_digraph):
    g = community_digraph
    a = d2pr_sharded_operator(g, 0.0, n_shards=4, force=True)
    b = d2pr_sharded_operator(g, 0.0, n_shards=4, force=True)
    assert a is b
    assert d2pr_sharded_operator(g, 0.5, n_shards=4, force=True) is not a
    assert a.plan is g.shard_plan(4)
