"""Shared fixtures for the sharding tests.

Every test in this package runs under the leak sentinel: a sharded
worker pool that exits without releasing its ``multiprocessing``
shared-memory segments leaves ``/dev/shm/repro_shard_*`` files behind,
which the autouse fixture turns into a hard failure.
"""

from __future__ import annotations

import glob
import os
import tempfile

import numpy as np
import pytest

from repro.graph import DiGraph, Graph

SHM_GLOB = "/dev/shm/repro_shard_*"
MMAP_GLOB = os.path.join(tempfile.gettempdir(), "repro_shard_*.mmap")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Fail any test that leaves sharding segments (shm or mmap) behind."""
    before = set(glob.glob(SHM_GLOB)) | set(glob.glob(MMAP_GLOB))
    yield
    now = set(glob.glob(SHM_GLOB)) | set(glob.glob(MMAP_GLOB))
    leaked = now - before
    assert not leaked, f"leaked shard segments: {sorted(leaked)}"


def community_edges(n_comm=4, csize=80, cross=30, seed=7, offsets=(1, 3)):
    """Ring-of-communities edge list with sparse random cross edges."""
    rng = np.random.default_rng(seed)
    edges = []
    for c in range(n_comm):
        base = c * csize
        for i in range(csize):
            for off in offsets:
                edges.append((base + i, base + (i + off) % csize))
    n = n_comm * csize
    for _ in range(cross):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            edges.append((u, v))
    return list(dict.fromkeys(edges)), n


@pytest.fixture
def community_digraph() -> DiGraph:
    edges, n = community_edges()
    return DiGraph.from_edges(edges)


@pytest.fixture
def community_graph() -> Graph:
    edges, n = community_edges()
    return Graph.from_edges(edges)


@pytest.fixture
def dangling_digraph() -> DiGraph:
    """Community digraph with genuine dangling rows in every community."""
    edges, n = community_edges(n_comm=3, csize=60, cross=15, seed=3)
    g = DiGraph.from_edges(edges)
    # dangling sinks: one extra node per community with only in-edges
    for c in range(3):
        g.add_edge(c * 60 + 5, n + c)
    return g
