"""Property suite: sharded solves match the monolithic solver.

The contract under test is ISSUE-level: for every graph shape, dangling
strategy, seed spelling and shard count (including the degenerate 1 and
more-shards-than-nodes cases), :func:`repro.shard.solver.sharded_solve`
converges to the same certified tolerance as monolithic
:func:`repro.linalg.power_iteration` on the same operator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.d2pr import d2pr_operator
from repro.core.engine import RankQuery, solve_many, solve_transition
from repro.errors import ConvergenceError, ParameterError
from repro.graph import DiGraph, Graph
from repro.linalg import power_iteration
from repro.shard import ShardedOperator, sharded_solve
from tests.shard.conftest import community_edges

TOL = 1e-11
MATCH = 5e-9


def _graphs():
    edges, _ = community_edges(n_comm=3, csize=50, cross=25, seed=11)
    yield "digraph", DiGraph.from_edges(edges)
    yield "graph", Graph.from_edges(edges)
    # digraph with dangling sinks
    g = DiGraph.from_edges(edges)
    g.add_edge(4, 7001)
    g.add_edge(61, 7002)
    yield "dangling", g


GRAPHS = dict(_graphs())


def _solve_pair(graph, *, dangling, teleport=None, n_shards=4, **kw):
    bundle = d2pr_operator(graph, 0.0)
    reference = power_iteration(
        None,
        alpha=0.85,
        teleport=teleport,
        dangling=dangling,
        tol=TOL,
        operator=bundle,
    )
    result = sharded_solve(
        alpha=0.85,
        teleport=teleport,
        dangling=dangling,
        tol=TOL,
        operator=bundle,
        n_shards=n_shards,
        size_floor=0,
        **kw,
    )
    return reference, result


@pytest.mark.parametrize("name", list(GRAPHS))
@pytest.mark.parametrize("dangling", ["teleport", "uniform", "self"])
@pytest.mark.parametrize("n_shards", [1, 4])
def test_matches_power_iteration(name, dangling, n_shards):
    graph = GRAPHS[name]
    reference, result = _solve_pair(
        graph, dangling=dangling, n_shards=n_shards
    )
    assert result.converged
    assert np.abs(result.scores - reference.scores).sum() < MATCH
    assert result.method.startswith("sharded")


@pytest.mark.parametrize("spelling", ["array", "sparse"])
def test_seed_spellings(community_digraph, spelling):
    n = community_digraph.number_of_nodes
    teleport = np.zeros(n)
    teleport[[3, 80, 200]] = [0.2, 0.5, 0.3]
    if spelling == "sparse":
        # an equivalent scaled spelling must produce the same scores
        arg = teleport * 7.0
    else:
        arg = teleport
    reference, result = _solve_pair(
        community_digraph, dangling="teleport", teleport=arg
    )
    assert np.abs(result.scores - reference.scores).sum() < MATCH


def test_more_shards_than_nodes():
    g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)])
    reference, result = _solve_pair(g, dangling="teleport", n_shards=50)
    assert np.abs(result.scores - reference.scores).sum() < MATCH


def test_pooled_matches_serial(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    sharded = ShardedOperator(bundle, n_shards=4, force=True)
    try:
        serial = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=1,
        )
        pooled = sharded_solve(
            alpha=0.85, dangling="teleport", tol=TOL,
            operator=bundle, sharded=sharded, workers=2,
        )
        assert pooled.converged
        assert np.abs(pooled.scores - serial.scores).sum() < MATCH
        # pool persists between solves at the same worker count
        pool = sharded.pool(2)
        assert pool.alive
        again = sharded_solve(
            alpha=0.85, dangling="self", tol=TOL,
            operator=bundle, sharded=sharded, workers=2,
        )
        assert again.converged
        assert sharded.pool(2) is pool
    finally:
        sharded.close()
    assert not pool.alive


def test_below_floor_falls_back(path_graph):
    bundle = d2pr_operator(path_graph, 0.0)
    result = sharded_solve(
        alpha=0.85, dangling="teleport", tol=TOL, operator=bundle
    )
    assert result.method == "sharded_fallback_power"
    reference = power_iteration(
        None, alpha=0.85, dangling="teleport", tol=TOL, operator=bundle
    )
    assert np.abs(result.scores - reference.scores).sum() < MATCH


def test_warm_start_x0(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    cold = sharded_solve(
        alpha=0.85, dangling="teleport", tol=TOL,
        operator=bundle, size_floor=0, n_shards=4,
    )
    warm = sharded_solve(
        alpha=0.85, dangling="teleport", tol=TOL,
        operator=bundle, size_floor=0, n_shards=4, x0=cold.scores,
    )
    assert warm.iterations <= cold.iterations
    assert np.abs(warm.scores - cold.scores).sum() < MATCH


def test_budget_exhaustion_raises(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    with pytest.raises(ConvergenceError):
        sharded_solve(
            alpha=0.85, dangling="teleport", tol=1e-14, max_iter=1,
            operator=bundle, size_floor=0, n_shards=4,
            raise_on_failure=True,
        )


def test_parameter_validation(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    with pytest.raises(ParameterError):
        sharded_solve(alpha=1.5, operator=bundle, size_floor=0)
    with pytest.raises(ParameterError):
        sharded_solve(
            alpha=0.85, dangling="nope", operator=bundle, size_floor=0
        )


def test_engine_dispatch(community_digraph):
    bundle = d2pr_operator(community_digraph, 0.0)
    via_engine = solve_transition(
        bundle.mat,
        solver="sharded",
        alpha=0.85,
        tol=TOL,
        operator=bundle,
        size_floor=0,
        n_shards=4,
    )
    direct = sharded_solve(
        alpha=0.85, tol=TOL, operator=bundle, size_floor=0, n_shards=4
    )
    assert np.abs(via_engine.scores - direct.scores).sum() < MATCH


def test_solve_many_sharded(community_digraph):
    queries = [
        RankQuery(alpha=0.85, p=0.0),
        RankQuery(alpha=0.9, p=0.5, teleport=[3, 8]),
    ]
    sharded = solve_many(
        community_digraph, queries, tol=TOL, solver="sharded", n_shards=4
    )
    batch = solve_many(community_digraph, queries, tol=TOL)
    for a, b in zip(sharded, batch):
        assert np.abs(a.values - b.values).sum() < MATCH
        assert a.solver_result.method.startswith("sharded")
    with pytest.raises(ParameterError):
        solve_many(community_digraph, queries, solver="bogus")
